//! The embedded-segment configuration (the paper's reference-[2]
//! direction): a single unified shader doing all vertex and fragment
//! work, one ROP, one memory channel, small caches — rendering a spinning
//! cube at handheld resolution.
//!
//! ```sh
//! cargo run --release --example embedded_gpu
//! ```

use attila::core::config::GpuConfig;
use attila::core::gpu::Gpu;
use attila::gl::workloads::{self, WorkloadParams};

fn main() {
    let config = GpuConfig::embedded();
    let params = WorkloadParams {
        width: config.display.width,
        height: config.display.height,
        frames: 4,
        texture_size: 32,
        ..Default::default()
    };
    let trace = workloads::embedded_scene(params);
    let commands = attila::gl::compile(trace.width, trace.height, &trace.calls)
        .expect("trace compiles");

    println!(
        "embedded GPU: {} unified shader(s), {} ROP(s), {} memory channel(s), {} KB Z cache, {} MHz",
        config.shader.fragment_units,
        config.zstencil.units,
        config.memory.channels,
        config.zstencil.cache.size_bytes / 1024,
        config.display.clock_mhz,
    );
    let clock = config.display.clock_mhz;
    let mut gpu = Gpu::new(config);
    let result = gpu.run_trace(&commands).expect("simulation drains");

    print!("{}", gpu.summary());
    println!("fps at {clock} MHz: {:.1}", result.fps(clock));

    std::fs::create_dir_all("target").expect("target dir");
    let path = "target/embedded_frame0.ppm";
    std::fs::write(path, result.framebuffers[0].to_ppm()).expect("write ppm");
    println!("first frame -> {path}");
}
