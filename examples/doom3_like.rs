//! Doom3-like workload on the Section 5 case-study GPU: multi-pass
//! stencil-shadow rendering with per-pixel lighting, reporting per-frame
//! performance and unit utilization.
//!
//! ```sh
//! cargo run --release --example doom3_like
//! ```

use attila::core::config::{GpuConfig, ShaderScheduling};
use attila::core::gpu::Gpu;
use attila::gl::workloads::{self, WorkloadParams};

fn main() {
    let params = WorkloadParams {
        width: 256,
        height: 192,
        frames: 3,
        texture_size: 128,
        detail: 1,
        ..Default::default()
    };
    println!("generating a {}-frame Doom3-like trace...", params.frames);
    let trace = workloads::doom3_like(params);
    println!(
        "{} API calls, {} frames",
        trace.calls.len(),
        trace.frame_count()
    );
    let commands = attila::gl::compile(trace.width, trace.height, &trace.calls)
        .expect("trace compiles");

    let mut config = GpuConfig::case_study(3, ShaderScheduling::ThreadWindow);
    config.display.width = params.width;
    config.display.height = params.height;
    let clock = config.display.clock_mhz;
    let mut gpu = Gpu::new(config);
    println!("simulating on the case-study GPU (3 unified shaders, 3 TUs, 1 ROP)...");
    let result = gpu.run_trace(&commands).expect("simulation drains");

    println!();
    print!("{}", gpu.summary());
    println!("fps at {clock} MHz: {:.1}", result.fps(clock));
    let busy = gpu.shader_busy_cycles();
    for (i, b) in busy.iter().enumerate() {
        println!(
            "shader unit {i} utilization: {:.1}%",
            *b as f64 / result.cycles as f64 * 100.0
        );
    }
    for (i, b) in gpu.texture_busy_cycles().iter().enumerate() {
        println!(
            "texture unit {i} utilization: {:.1}%",
            *b as f64 / result.cycles as f64 * 100.0
        );
    }

    std::fs::create_dir_all("target").expect("target dir");
    for (i, frame) in result.framebuffers.iter().enumerate() {
        let path = format!("target/doom3_like_frame{i}.ppm");
        std::fs::write(&path, frame.to_ppm()).expect("write ppm");
        println!("frame {i} -> {path}");
    }
}
