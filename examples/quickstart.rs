//! Quickstart: render one textured triangle through the full cycle-level
//! simulator, dump the frame as a PPM file and print the headline
//! statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use attila::core::config::GpuConfig;
use attila::core::gpu::Gpu;
use attila::gl::workloads;

fn main() {
    let (width, height) = (256, 256);
    println!("building the baseline ATTILA GPU (~100 signals to wire)...");
    let mut config = GpuConfig::baseline();
    config.display.width = width;
    config.display.height = height;
    let mut gpu = Gpu::new(config);
    println!("pipeline has {} registered signals", gpu.binder().len());

    println!("generating and running the quickstart trace...");
    let commands = workloads::quickstart_triangle(width, height);
    let result = gpu.run_trace(&commands).expect("simulation drains");

    println!();
    println!("== run summary ==");
    print!("{}", gpu.summary());
    println!(
        "fps at {} MHz: {:.1}",
        gpu.config().display.clock_mhz,
        result.fps(gpu.config().display.clock_mhz)
    );

    let frame = result.framebuffers.first().expect("one frame");
    let path = std::path::Path::new("target/quickstart.ppm");
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write(path, frame.to_ppm()).expect("write ppm");
    println!("frame written to {}", path.display());
}
