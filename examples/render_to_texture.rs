//! Render-to-texture and supersampling (two of the paper's §7 future-work
//! items, implemented): the scene is rendered at 2× resolution into a
//! texture, then resolved onto the display by sampling it with bilinear
//! filtering — classic supersampling antialiasing built from the RTT
//! feature.
//!
//! ```sh
//! cargo run --release --example render_to_texture
//! ```

use attila::core::config::GpuConfig;
use attila::core::gpu::Gpu;
use attila::gl::api::{clear_mask, GlCall, GlPrimitive};
use attila::gl::compile;

const W: u32 = 128;
const H: u32 = 128;

fn scene_calls(ssaa: bool) -> Vec<GlCall> {
    let scale = if ssaa { 2 } else { 1 };
    let (rw, rh) = (W * scale, H * scale);
    let mut calls = Vec::new();

    // A thin spinning triangle: the jagged-edge showcase.
    let tri: Vec<f32> = vec![
        -0.9, -0.85, 0.0, 1.0, 1.0, 0.2, 0.1, 1.0, //
        0.9, -0.6, 0.0, 1.0, 0.9, 0.8, 0.1, 1.0, //
        -0.2, 0.9, 0.0, 1.0, 0.2, 0.4, 1.0, 1.0,
    ];
    let quad: Vec<f32> = vec![
        -1.0, -1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0, //
        1.0, -1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, //
        1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0, //
        -1.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0,
    ];
    let bytes = |v: &[f32]| v.iter().flat_map(|f| f.to_le_bytes()).collect::<Vec<u8>>();
    calls.push(GlCall::BufferData { id: 1, data: bytes(&tri) });
    calls.push(GlCall::BufferData { id: 2, data: bytes(&quad) });
    calls.push(GlCall::ProgramString {
        id: 1,
        source: "!!ATTILAvp1.0\nMOV o0, i0;\nMOV o1, i1;\nEND;".into(),
    });
    calls.push(GlCall::ProgramString {
        id: 2,
        source: "!!ATTILAfp1.0\nMOV o0, i0;\nEND;".into(),
    });
    calls.push(GlCall::ProgramString {
        id: 3,
        source: "!!ATTILAfp1.0\nTEX r0, i0, texture[0], 2D;\nMOV o0, r0;\nEND;".into(),
    });

    if ssaa {
        calls.push(GlCall::RenderTexture { id: 10, width: rw, height: rh });
        calls.push(GlCall::SetRenderTarget { texture: 10 });
    }
    calls.push(GlCall::ViewportSet { x: 0, y: 0, width: rw, height: rh });
    calls.push(GlCall::BindProgram { target_vertex: true, id: 1 });
    calls.push(GlCall::BindProgram { target_vertex: false, id: 2 });
    calls.push(GlCall::VertexAttribPointer { attr: 0, buffer: 1, components: 4, stride: 32, offset: 0 });
    calls.push(GlCall::VertexAttribPointer { attr: 1, buffer: 1, components: 4, stride: 32, offset: 16 });
    calls.push(GlCall::ClearColor { r: 0.05, g: 0.05, b: 0.08, a: 1.0 });
    calls.push(GlCall::Clear { mask: clear_mask::COLOR | clear_mask::DEPTH });
    calls.push(GlCall::DrawArrays { primitive: GlPrimitive::Triangles, count: 3 });

    if ssaa {
        // Resolve: bilinear-minify the 2x surface onto the display.
        calls.push(GlCall::ResetRenderTarget);
        calls.push(GlCall::ViewportSet { x: 0, y: 0, width: W, height: H });
        calls.push(GlCall::BindProgram { target_vertex: false, id: 3 });
        calls.push(GlCall::BindTexture { unit: 0, id: 10 });
        calls.push(GlCall::VertexAttribPointer { attr: 0, buffer: 2, components: 4, stride: 32, offset: 0 });
        calls.push(GlCall::VertexAttribPointer { attr: 1, buffer: 2, components: 4, stride: 32, offset: 16 });
        calls.push(GlCall::Clear { mask: clear_mask::COLOR });
        calls.push(GlCall::DrawArrays { primitive: GlPrimitive::Quads, count: 4 });
    }
    calls.push(GlCall::SwapBuffers);
    calls
}

/// Counts "intermediate" pixels along triangle edges — antialiasing
/// produces blends between background and triangle colours.
fn edge_blend_pixels(frame: &attila::core::gpu::FrameDump) -> usize {
    frame
        .rgba
        .chunks_exact(4)
        .filter(|p| {
            let max = *p[..3].iter().max().unwrap();
            let min = *p[..3].iter().min().unwrap();
            // Not background (dark), not a saturated fill colour.
            max > 40 && max < 220 && max != min
        })
        .count()
}

fn run(ssaa: bool) -> attila::core::gpu::FrameDump {
    let calls = scene_calls(ssaa);
    let commands = compile(W, H, &calls).expect("compiles");
    let mut config = GpuConfig::baseline();
    config.display.width = W;
    config.display.height = H;
    let mut gpu = Gpu::new(config);
    let result = gpu.run_trace(&commands).expect("drains");
    println!(
        "{}: {} cycles",
        if ssaa { "2x supersampled" } else { "aliased      " },
        result.cycles
    );
    result.framebuffers.into_iter().next().expect("one frame")
}

fn main() {
    std::fs::create_dir_all("target").expect("target dir");
    let plain = run(false);
    let smooth = run(true);
    std::fs::write("target/rtt_aliased.ppm", plain.to_ppm()).expect("write");
    std::fs::write("target/rtt_ssaa.ppm", smooth.to_ppm()).expect("write");
    let (pb, sb) = (edge_blend_pixels(&plain), edge_blend_pixels(&smooth));
    println!("edge-blend pixels: aliased {pb}, supersampled {sb}");
    assert!(sb > pb, "supersampling must produce blended edge pixels");
    println!("frames -> target/rtt_aliased.ppm, target/rtt_ssaa.ppm");
}
