//! GLInterceptor / GLPlayer demo: capture an API trace, serialize it to
//! the trace-file format, replay it (including a hot start) and verify
//! the replayed rendering matches the original bit for bit.
//!
//! ```sh
//! cargo run --release --example trace_capture_replay
//! ```

use attila::core::config::GpuConfig;
use attila::core::gpu::Gpu;
use attila::gl::workloads::{self, WorkloadParams};
use attila::gl::{diff_frames, GlPlayer, GlTrace};

fn run(commands: &[attila::core::commands::GpuCommand], w: u32, h: u32) -> Vec<attila::core::gpu::FrameDump> {
    let mut config = GpuConfig::baseline();
    config.display.width = w;
    config.display.height = h;
    let mut gpu = Gpu::new(config);
    gpu.run_trace(commands).expect("drains").framebuffers
}

fn main() {
    let params = WorkloadParams {
        width: 128,
        height: 128,
        frames: 3,
        texture_size: 64,
        ..Default::default()
    };
    // "Capture": the workload generator plays the application role; its
    // API calls are the trace.
    let trace = workloads::embedded_scene(params);
    println!("captured {} API calls over {} frames", trace.calls.len(), trace.frame_count());

    // Serialize to the trace-file format and back (GLInterceptor output).
    let file = trace.to_json();
    println!("trace file: {} bytes of JSON", file.len());
    let reloaded = GlTrace::from_json(&file).expect("parses");
    assert_eq!(reloaded, trace);

    // GLPlayer: full replay.
    let full_cmds = GlPlayer::new().replay(&reloaded).expect("replays");
    let full_frames = run(&full_cmds, trace.width, trace.height);
    println!("full replay rendered {} frames", full_frames.len());

    // GLPlayer: hot start at frame 2 — state changes and buffer writes
    // applied, earlier draws skipped.
    let hot_cmds = GlPlayer { skip_frames: 2, max_frames: None }
        .replay(&reloaded)
        .expect("replays");
    let hot_frames = run(&hot_cmds, trace.width, trace.height);
    println!("hot-start replay rendered {} frames", hot_frames.len());

    // The hot-start's last frame must match the full run's last frame.
    let diff = diff_frames(
        full_frames.last().expect("frames"),
        hot_frames.last().expect("frames"),
    );
    println!("last-frame diff: {diff}");
    assert!(diff.identical(), "hot start must reproduce the frame exactly");
    println!("hot start verified: simulation can begin at any frame of the trace.");
}
