//! Kill-and-resume: crash-safe checkpointing end to end.
//!
//! Runs the embedded scene three ways —
//!
//! 1. uninterrupted (the reference),
//! 2. with checkpointing on and a deliberately tiny watchdog standing in
//!    for `kill -9` mid-run,
//! 3. restored from the surviving checkpoint file and run to the end —
//!
//! and shows that (1) and (3) are bit-identical: same final cycle, same
//! statistics, same frames. Run with:
//!
//! ```sh
//! cargo run --release --example checkpoint_resume
//! ```

use attila::core::config::GpuConfig;
use attila::core::gpu::Gpu;
use attila::core::{Checkpoint, ShaderScheduling};
use attila::gl::{compile, workloads};

fn config() -> GpuConfig {
    let mut config = GpuConfig::case_study(1, ShaderScheduling::ThreadWindow);
    config.display.width = 48;
    config.display.height = 48;
    config
}

fn main() {
    let params = workloads::WorkloadParams {
        width: 48,
        height: 48,
        frames: 3,
        texture_size: 64,
        ..Default::default()
    };
    let trace = workloads::embedded_scene(params);
    let commands = compile(trace.width, trace.height, &trace.calls).expect("scene compiles");

    // 1. The reference: never interrupted.
    let mut gpu = Gpu::new(config());
    let reference = gpu.run_trace(&commands).expect("reference drains");
    let reference_cycles = gpu.cycle();
    println!(
        "reference:  {} cycles, {} frames",
        reference_cycles, reference.frames
    );

    // 2. The "crash": checkpoint every 400 cycles (taken at quiescent
    //    points — frame boundaries, in practice), killed by a tiny
    //    watchdog at 60% of the run. The atomic write-rename guarantees
    //    the file left behind is a complete, valid checkpoint.
    let path = std::env::temp_dir().join("attila-example.ckpt");
    let mut gpu = Gpu::new(config());
    gpu.max_cycles = reference_cycles * 3 / 5;
    gpu.checkpoint_every = Some(400);
    gpu.checkpoint_path = Some(path.clone());
    let killed = gpu.run_trace(&commands);
    assert!(killed.is_err(), "the tiny watchdog plays the role of kill -9");
    println!("killed at:  cycle {} (watchdog)", gpu.cycle());

    // 3. A fresh "process": nothing survives but the file. Restore
    //    validates magic, version, CRC and the config/trace hashes, then
    //    rebuilds the machine and finishes the remaining commands.
    let ckpt = Checkpoint::read_file(&path).expect("valid checkpoint on disk");
    println!(
        "resuming:   cycle {} ({} commands consumed)",
        ckpt.body.cycle, ckpt.body.commands_consumed
    );
    let mut gpu = Gpu::restore(config(), &commands, &ckpt, None).expect("restore succeeds");
    let resumed = gpu.run_trace(&[]).expect("resumed run drains");

    assert_eq!(gpu.cycle(), reference_cycles, "same final cycle");
    assert_eq!(resumed.framebuffers.len(), reference.framebuffers.len());
    for (i, (a, b)) in resumed
        .framebuffers
        .iter()
        .zip(&reference.framebuffers)
        .enumerate()
    {
        assert_eq!(a.rgba, b.rgba, "frame {i} must be bit-identical");
    }
    println!(
        "resumed:    {} cycles, {} frames — bit-identical to the reference",
        gpu.cycle(),
        resumed.framebuffers.len()
    );
    let _ = std::fs::remove_file(&path);
}
