//! Signal Trace Visualizer demo: attach a trace sink to hand-built
//! signals, run a little producer/consumer pipeline, and render the
//! signals × cycles activity grid the STV tool shows.
//!
//! ```sh
//! cargo run --release --example signal_trace
//! ```

use attila::sim::{Signal, SignalTrace};

fn main() {
    // A three-stage pipeline: A -> B -> C with different latencies.
    let sink = SignalTrace::new_sink();
    let (mut ab_tx, mut ab_rx) = Signal::<u32>::with_name("A->B", 2, 3);
    let (mut bc_tx, mut bc_rx) = Signal::<u32>::with_name("B->C", 1, 5);
    ab_tx.attach_trace(sink.clone());
    bc_tx.attach_trace(sink.clone());

    // A produces bursts; B forwards one per cycle; C consumes.
    let mut b_queue = std::collections::VecDeque::new();
    for cycle in 0..40u64 {
        if cycle % 8 < 3 {
            ab_tx.send(cycle, cycle as u32);
            if ab_tx.can_write(cycle) {
                ab_tx.send(cycle, cycle as u32 + 100);
            }
        }
        while let Some(v) = ab_rx.read(cycle) {
            b_queue.push_back(v);
        }
        if let Some(v) = b_queue.pop_front() {
            if bc_tx.can_write(cycle) {
                bc_tx.send(cycle, v);
            } else {
                b_queue.push_front(v);
            }
        }
        while bc_rx.read(cycle).is_some() {}
    }

    let trace = sink.borrow();
    println!("captured {} signal events", trace.len());
    println!();
    println!("== Signal Trace Visualizer ==");
    println!("(each cell: objects arriving that cycle; '.' = idle)");
    println!();
    print!("{}", trace.render(0, 40));
    println!();
    println!("dump format (first 5 lines):");
    for line in trace.dump().lines().take(5) {
        println!("  {line}");
    }
}
