//! UT2004-like outdoor workload on the baseline GPU: single-pass
//! terrain + lightmap multitexturing, reporting texture-system
//! statistics.
//!
//! ```sh
//! cargo run --release --example ut2004_like
//! ```

use attila::core::config::GpuConfig;
use attila::core::gpu::Gpu;
use attila::gl::workloads::{self, WorkloadParams};

fn main() {
    let params = WorkloadParams {
        width: 256,
        height: 192,
        frames: 3,
        texture_size: 128,
        detail: 1,
        ..Default::default()
    };
    println!("generating a {}-frame UT2004-like trace...", params.frames);
    let trace = workloads::ut2004_like(params);
    let commands = attila::gl::compile(trace.width, trace.height, &trace.calls)
        .expect("trace compiles");

    let mut config = GpuConfig::baseline();
    config.display.width = params.width;
    config.display.height = params.height;
    let clock = config.display.clock_mhz;
    let mut gpu = Gpu::new(config);
    let result = gpu.run_trace(&commands).expect("simulation drains");

    println!();
    print!("{}", gpu.summary());
    println!("fps at {clock} MHz: {:.1}", result.fps(clock));
    let (hits, misses, rate) = gpu.texture_cache_stats();
    println!(
        "texture system: {hits} hits / {misses} misses ({:.1}% hit rate), {} bytes fetched",
        rate * 100.0,
        gpu.texture_bytes_read()
    );

    std::fs::create_dir_all("target").expect("target dir");
    let path = "target/ut2004_like_frame0.ppm";
    std::fs::write(path, result.framebuffers[0].to_ppm()).expect("write ppm");
    println!("first frame -> {path}");
}
