//! Unified vs non-unified shading (paper Figures 1 and 2): the same
//! trace run on both architectural models, comparing cycles and
//! verifying identical rendered output.
//!
//! ```sh
//! cargo run --release --example unified_vs_nonunified
//! ```

use attila::core::config::GpuConfig;
use attila::core::gpu::Gpu;
use attila::gl::workloads::{self, WorkloadParams};
use attila::gl::{compile, diff_frames};

fn main() {
    let params = WorkloadParams {
        width: 192,
        height: 144,
        frames: 2,
        texture_size: 64,
        ..Default::default()
    };
    let trace = workloads::ut2004_like(params);
    let commands = compile(trace.width, trace.height, &trace.calls).expect("compiles");

    let mut results = Vec::new();
    for (label, mut config) in [
        ("unified", GpuConfig::baseline()),
        ("non-unified (4 VS + 2 FS)", GpuConfig::non_unified_baseline()),
    ] {
        config.display.width = params.width;
        config.display.height = params.height;
        let mut gpu = Gpu::new(config);
        let r = gpu.run_trace(&commands).expect("drains");
        println!("{label:<26} {} cycles, {} frames", r.cycles, r.frames);
        results.push(r);
    }

    let diff = diff_frames(
        results[0].framebuffers.last().expect("frames"),
        results[1].framebuffers.last().expect("frames"),
    );
    println!("image diff between models: {diff}");
    assert!(diff.identical(), "both models must render identically");
    println!("both architectural models render identical frames; only timing differs.");
}
