//! The ATTILA simulator command-line front end — the equivalent of the
//! original project's `bGPU` binary: run a trace file on a configuration,
//! produce statistics CSV, frame dumps and (optionally) a signal trace.
//!
//! ```sh
//! attila --preset case-study --tus 2 --workload doom3 --frames 2 \
//!        --out-dir target/run --stats --signal-trace
//! attila --config my_gpu.json --trace my_trace.json --hot-start 10
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use attila::core::config::{GpuConfig, ShaderScheduling};
use attila::core::gpu::{Gpu, GpuError};
use attila::core::Checkpoint;
use attila::gl::workloads::{self, WorkloadParams};
use attila::gl::{GlPlayer, GlTrace};

struct Args {
    lint: bool,
    lint_all_presets: bool,
    lint_deny_warnings: bool,
    lint_source: bool,
    lint_report: Option<PathBuf>,
    lint_root: Option<PathBuf>,
    sweep: bool,
    sweep_tus: Vec<usize>,
    sweep_schedulers: Vec<ShaderScheduling>,
    sweep_trcd: Option<Vec<u64>>,
    sweep_trp: Option<Vec<u64>>,
    sweep_banks: Option<Vec<usize>>,
    viz: Option<PathBuf>,
    viz_out: Option<PathBuf>,
    viz_title: Option<String>,
    viz_buckets: usize,
    serve: bool,
    serve_smoke: bool,
    retry_limit: u32,
    workers: Option<usize>,
    threads: usize,
    checkpoint_every: Option<u64>,
    checkpoint_path: Option<PathBuf>,
    resume: bool,
    config_file: Option<PathBuf>,
    preset: String,
    tus: Option<usize>,
    scheduler: Option<ShaderScheduling>,
    trace_file: Option<PathBuf>,
    workload: Option<String>,
    width: u32,
    height: u32,
    frames: u32,
    hot_start: u64,
    max_frames: Option<u64>,
    max_cycles: Option<u64>,
    out_dir: PathBuf,
    stats: bool,
    signal_trace: bool,
    dump_config: bool,
    dump_trace: bool,
    dump_pipeline: bool,
    stv: Option<(PathBuf, u64, u64)>,
}

fn usage() -> &'static str {
    "ATTILA cycle-level GPU simulator

USAGE:
    attila [OPTIONS]

GPU selection:
    --config <file.json>     load a GpuConfig JSON file
    --preset <name>          baseline | non-unified | case-study | embedded | high-end
    --tus <n>                override the texture-unit count
    --scheduler <s>          window | queue
    --dump-config            print the effective config JSON and exit
    --dump-pipeline          print the box/signal topology (Figures 1/2/5)
    --threads <n>            clock-domain worker threads per simulated GPU
                             (default 1 = the serial loop). The pipeline is
                             partitioned into clock domains by min-cut over
                             signal traffic; results are bit-identical to
                             the serial loop at every thread count. Under
                             sweep/serve the budget is split across the
                             job workers: each job gets max(1, n/workers).

Input selection:
    --trace <file.json>      run a captured GlTrace file
    --workload <name>        quickstart | doom3 | ut2004 | embedded |
                             texture_stream | fillrate
    --width/--height <px>    workload resolution (default 160x120)
    --frames <n>             workload frame count (default 2)
    --hot-start <frame>      skip draws before this frame (hot start)
    --max-frames <n>         stop after n simulated frames
    --max-cycles <n>         watchdog: abort with a failure report if the
                             simulation runs past n cycles
    --dump-trace             write the generated workload trace JSON and exit

Crash safety:
    --checkpoint-every <n>   write a checkpoint at the first quiescent
                             point every n cycles (atomic write-rename: a
                             killed run always leaves a valid file)
    --checkpoint <file>      checkpoint file path
                             (default <out-dir>/latest.ckpt)
    --resume                 restore from the checkpoint file and finish
                             the run; bit-identical to never stopping

Output:
    --out-dir <dir>          output directory (default target/attila-run)
    --stats                  write the windowed statistics CSV
    --signal-trace           write a signal trace + STV rendering of the
                             first 200 cycles

Tools:
    --stv <file> <from> <to> render a saved signal-trace file for the
                             cycle range [from, to) and exit
    viz <trace-file>         render a saved signal-trace dump as a single
                             self-contained HTML timeline: per-box
                             busy/stall lanes, DRAM bank row-buffer
                             outcomes and an occupancy table. The output
                             is byte-for-byte deterministic.
      --out <file>           output path (default <out-dir>/timeline.html)
      --title <text>         page title
      --buckets <n>          maximum timeline columns (default 240)

Subcommands:
    lint                     elaborate the selected GPU (see `--config` /
                             `--preset`) and run the architecture verifier
                             instead of simulating; exits 1 on findings
      --all-presets          lint every shipped preset configuration
      --deny-warnings        treat warn-level findings as errors
      --source               run the source analyses (state-coverage,
                             phase-safety, horizon-purity, determinism
                             rules) over the workspace tree instead of
                             an elaborated GPU; exits 1 on findings
      --report <file>        with --source: also write the findings to
                             a report file (identical to stdout)
      --root <dir>           with --source: workspace root to scan
                             (default: current directory)
    sweep                    run the selected workload across a grid of
                             case-study configurations on worker threads;
                             writes sweep.csv / sweep.json to --out-dir.
                             The merged report is in job order, so it is
                             byte-identical for any worker count.
      --tus-list <a,b,..>    texture-unit counts to sweep (default 1,2,3,4)
      --schedulers <a,b>     shader schedulers to sweep: window,queue
                             (default both)
      --trcd-list <a,b,..>   DRAM tRCD values to sweep (row-miss cost)
      --trp-list <a,b,..>    DRAM tRP values to sweep (row-conflict adds
                             tRP + tRCD)
      --banks-list <a,b,..>  DRAM banks-per-channel counts to sweep
      --workers <n>          worker threads (default: available cores)
    serve                    resumable job daemon: run the sweep grid as a
                             job queue with per-job (simulated-cycle)
                             timeouts, checkpointed retries with capped
                             exponential backoff, poison-job quarantine
                             and panic containment; writes serve.json to
                             --out-dir and exits nonzero if any job was
                             quarantined
      --smoke                run the built-in self-test job set (healthy,
                             panicking, poison and checkpointing jobs)
                             and exit nonzero unless every job lands in
                             its expected bucket
      --retry-limit <n>      attempts per job before quarantine (default 3)
"
}

fn parse_list<T: std::str::FromStr>(text: &str, flag: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    let list: Vec<T> = text
        .split(',')
        .map(|t| t.trim().parse().map_err(|e| format!("{flag}: {e}")))
        .collect::<Result<_, _>>()?;
    if list.is_empty() {
        return Err(format!("{flag} needs at least one entry"));
    }
    Ok(list)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        lint: false,
        lint_all_presets: false,
        lint_deny_warnings: false,
        lint_source: false,
        lint_report: None,
        lint_root: None,
        sweep: false,
        sweep_tus: vec![1, 2, 3, 4],
        sweep_schedulers: vec![ShaderScheduling::ThreadWindow, ShaderScheduling::InOrderQueue],
        sweep_trcd: None,
        sweep_trp: None,
        sweep_banks: None,
        viz: None,
        viz_out: None,
        viz_title: None,
        viz_buckets: 240,
        serve: false,
        serve_smoke: false,
        retry_limit: 3,
        workers: None,
        threads: 1,
        checkpoint_every: None,
        checkpoint_path: None,
        resume: false,
        config_file: None,
        preset: "baseline".into(),
        tus: None,
        scheduler: None,
        trace_file: None,
        workload: None,
        width: 160,
        height: 120,
        frames: 2,
        hot_start: 0,
        max_frames: None,
        max_cycles: None,
        out_dir: PathBuf::from("target/attila-run"),
        stats: false,
        signal_trace: false,
        dump_config: false,
        dump_trace: false,
        dump_pipeline: false,
        stv: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "lint" => args.lint = true,
            "--all-presets" => args.lint_all_presets = true,
            "--deny-warnings" => args.lint_deny_warnings = true,
            "--source" => args.lint_source = true,
            "--report" => args.lint_report = Some(PathBuf::from(val("--report")?)),
            "--root" => args.lint_root = Some(PathBuf::from(val("--root")?)),
            "sweep" => args.sweep = true,
            "viz" => {
                args.viz = Some(PathBuf::from(val("viz <trace-file>")?));
            }
            "--out" => args.viz_out = Some(PathBuf::from(val("--out")?)),
            "--title" => args.viz_title = Some(val("--title")?),
            "--buckets" => {
                args.viz_buckets =
                    val("--buckets")?.parse().map_err(|e| format!("--buckets: {e}"))?;
                if args.viz_buckets == 0 {
                    return Err("--buckets needs at least 1".into());
                }
            }
            "serve" => args.serve = true,
            "--smoke" => args.serve_smoke = true,
            "--retry-limit" => {
                args.retry_limit =
                    val("--retry-limit")?.parse().map_err(|e| format!("--retry-limit: {e}"))?
            }
            "--checkpoint-every" => {
                args.checkpoint_every = Some(
                    val("--checkpoint-every")?
                        .parse()
                        .map_err(|e| format!("--checkpoint-every: {e}"))?,
                )
            }
            "--checkpoint" => {
                args.checkpoint_path = Some(PathBuf::from(val("--checkpoint")?))
            }
            "--resume" => args.resume = true,
            "--tus-list" => {
                args.sweep_tus = val("--tus-list")?
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|e| format!("--tus-list: {e}")))
                    .collect::<Result<_, _>>()?;
                if args.sweep_tus.is_empty() {
                    return Err("--tus-list needs at least one count".into());
                }
            }
            "--schedulers" => {
                args.sweep_schedulers = val("--schedulers")?
                    .split(',')
                    .map(|s| match s.trim() {
                        "window" => Ok(ShaderScheduling::ThreadWindow),
                        "queue" => Ok(ShaderScheduling::InOrderQueue),
                        other => Err(format!("unknown scheduler `{other}`")),
                    })
                    .collect::<Result<_, _>>()?;
                if args.sweep_schedulers.is_empty() {
                    return Err("--schedulers needs at least one entry".into());
                }
            }
            "--trcd-list" => {
                args.sweep_trcd = Some(parse_list(&val("--trcd-list")?, "--trcd-list")?);
            }
            "--trp-list" => {
                args.sweep_trp = Some(parse_list(&val("--trp-list")?, "--trp-list")?);
            }
            "--banks-list" => {
                let banks: Vec<usize> = parse_list(&val("--banks-list")?, "--banks-list")?;
                if banks.contains(&0) {
                    return Err("--banks-list: a channel needs at least one bank".into());
                }
                args.sweep_banks = Some(banks);
            }
            "--workers" => {
                args.workers =
                    Some(val("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?)
            }
            "--threads" => {
                args.threads = val("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
                if args.threads == 0 {
                    return Err("--threads needs at least 1".into());
                }
            }
            "--config" => args.config_file = Some(PathBuf::from(val("--config")?)),
            "--preset" => args.preset = val("--preset")?,
            "--tus" => args.tus = Some(val("--tus")?.parse().map_err(|e| format!("--tus: {e}"))?),
            "--scheduler" => {
                args.scheduler = Some(match val("--scheduler")?.as_str() {
                    "window" => ShaderScheduling::ThreadWindow,
                    "queue" => ShaderScheduling::InOrderQueue,
                    other => return Err(format!("unknown scheduler `{other}`")),
                })
            }
            "--trace" => args.trace_file = Some(PathBuf::from(val("--trace")?)),
            "--workload" => args.workload = Some(val("--workload")?),
            "--width" => args.width = val("--width")?.parse().map_err(|e| format!("{e}"))?,
            "--height" => args.height = val("--height")?.parse().map_err(|e| format!("{e}"))?,
            "--frames" => args.frames = val("--frames")?.parse().map_err(|e| format!("{e}"))?,
            "--hot-start" => {
                args.hot_start = val("--hot-start")?.parse().map_err(|e| format!("{e}"))?
            }
            "--max-frames" => {
                args.max_frames = Some(val("--max-frames")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--max-cycles" => {
                args.max_cycles = Some(val("--max-cycles")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--out-dir" => args.out_dir = PathBuf::from(val("--out-dir")?),
            "--stats" => args.stats = true,
            "--signal-trace" => args.signal_trace = true,
            "--dump-config" => args.dump_config = true,
            "--dump-trace" => args.dump_trace = true,
            "--dump-pipeline" => args.dump_pipeline = true,
            "--stv" => {
                let file = PathBuf::from(val("--stv")?);
                let from = val("--stv")?.parse().map_err(|e| format!("--stv from: {e}"))?;
                let to = val("--stv")?.parse().map_err(|e| format!("--stv to: {e}"))?;
                args.stv = Some((file, from, to));
            }
            "--help" | "-h" => {
                print!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn build_config(args: &Args) -> Result<GpuConfig, String> {
    let mut config = if let Some(path) = &args.config_file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        GpuConfig::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?
    } else {
        match args.preset.as_str() {
            "baseline" => GpuConfig::baseline(),
            "non-unified" => GpuConfig::non_unified_baseline(),
            "case-study" => GpuConfig::case_study(
                args.tus.unwrap_or(3),
                args.scheduler.unwrap_or(ShaderScheduling::ThreadWindow),
            ),
            "embedded" => GpuConfig::embedded(),
            "high-end" => GpuConfig::high_end(),
            other => return Err(format!("unknown preset `{other}`")),
        }
    };
    if let Some(tus) = args.tus {
        config.texture.units = tus;
    }
    if let Some(s) = args.scheduler {
        config.shader.scheduling = s;
    }
    config.validate().map_err(|e| e.to_string())?;
    Ok(config)
}

fn build_trace(args: &Args) -> Result<GlTrace, String> {
    if let Some(path) = &args.trace_file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        return GlTrace::from_json(&text).map_err(|e| format!("{}: {e}", path.display()));
    }
    let params = WorkloadParams {
        width: args.width,
        height: args.height,
        frames: args.frames,
        texture_size: 128,
        ..Default::default()
    };
    Ok(match args.workload.as_deref().unwrap_or("quickstart") {
        "quickstart" => workloads::quickstart_trace(args.width, args.height),
        "doom3" => workloads::doom3_like(params),
        "ut2004" => workloads::ut2004_like(params),
        "embedded" => workloads::embedded_scene(params),
        "texture_stream" => workloads::texture_stream(params),
        "fillrate" => workloads::fillrate(args.width, args.height, 8, true),
        other => return Err(format!("unknown workload `{other}`")),
    })
}

/// `attila lint`: elaborate the selected GPU(s), run the architecture
/// verifier and report, without ever starting the clock. The startup
/// check is disabled here — the whole point is to *print* the findings
/// rather than die in `Gpu::new`.
fn run_lint(args: &Args) -> Result<(), CliError> {
    if args.lint_source {
        return run_source_lint(args);
    }
    let configs: Vec<(String, GpuConfig)> = if args.lint_all_presets {
        vec![
            ("baseline".into(), GpuConfig::baseline()),
            ("non-unified".into(), GpuConfig::non_unified_baseline()),
            (
                "case-study".into(),
                GpuConfig::case_study(3, ShaderScheduling::ThreadWindow),
            ),
            ("embedded".into(), GpuConfig::embedded()),
            ("high-end".into(), GpuConfig::high_end()),
        ]
    } else {
        let name = args
            .config_file
            .as_ref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| args.preset.clone());
        vec![(name, build_config(args)?)]
    };

    let mut denies = 0;
    let mut warns = 0;
    for (name, mut config) in configs {
        config.lint_on_start = false;
        config.validate().map_err(|e| format!("{name}: {e}"))?;
        let gpu = Gpu::new(config);
        let report = gpu.lint();
        print!("== {name}: {report}");
        denies += report.deny_count();
        warns += report.warn_count();
    }
    if denies > 0 || (args.lint_deny_warnings && warns > 0) {
        return Err(CliError::Usage(format!(
            "lint failed: {denies} deny, {warns} warn finding(s)"
        )));
    }
    Ok(())
}

/// `attila lint --source`: run the whole-workspace source analyses
/// (state-coverage, phase-safety, horizon-purity plus the determinism
/// rules) over the tree at `--root` and exit 1 on findings. This is the
/// single CI gate; `cargo run -p attila-lint` is the same engine behind
/// a standalone binary.
fn run_source_lint(args: &Args) -> Result<(), CliError> {
    let root = args.lint_root.clone().unwrap_or_else(|| PathBuf::from("."));
    let files = attila_lint::scan_workspace(&root)
        .map_err(|e| CliError::Usage(format!("scanning {}: {e}", root.display())))?;
    let findings = attila_lint::lint(&files);
    let text = attila_lint::render_report(&findings, files.len(), args.lint_deny_warnings);
    print!("{text}");
    if let Some(path) = &args.lint_report {
        std::fs::write(path, &text)
            .map_err(|e| CliError::Usage(format!("writing {}: {e}", path.display())))?;
    }
    let denies =
        findings.iter().filter(|f| f.severity == attila_lint::Severity::Deny).count();
    let warns = findings.len() - denies;
    if denies > 0 || (args.lint_deny_warnings && warns > 0) {
        return Err(CliError::Usage(format!(
            "source lint failed: {denies} deny, {warns} warn finding(s)"
        )));
    }
    Ok(())
}

/// The sweep/serve configuration grid: case-study texture-unit counts ×
/// shader schedulers, optionally crossed with DRAM timing axes
/// (`--trcd-list`, `--trp-list`, `--banks-list`). Memory axes only show
/// up in the label when explicitly swept, so the default grid's labels
/// are unchanged.
fn sweep_grid(args: &Args, width: u32, height: u32) -> Result<Vec<(String, GpuConfig)>, String> {
    let trcd_axis = args.sweep_trcd.clone().map(|v| (true, v)).unwrap_or((false, vec![0]));
    let trp_axis = args.sweep_trp.clone().map(|v| (true, v)).unwrap_or((false, vec![0]));
    let banks_axis = args.sweep_banks.clone().map(|v| (true, v)).unwrap_or((false, vec![0]));
    let mut grid = Vec::new();
    for &tus in &args.sweep_tus {
        for &sched in &args.sweep_schedulers {
            for &trcd in &trcd_axis.1 {
                for &trp in &trp_axis.1 {
                    for &banks in &banks_axis.1 {
                        let mut config = GpuConfig::case_study(tus, sched);
                        config.display.width = width;
                        config.display.height = height;
                        let sched_name = match sched {
                            ShaderScheduling::ThreadWindow => "window",
                            ShaderScheduling::InOrderQueue => "queue",
                        };
                        let mut label = format!("tus{tus}-{sched_name}");
                        if trcd_axis.0 {
                            config.memory.t_rcd = trcd;
                            label.push_str(&format!("-trcd{trcd}"));
                        }
                        if trp_axis.0 {
                            config.memory.t_rp = trp;
                            label.push_str(&format!("-trp{trp}"));
                        }
                        if banks_axis.0 {
                            config.memory.banks = banks;
                            label.push_str(&format!("-bk{banks}"));
                        }
                        config.validate().map_err(|e| e.to_string())?;
                        grid.push((label, config));
                    }
                }
            }
        }
    }
    Ok(grid)
}

/// `attila sweep`: fan the selected workload across a grid of case-study
/// configurations (texture-unit counts × shader schedulers) on worker
/// threads, then write the merged, job-ordered report. Per-config results
/// are bit-identical to a serial run, so the CSV/JSON never depend on the
/// worker count or OS scheduling.
fn run_sweep_cli(args: &Args) -> Result<(), CliError> {
    use attila::core::sweep::{run_sweep, sweep_csv, sweep_json, SweepJob};

    let trace = build_trace(args)?;
    let player = GlPlayer { skip_frames: args.hot_start, max_frames: args.max_frames };
    let commands = player.replay(&trace).map_err(|e| CliError::Usage(e.to_string()))?;

    let mut jobs: Vec<SweepJob> = sweep_grid(args, trace.width, trace.height)?
        .into_iter()
        .map(|(label, config)| SweepJob { label, config, threads: 1 })
        .collect();
    let workers = args.workers.unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    });
    // Thread-budget arbitration: `--threads` is a machine-wide budget, so
    // each concurrent job gets an equal share (never below the serial loop).
    let per_job = (args.threads / workers.max(1)).max(1);
    for j in &mut jobs {
        j.threads = per_job;
    }
    eprintln!(
        "sweep: {} configs ({} tus x {} schedulers) on {workers} worker(s), {per_job} thread(s)/job",
        jobs.len(),
        args.sweep_tus.len(),
        args.sweep_schedulers.len(),
    );
    // lint:allow(wall-clock) host-side harness timing; not part of the deterministic report
    let start = std::time::Instant::now();
    let outcomes = run_sweep(jobs, std::sync::Arc::new(commands), workers);
    let wall = start.elapsed().as_secs_f64();

    std::fs::create_dir_all(&args.out_dir).map_err(|e| CliError::Usage(e.to_string()))?;
    let csv = sweep_csv(&outcomes);
    let csv_path = args.out_dir.join("sweep.csv");
    std::fs::write(&csv_path, &csv).map_err(|e| CliError::Usage(e.to_string()))?;
    let json_path = args.out_dir.join("sweep.json");
    std::fs::write(&json_path, sweep_json(&outcomes).pretty())
        .map_err(|e| CliError::Usage(e.to_string()))?;

    print!("{csv}");
    println!("sweep: {} configs in {wall:.2}s -> {} and {}",
        outcomes.len(),
        csv_path.display(),
        json_path.display(),
    );
    let failed: Vec<&attila::core::SweepOutcome> =
        outcomes.iter().filter(|o| o.error.is_some()).collect();
    if !failed.is_empty() {
        for f in &failed {
            eprintln!("sweep: config `{}` failed: {}", f.label, f.error.as_deref().unwrap_or(""));
        }
        return Err(CliError::Usage(format!(
            "sweep: {} of {} config(s) failed; the other rows are intact in {}",
            failed.len(),
            outcomes.len(),
            csv_path.display(),
        )));
    }
    Ok(())
}

/// `attila serve`: the resumable job daemon. `--smoke` runs the built-in
/// self-test job set; otherwise the sweep grid becomes the job queue,
/// each job under a per-job simulated-cycle timeout, retried from its
/// last checkpoint with capped exponential backoff, quarantined when it
/// fails deterministically, and fenced against worker panics.
fn run_serve_cli(args: &Args) -> Result<(), CliError> {
    use attila::core::serve::{self, JobSpec, ServeConfig};

    std::fs::create_dir_all(&args.out_dir).map_err(|e| CliError::Usage(e.to_string()))?;
    let work_dir = args.out_dir.join("serve");

    // Worker panics are caught, signatured and reported by the daemon;
    // the default hook's backtrace spew on stderr is just noise here.
    std::panic::set_hook(Box::new(|_| {}));

    if args.serve_smoke {
        let (report, passed) = serve::smoke(&work_dir);
        for r in &report.results {
            println!("  {:<14} attempts={} resumed={} {}", r.id, r.attempts, r.resumed,
                if r.completed() { "completed" } else { "quarantined" });
        }
        println!("serve --smoke: {}", report.summary());
        return if passed {
            println!("serve --smoke: PASS");
            Ok(())
        } else {
            Err(CliError::Usage("serve --smoke: job set landed in the wrong buckets".into()))
        };
    }

    let trace = build_trace(args)?;
    let player = GlPlayer { skip_frames: args.hot_start, max_frames: args.max_frames };
    let commands = player.replay(&trace).map_err(|e| CliError::Usage(e.to_string()))?;
    let mut jobs = Vec::new();
    for (label, config) in sweep_grid(args, trace.width, trace.height)? {
        let mut job = JobSpec::new(label, config, commands.clone());
        if let Some(limit) = args.max_cycles {
            job.max_cycles = limit;
        }
        job.checkpoint_every = args.checkpoint_every;
        jobs.push(job);
    }
    let workers = args.workers.unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    });
    // Same budget arbitration as sweep: split `--threads` across workers.
    let per_job = (args.threads / workers.max(1)).max(1);
    for job in &mut jobs {
        job.threads = per_job;
    }
    eprintln!("serve: {} job(s) on {workers} worker(s), {per_job} thread(s)/job, retry limit {}",
        jobs.len(), args.retry_limit);
    let serve_config = ServeConfig {
        workers,
        retry_limit: args.retry_limit,
        work_dir,
        ..ServeConfig::default()
    };
    let report = serve::serve(&serve_config, jobs);
    let json_path = args.out_dir.join("serve.json");
    std::fs::write(&json_path, report.to_json().pretty())
        .map_err(|e| CliError::Usage(e.to_string()))?;
    for r in &report.results {
        println!("  {:<20} attempts={} resumed={} {}", r.id, r.attempts, r.resumed,
            if r.completed() { "completed" } else { "quarantined" });
    }
    println!("serve: {} -> {}", report.summary(), json_path.display());
    if report.quarantined() > 0 {
        return Err(CliError::Usage(format!(
            "serve: {} job(s) quarantined (results for the others are intact)",
            report.quarantined()
        )));
    }
    Ok(())
}

/// What went wrong, and therefore which exit code to die with.
enum CliError {
    /// Bad arguments, unreadable files, invalid configs: exit 1.
    Usage(String),
    /// The simulator aborted on a fault or hung past the watchdog:
    /// exit 2 (fault) or 3 (hang), with the failure report on stderr.
    Gpu(Box<GpuError>),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

fn run() -> Result<(), CliError> {
    let args = parse_args()?;
    if let Some((file, from, to)) = &args.stv {
        let text =
            std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        let trace = attila::sim::SignalTrace::parse(&text);
        println!("{} events in {}", trace.len(), file.display());
        print!("{}", trace.render(*from, *to));
        return Ok(());
    }
    if let Some(input) = &args.viz {
        let text =
            std::fs::read_to_string(input).map_err(|e| format!("{}: {e}", input.display()))?;
        let trace = attila::sim::SignalTrace::parse(&text);
        let opts = attila::sim::VizOptions {
            title: args
                .viz_title
                .clone()
                .unwrap_or_else(|| format!("ATTILA signal timeline: {}", input.display())),
            buckets: args.viz_buckets,
        };
        let html = attila::sim::render_html(&trace, &opts);
        let out = args
            .viz_out
            .clone()
            .unwrap_or_else(|| args.out_dir.join("timeline.html"));
        if let Some(dir) = out.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
        std::fs::write(&out, &html).map_err(|e| format!("{}: {e}", out.display()))?;
        println!(
            "viz: {} events from {} -> {} ({} bytes)",
            trace.len(),
            input.display(),
            out.display(),
            html.len(),
        );
        return Ok(());
    }
    if args.lint {
        return run_lint(&args);
    }
    if args.sweep {
        return run_sweep_cli(&args);
    }
    if args.serve {
        return run_serve_cli(&args);
    }
    let mut config = build_config(&args)?;
    if args.dump_config {
        println!("{}", config.to_json());
        return Ok(());
    }
    if args.dump_pipeline {
        let gpu = Gpu::new(config);
        println!("== ATTILA pipeline: {} signals ==", gpu.binder().len());
        print!("{}", gpu.binder().describe());
        return Ok(());
    }
    let trace = build_trace(&args)?;
    if args.dump_trace {
        println!("{}", trace.to_json());
        return Ok(());
    }
    config.display.width = trace.width;
    config.display.height = trace.height;

    let player = GlPlayer { skip_frames: args.hot_start, max_frames: args.max_frames };
    let commands = player.replay(&trace).map_err(|e| CliError::Usage(e.to_string()))?;
    eprintln!(
        "trace: {} API calls, {} frames; GPU: {} shader unit(s), {} TU(s), {:?} scheduler",
        trace.calls.len(),
        trace.frame_count(),
        config.shader.fragment_units,
        config.texture.units,
        config.shader.scheduling,
    );

    std::fs::create_dir_all(&args.out_dir).map_err(|e| CliError::Usage(e.to_string()))?;
    let clock = config.display.clock_mhz;
    let ckpt_path = args
        .checkpoint_path
        .clone()
        .unwrap_or_else(|| args.out_dir.join("latest.ckpt"));
    let mut resumed = false;
    let mut gpu = if args.resume {
        // Restore refuses (typed, no panic) on a corrupt file, a future
        // format version or a config/trace that doesn't hash-match.
        let ckpt = Checkpoint::read_file(&ckpt_path)
            .map_err(|e| CliError::Usage(format!("{}: {e}", ckpt_path.display())))?;
        let gpu = Gpu::restore_with_threads(config, args.threads, &commands, &ckpt, None)
            .map_err(|e| CliError::Usage(format!("{}: {e}", ckpt_path.display())))?;
        eprintln!(
            "resumed from {} at cycle {} ({} of {} commands consumed)",
            ckpt_path.display(),
            ckpt.body.cycle,
            ckpt.body.commands_consumed,
            commands.len(),
        );
        resumed = true;
        gpu
    } else {
        Gpu::with_threads(config, args.threads)
    };
    if let Some(limit) = args.max_cycles {
        gpu.max_cycles = limit;
    }
    if args.checkpoint_every.is_some() {
        gpu.checkpoint_every = args.checkpoint_every;
        gpu.checkpoint_path = Some(ckpt_path.clone());
    }
    let sink = args.signal_trace.then(|| gpu.enable_signal_trace(200_000));
    // A resumed GPU already holds the unconsumed tail of the trace.
    let to_run: &[attila::core::commands::GpuCommand] = if resumed { &[] } else { &commands };
    let result = gpu.run_trace(to_run).map_err(|e| CliError::Gpu(Box::new(e)))?;
    if gpu.checkpoint_every.is_some() && ckpt_path.exists() {
        // The run drained: the checkpoint has served its purpose.
        let _ = std::fs::remove_file(&ckpt_path);
    }

    println!("{}", gpu.summary());
    println!("fps at {clock} MHz: {:.2}", result.fps(clock));
    for (i, frame) in result.framebuffers.iter().enumerate() {
        let path = args.out_dir.join(format!("frame{i}.ppm"));
        std::fs::write(&path, frame.to_ppm()).map_err(|e| e.to_string())?;
        println!("frame {i} -> {}", path.display());
    }
    if args.stats {
        let path = args.out_dir.join("stats.csv");
        std::fs::write(&path, gpu.stats().csv()).map_err(|e| e.to_string())?;
        let totals = args.out_dir.join("stats_totals.csv");
        std::fs::write(&totals, gpu.stats().totals_csv()).map_err(|e| e.to_string())?;
        println!("statistics -> {} and {}", path.display(), totals.display());
    }
    if let Some(sink) = sink {
        let trace_ref = sink.borrow();
        let path = args.out_dir.join("signal_trace.txt");
        std::fs::write(&path, trace_ref.dump()).map_err(|e| e.to_string())?;
        println!("signal trace ({} events) -> {}", trace_ref.len(), path.display());
        let first = trace_ref.events().first().map(|e| e.cycle).unwrap_or(0);
        println!();
        println!("== Signal Trace Visualizer: cycles {first}..{} ==", first + 120);
        print!("{}", trace_ref.render(first, first + 120));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(CliError::Gpu(e)) => {
            // The post-mortem first — which box hung, which wire dropped
            // data — then the one-line cause. No panic, no backtrace.
            if let Some(report) = e.report() {
                eprintln!("{report}");
            }
            eprintln!("error: {e}");
            match *e {
                GpuError::Watchdog { .. } => ExitCode::from(3),
                _ => ExitCode::from(2),
            }
        }
    }
}
