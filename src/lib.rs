//! # ATTILA-rs
//!
//! A Rust reproduction of the **ATTILA** cycle-level, execution-driven GPU
//! simulator (Moya et al., ISPASS 2006). This facade crate re-exports the
//! workspace sub-crates so examples and downstream users can depend on a
//! single crate:
//!
//! * [`sim`] — boxes-and-signals simulation framework (paper §3).
//! * [`emu`] — functional emulators: shader ISA, texture sampling, fragment
//!   operations, rasterization math (paper §3).
//! * [`mem`] — GDDR3-style memory controller, caches and crossbar (paper §2.2).
//! * [`core`] — the GPU pipeline itself: every unit from Command Processor
//!   to DAC, and the top-level [`core::Gpu`] (paper §2).
//! * [`gl`] — the OpenGL-subset framework: library, driver, trace
//!   capture/replay and synthetic workloads (paper §4).
//!
//! * [`lint`] — the source determinism and state-coverage linter behind
//!   `attila lint --source` (DESIGN.md §21).
//!
//! Two further workspace crates are not re-exported: `attila-json` (the
//! dependency-free JSON library behind config files and captured traces)
//! and `attila-bench` (the harnesses regenerating the paper's tables and
//! figures).
//!
//! ## Quickstart
//!
//! ```
//! use attila::core::{Gpu, GpuConfig};
//! use attila::gl::workloads;
//!
//! // Build the baseline GPU and render one tiny frame.
//! let mut config = GpuConfig::baseline();
//! config.display.width = 64;
//! config.display.height = 64;
//! let trace = workloads::quickstart_triangle(64, 64);
//! let mut gpu = Gpu::new(config);
//! let result = gpu.run_trace(&trace).expect("simulation runs");
//! assert!(result.cycles > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use attila_core as core;
pub use attila_emu as emu;
pub use attila_gl as gl;
pub use attila_lint as lint;
pub use attila_mem as mem;
pub use attila_sim as sim;
