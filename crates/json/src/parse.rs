//! A strict recursive-descent JSON parser.

use crate::{Json, JsonError};

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a [`JsonError`] with a byte offset for malformed input or
/// trailing garbage.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> JsonError {
        JsonError::msg(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.error("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.pos += 1;
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("bad low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("bad unicode escape"))?;
                            out.push(c);
                            // hex4 leaves pos on the last hex digit.
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 encoded char (input is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads four hex digits starting at `pos`, leaving `pos` on the last one.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for i in 0..4 {
            let d = self
                .bytes
                .get(self.pos + i)
                .and_then(|b| (*b as char).to_digit(16))
                .ok_or_else(|| self.error("bad \\u escape"))?;
            code = code * 16 + d;
        }
        self.pos += 3;
        Ok(code)
    }
}
