//! A small, dependency-free JSON library for the simulator's on-disk
//! formats (GPU configuration files and captured API traces).
//!
//! The crate provides a [`Json`] value model, a strict recursive-descent
//! [`parse`] function, compact and pretty printers, and the
//! [`ToJson`]/[`FromJson`] conversion traits together with three
//! derive-style macros ([`impl_json_struct!`], [`impl_json_enum_unit!`]
//! and [`impl_json_enum!`]) that generate conversions for plain structs
//! and enums. The encoding is the conventional externally-tagged one:
//! unit enum variants serialize as strings, data-carrying variants as
//! single-key objects (`{"Variant": {...}}`), so files written by earlier
//! serde-based builds keep parsing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convert;
mod parse;
mod value;

pub use convert::{field, FromJson, ToJson};
pub use parse::parse;
pub use value::Json;

use std::fmt;

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Builds an error from a message.
    pub fn msg(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }

    /// Returns a copy of this error with `context` prefixed, used to build
    /// a path-like trail while unwinding nested conversions.
    pub fn in_context(&self, context: &str) -> Self {
        JsonError { msg: format!("{context}: {}", self.msg) }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for JsonError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\\n\\\"there\\\"\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&v.render()).unwrap(), v, "round-trip {text}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":{"d":[true,false]},"e":-0.125}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.render(), text);
        let pretty = v.pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        for text in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated", "{\"a\" 1}"] {
            assert!(parse(text).is_err(), "should reject {text:?}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""Aé😀""#).unwrap();
        assert_eq!(v, Json::Str("Aé😀".to_string()));
        // Non-ASCII renders escaped-free but still round-trips.
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn float_precision_round_trips() {
        for x in [0.1f64, 1e-9, 123456789.123456, f64::from(f32::MAX)] {
            let v = Json::Num(x);
            let Json::Num(back) = parse(&v.render()).unwrap() else { panic!() };
            assert_eq!(back, x);
        }
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        name: String,
        count: u32,
        scale: f32,
        tags: Vec<String>,
        table: BTreeMap<String, u64>,
    }
    impl_json_struct!(Demo { name, count, scale, tags, table });

    #[test]
    fn struct_macro_round_trips() {
        let mut table = BTreeMap::new();
        table.insert("mul".to_string(), 9u64);
        let d = Demo {
            name: "x".into(),
            count: 3,
            scale: 0.25,
            tags: vec!["a".into(), "b".into()],
            table,
        };
        let v = d.to_json();
        assert_eq!(Demo::from_json(&v).unwrap(), d);
        let err = Demo::from_json(&parse("{\"name\":\"x\"}").unwrap()).unwrap_err();
        assert!(err.to_string().contains("count"), "mentions missing field: {err}");
    }

    #[derive(Debug, PartialEq, Clone, Copy)]
    enum Mode {
        Fast,
        Slow,
    }
    impl_json_enum_unit!(Mode { Fast, Slow });

    #[test]
    fn unit_enum_macro() {
        assert_eq!(Mode::Fast.to_json(), Json::Str("Fast".into()));
        assert_eq!(Mode::from_json(&Json::Str("Slow".into())).unwrap(), Mode::Slow);
        assert!(Mode::from_json(&Json::Str("Medium".into())).is_err());
    }

    #[derive(Debug, PartialEq)]
    enum Cmd {
        Nop,
        Set(Mode),
        Move { x: f32, y: f32 },
    }
    impl_json_enum!(Cmd {
        units { Nop }
        newtypes { Set(Mode) }
        structs { Move { x, y } }
    });

    #[test]
    fn mixed_enum_macro() {
        let cases = [Cmd::Nop, Cmd::Set(Mode::Slow), Cmd::Move { x: 1.5, y: -2.0 }];
        for c in cases {
            let v = c.to_json();
            assert_eq!(Cmd::from_json(&parse(&v.render()).unwrap()).unwrap(), c);
        }
        assert_eq!(Cmd::Nop.to_json().render(), "\"Nop\"");
        assert_eq!(Cmd::Set(Mode::Fast).to_json().render(), "{\"Set\":\"Fast\"}");
        assert_eq!(
            Cmd::Move { x: 1.0, y: 2.0 }.to_json().render(),
            "{\"Move\":{\"x\":1,\"y\":2}}"
        );
    }

    #[test]
    fn arrays_and_options() {
        let m = [[1.0f32, 2.0], [3.0, 4.0]];
        let v = m.to_json();
        assert_eq!(<[[f32; 2]; 2]>::from_json(&v).unwrap(), m);
        let o: Option<u32> = None;
        assert_eq!(o.to_json(), Json::Null);
        assert_eq!(<Option<u32>>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(<Option<u32>>::from_json(&Json::Num(4.0)).unwrap(), Some(4));
    }
}
