//! The JSON value model and printers.

use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map): config
/// files print their fields in declaration order, matching the structs
/// they serialize.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers survive to ±2⁵³ exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a single-key object — the externally-tagged enum encoding.
    pub fn obj1(key: &str, value: Json) -> Json {
        Json::Obj(vec![(key.to_string(), value)])
    }

    /// Looks up a key in an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders pretty JSON (two-space indent), for config files.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    write_string(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no Inf/NaN; `null` is the least-bad conventional stand-in.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        // Rust's shortest round-trip float formatting.
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
