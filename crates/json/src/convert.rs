//! [`ToJson`]/[`FromJson`] traits, implementations for std types, and the
//! derive-style macros.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::{Json, JsonError};

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion from a borrowed [`Json`] value.
pub trait FromJson: Sized {
    /// Converts a JSON value into `Self`.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the offending field or variant when
    /// the value's shape does not match.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Extracts and converts a named object field — the building block the
/// struct macro uses.
///
/// # Errors
///
/// Returns a [`JsonError`] if the field is absent or fails to convert.
pub fn field<T: FromJson>(v: &Json, name: &str) -> Result<T, JsonError> {
    match v.get(name) {
        Some(inner) => T::from_json(inner).map_err(|e| e.in_context(name)),
        None => Err(JsonError::msg(format!("missing field `{name}`"))),
    }
}

fn expect_num(v: &Json) -> Result<f64, JsonError> {
    v.as_f64().ok_or_else(|| JsonError::msg(format!("expected number, found {}", v.type_name())))
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let x = expect_num(v)?;
                if x != x.trunc() {
                    return Err(JsonError::msg(format!("expected integer, found {x}")));
                }
                let out = x as $t;
                if out as f64 != x {
                    return Err(JsonError::msg(format!(
                        "{x} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(out)
            }
        }
    )*};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}
impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        expect_num(v)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}
impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(expect_num(v)? as f32)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::msg(format!("expected bool, found {}", other.type_name()))),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::msg(format!("expected string, found {}", v.type_name())))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Arr(items) => items
                .iter()
                .enumerate()
                .map(|(i, x)| T::from_json(x).map_err(|e| e.in_context(&format!("[{i}]"))))
                .collect(),
            other => Err(JsonError::msg(format!("expected array, found {}", other.type_name()))),
        }
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: FromJson, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items: Vec<T> = Vec::from_json(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| JsonError::msg(format!("expected array of {N}, found {len}")))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}
impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}
impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, x)| Ok((k.clone(), V::from_json(x).map_err(|e| e.in_context(k))?)))
                .collect(),
            other => Err(JsonError::msg(format!("expected object, found {}", other.type_name()))),
        }
    }
}

impl<T: ToJson> ToJson for Arc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}
impl<T: FromJson> FromJson for Arc<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        T::from_json(v).map(Arc::new)
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a struct with named fields.
///
/// ```
/// use attila_json::{impl_json_struct, FromJson, ToJson};
/// #[derive(Debug, PartialEq)]
/// struct P { x: f32, y: f32 }
/// impl_json_struct!(P { x, y });
/// let p = P { x: 1.0, y: 2.0 };
/// assert_eq!(P::from_json(&p.to_json()).unwrap(), p);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($name:ident { $($f:ident),* $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $( (stringify!($f).to_string(), $crate::ToJson::to_json(&self.$f)), )*
                ])
            }
        }
        impl $crate::FromJson for $name {
            fn from_json(v: &$crate::Json) -> ::std::result::Result<Self, $crate::JsonError> {
                Ok($name { $( $f: $crate::field(v, stringify!($f))?, )* })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a C-like enum, encoding each
/// variant as its name string (serde's unit-variant encoding).
#[macro_export]
macro_rules! impl_json_enum_unit {
    ($name:ident { $($v:ident),* $(,)? }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                match self {
                    $( $name::$v => $crate::Json::Str(stringify!($v).to_string()), )*
                }
            }
        }
        impl $crate::FromJson for $name {
            fn from_json(v: &$crate::Json) -> ::std::result::Result<Self, $crate::JsonError> {
                match v {
                    $crate::Json::Str(s) => match s.as_str() {
                        $( stringify!($v) => Ok($name::$v), )*
                        other => Err($crate::JsonError::msg(format!(
                            "unknown {} variant `{other}`",
                            stringify!($name)
                        ))),
                    },
                    other => Err($crate::JsonError::msg(format!(
                        "expected {} variant string, found {}",
                        stringify!($name),
                        other.type_name()
                    ))),
                }
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for an enum mixing unit, newtype and
/// struct variants, using the externally-tagged encoding: unit variants as
/// `"Variant"`, data variants as `{"Variant": ...}`. Each of the three
/// sections must be present (possibly empty).
#[macro_export]
macro_rules! impl_json_enum {
    ($name:ident {
        units { $($u:ident),* $(,)? }
        newtypes { $($n:ident($nt:ty)),* $(,)? }
        structs { $($s:ident { $($f:ident),* $(,)? }),* $(,)? }
    }) => {
        impl $crate::ToJson for $name {
            fn to_json(&self) -> $crate::Json {
                #[allow(unused_variables)]
                match self {
                    $( $name::$u => $crate::Json::Str(stringify!($u).to_string()), )*
                    $( $name::$n(inner) => {
                        $crate::Json::obj1(stringify!($n), $crate::ToJson::to_json(inner))
                    } )*
                    $( $name::$s { $($f),* } => $crate::Json::obj1(
                        stringify!($s),
                        $crate::Json::Obj(vec![
                            $( (stringify!($f).to_string(), $crate::ToJson::to_json($f)), )*
                        ]),
                    ), )*
                }
            }
        }
        impl $crate::FromJson for $name {
            fn from_json(v: &$crate::Json) -> ::std::result::Result<Self, $crate::JsonError> {
                match v {
                    $crate::Json::Str(s) => match s.as_str() {
                        $( stringify!($u) => Ok($name::$u), )*
                        other => Err($crate::JsonError::msg(format!(
                            "unknown {} unit variant `{other}`",
                            stringify!($name)
                        ))),
                    },
                    $crate::Json::Obj(fields) if fields.len() == 1 => {
                        let (tag, inner) = &fields[0];
                        #[allow(unused_variables)]
                        match tag.as_str() {
                            $( stringify!($n) => {
                                <$nt as $crate::FromJson>::from_json(inner)
                                    .map($name::$n)
                                    .map_err(|e| e.in_context(stringify!($n)))
                            } )*
                            $( stringify!($s) => Ok($name::$s {
                                $( $f: $crate::field(inner, stringify!($f))
                                    .map_err(|e| e.in_context(stringify!($s)))?, )*
                            }), )*
                            other => Err($crate::JsonError::msg(format!(
                                "unknown {} variant `{other}`",
                                stringify!($name)
                            ))),
                        }
                    }
                    other => Err($crate::JsonError::msg(format!(
                        "expected {} variant, found {}",
                        stringify!($name),
                        other.type_name()
                    ))),
                }
            }
        }
    };
}
