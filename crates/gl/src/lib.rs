//! # attila-gl — the OpenGL framework
//!
//! The trace-production half of the ATTILA system (Moya et al., ISPASS
//! 2006, §4): an OpenGL-subset **library** and **driver** translating API
//! calls into Command Processor commands, the **GLInterceptor** /
//! **GLPlayer** trace tooling with hot-start frame skipping, synthetic
//! **workloads** standing in for the paper's UT2004/Doom3 captures, and
//! output **verification** against the golden-model renderer.
//!
//! | Paper component | Module |
//! |---|---|
//! | OpenGL library + driver | [`api`] |
//! | Fixed-function / alpha-test / fog shader generation | [`fixed`] |
//! | GLInterceptor, GLPlayer, trace file format, hot start | [`trace`] |
//! | Game traces (substituted by synthetic generators) | [`workloads`] |
//! | Frame validation (the paper's Figure 10 methodology) | [`verify`] |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod fixed;
pub mod trace;
pub mod verify;
pub mod workloads;

pub use api::{compile, GlCall, GlContext, GlError};
pub use trace::{GlInterceptor, GlPlayer, GlTrace};
pub use verify::{diff_frames, golden_frames, ImageDiff};
