//! Trace capture and replay: GLInterceptor and GLPlayer.
//!
//! Per the paper (§4): "GLInterceptor replaces the OpenGL library and
//! records all OpenGL commands issued by the application with all their
//! parameter values, associated texture and vertex buffers data. This
//! information is stored in an output file, a trace file for our
//! simulator. [...] To verify the integrity and faithfulness of the
//! recorded trace a second tool, GLPlayer, can be used to reproduce and
//! validate the captured trace." Traces are not time-stamped, isolating
//! the simulator from CPU-side effects.
//!
//! A trace here is the serialized [`GlCall`] list plus the display
//! geometry. The player supports the paper's **hot start**: skipping the
//! draw commands of leading frames while still applying state changes and
//! buffer writes, so any span of frames can be simulated independently.

use attila_core::commands::GpuCommand;

use crate::api::{GlCall, GlContext, GlError};

/// A captured API trace — the simulator's input file format.
#[derive(Debug, Clone, PartialEq)]
pub struct GlTrace {
    /// Framebuffer width the trace was captured at.
    pub width: u32,
    /// Framebuffer height.
    pub height: u32,
    /// The recorded calls.
    pub calls: Vec<GlCall>,
}

impl GlTrace {
    /// Number of frames (SwapBuffers calls) in the trace.
    pub fn frame_count(&self) -> usize {
        self.calls.iter().filter(|c| matches!(c, GlCall::SwapBuffers)).count()
    }

    /// Serializes to the on-disk trace format (JSON).
    pub fn to_json(&self) -> String {
        attila_json::ToJson::to_json(self).render()
    }

    /// Parses a trace file.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error for malformed input.
    pub fn from_json(text: &str) -> Result<Self, attila_json::JsonError> {
        attila_json::FromJson::from_json(&attila_json::parse(text)?)
    }
}

attila_json::impl_json_struct!(GlTrace { width, height, calls });

/// Records API calls while forwarding them to a live context — the
/// GLInterceptor sits between the "application" and the library.
pub struct GlInterceptor {
    context: GlContext,
    trace: GlTrace,
}

impl GlInterceptor {
    /// Wraps a fresh context of the given size.
    pub fn new(width: u32, height: u32) -> Self {
        GlInterceptor {
            context: GlContext::new(width, height),
            trace: GlTrace { width, height, calls: Vec::new() },
        }
    }

    /// Records and applies one call.
    ///
    /// # Errors
    ///
    /// Propagates the context's [`GlError`]; failing calls are *not*
    /// recorded (the real interceptor also forwards to the original
    /// library and only stores successful calls).
    pub fn call(&mut self, call: GlCall) -> Result<(), GlError> {
        self.context.apply(&call)?;
        self.trace.calls.push(call);
        Ok(())
    }

    /// The live context (e.g. to drain commands while capturing).
    pub fn context_mut(&mut self) -> &mut GlContext {
        &mut self.context
    }

    /// Finishes the capture, returning the trace and the command stream
    /// the application produced while being recorded.
    pub fn finish(mut self) -> (GlTrace, Vec<GpuCommand>) {
        let commands = self.context.take_commands();
        (self.trace, commands)
    }
}

impl std::fmt::Debug for GlInterceptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlInterceptor").field("calls", &self.trace.calls.len()).finish()
    }
}

/// Replays a captured trace, producing the simulator's command stream —
/// the GLPlayer.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlPlayer {
    /// Skip the draws of the first `skip_frames` frames (hot start).
    pub skip_frames: u64,
    /// Stop after `max_frames` frames when set (frame-range simulation on
    /// a cluster, as the paper describes).
    pub max_frames: Option<u64>,
}

impl GlPlayer {
    /// A player that replays everything.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replays `trace` and returns the Command Processor stream.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GlError`] (a malformed trace).
    pub fn replay(&self, trace: &GlTrace) -> Result<Vec<GpuCommand>, GlError> {
        let mut ctx = GlContext::new(trace.width, trace.height);
        ctx.set_hot_start(self.skip_frames);
        for call in &trace.calls {
            ctx.apply(call)?;
            if let Some(max) = self.max_frames {
                if ctx.frames() >= self.skip_frames + max {
                    break;
                }
            }
        }
        Ok(ctx.take_commands())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{clear_mask, GlPrimitive};

    fn tiny_trace() -> GlTrace {
        let mut cap = GlInterceptor::new(32, 32);
        cap.call(GlCall::BufferData { id: 1, data: vec![0u8; 48] }).unwrap();
        cap.call(GlCall::VertexAttribPointer {
            attr: 0,
            buffer: 1,
            components: 4,
            stride: 16,
            offset: 0,
        })
        .unwrap();
        for _ in 0..3 {
            cap.call(GlCall::ClearColor { r: 0.0, g: 0.0, b: 0.0, a: 1.0 }).unwrap();
            cap.call(GlCall::Clear { mask: clear_mask::COLOR }).unwrap();
            cap.call(GlCall::DrawArrays { primitive: GlPrimitive::Triangles, count: 3 }).unwrap();
            cap.call(GlCall::SwapBuffers).unwrap();
        }
        cap.finish().0
    }

    #[test]
    fn interceptor_records_all_calls() {
        let trace = tiny_trace();
        assert_eq!(trace.frame_count(), 3);
        assert_eq!(trace.calls.len(), 2 + 3 * 4);
    }

    #[test]
    fn json_round_trip() {
        let trace = tiny_trace();
        let text = trace.to_json();
        let back = GlTrace::from_json(&text).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn replay_reproduces_capture_commands() {
        let mut cap = GlInterceptor::new(32, 32);
        cap.call(GlCall::BufferData { id: 1, data: vec![7u8; 48] }).unwrap();
        cap.call(GlCall::VertexAttribPointer {
            attr: 0,
            buffer: 1,
            components: 4,
            stride: 16,
            offset: 0,
        })
        .unwrap();
        cap.call(GlCall::DrawArrays { primitive: GlPrimitive::Triangles, count: 3 }).unwrap();
        cap.call(GlCall::SwapBuffers).unwrap();
        let (trace, captured_cmds) = cap.finish();
        let replayed = GlPlayer::new().replay(&trace).unwrap();
        assert_eq!(captured_cmds.len(), replayed.len());
        for (a, b) in captured_cmds.iter().zip(&replayed) {
            assert_eq!(a.mnemonic(), b.mnemonic());
        }
    }

    #[test]
    fn hot_start_skips_leading_draws() {
        let trace = tiny_trace();
        let full = GlPlayer::new().replay(&trace).unwrap();
        let hot = GlPlayer { skip_frames: 2, max_frames: None }.replay(&trace).unwrap();
        let draws = |cmds: &[GpuCommand]| {
            cmds.iter().filter(|c| matches!(c, GpuCommand::Draw(_))).count()
        };
        assert_eq!(draws(&full), 3);
        assert_eq!(draws(&hot), 1, "two frames of draws skipped");
        // Buffer uploads are preserved for hot start.
        let writes = hot
            .iter()
            .filter(|c| matches!(c, GpuCommand::WriteBuffer { .. }))
            .count();
        assert_eq!(writes, 1);
    }

    #[test]
    fn max_frames_truncates() {
        let trace = tiny_trace();
        let cmds = GlPlayer { skip_frames: 0, max_frames: Some(1) }.replay(&trace).unwrap();
        let swaps = cmds.iter().filter(|c| matches!(c, GpuCommand::Swap)).count();
        assert_eq!(swaps, 1);
    }
}
