//! The ATTILA OpenGL library: API calls and the context state machine.
//!
//! The paper's framework implements "an important part of the OpenGL API"
//! (~200 calls) as a layered library/driver stack: "the top layer, the
//! library, manages the OpenGL state while the lower layer, the driver,
//! offers basic services as writing registers, sending commands,
//! configuring shaders and basic memory allocation" (§4).
//!
//! Here the API surface is the serializable [`GlCall`] enum — the unit
//! recorded by the GLInterceptor-style tracer — and [`GlContext`] is the
//! library+driver: it tracks GL state and translates each call into
//! Command Processor commands ([`GpuCommand`]).

use std::collections::BTreeMap;
use std::sync::Arc;

use attila_core::commands::{DrawCall, GpuCommand, Primitive};
use attila_core::state::{AttributeBinding, CullMode, RenderState, ScissorState};
use attila_emu::asm;
use attila_emu::fragops as fo;
use attila_emu::raster::Viewport;
use attila_emu::texture as tex;
use attila_emu::vector::{Mat4, Vec4};
use attila_mem::BumpAllocator;

use crate::fixed::{self, FixedFunctionState};

/// Serializable compare function (mirrors the emulator's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum GlCompare {
    Never,
    Less,
    Equal,
    LEqual,
    Greater,
    NotEqual,
    GEqual,
    Always,
}

impl From<GlCompare> for fo::CompareFunc {
    fn from(c: GlCompare) -> Self {
        match c {
            GlCompare::Never => fo::CompareFunc::Never,
            GlCompare::Less => fo::CompareFunc::Less,
            GlCompare::Equal => fo::CompareFunc::Equal,
            GlCompare::LEqual => fo::CompareFunc::LEqual,
            GlCompare::Greater => fo::CompareFunc::Greater,
            GlCompare::NotEqual => fo::CompareFunc::NotEqual,
            GlCompare::GEqual => fo::CompareFunc::GEqual,
            GlCompare::Always => fo::CompareFunc::Always,
        }
    }
}

/// Serializable stencil op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum GlStencilOp {
    Keep,
    Zero,
    Replace,
    Incr,
    IncrWrap,
    Decr,
    DecrWrap,
    Invert,
}

impl From<GlStencilOp> for fo::StencilOp {
    fn from(o: GlStencilOp) -> Self {
        match o {
            GlStencilOp::Keep => fo::StencilOp::Keep,
            GlStencilOp::Zero => fo::StencilOp::Zero,
            GlStencilOp::Replace => fo::StencilOp::Replace,
            GlStencilOp::Incr => fo::StencilOp::Incr,
            GlStencilOp::IncrWrap => fo::StencilOp::IncrWrap,
            GlStencilOp::Decr => fo::StencilOp::Decr,
            GlStencilOp::DecrWrap => fo::StencilOp::DecrWrap,
            GlStencilOp::Invert => fo::StencilOp::Invert,
        }
    }
}

/// Serializable blend factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum GlBlendFactor {
    Zero,
    One,
    SrcColor,
    OneMinusSrcColor,
    DstColor,
    OneMinusDstColor,
    SrcAlpha,
    OneMinusSrcAlpha,
    DstAlpha,
    OneMinusDstAlpha,
    ConstColor,
    OneMinusConstColor,
    SrcAlphaSaturate,
}

impl From<GlBlendFactor> for fo::BlendFactor {
    fn from(f: GlBlendFactor) -> Self {
        match f {
            GlBlendFactor::Zero => fo::BlendFactor::Zero,
            GlBlendFactor::One => fo::BlendFactor::One,
            GlBlendFactor::SrcColor => fo::BlendFactor::SrcColor,
            GlBlendFactor::OneMinusSrcColor => fo::BlendFactor::OneMinusSrcColor,
            GlBlendFactor::DstColor => fo::BlendFactor::DstColor,
            GlBlendFactor::OneMinusDstColor => fo::BlendFactor::OneMinusDstColor,
            GlBlendFactor::SrcAlpha => fo::BlendFactor::SrcAlpha,
            GlBlendFactor::OneMinusSrcAlpha => fo::BlendFactor::OneMinusSrcAlpha,
            GlBlendFactor::DstAlpha => fo::BlendFactor::DstAlpha,
            GlBlendFactor::OneMinusDstAlpha => fo::BlendFactor::OneMinusDstAlpha,
            GlBlendFactor::ConstColor => fo::BlendFactor::ConstColor,
            GlBlendFactor::OneMinusConstColor => fo::BlendFactor::OneMinusConstColor,
            GlBlendFactor::SrcAlphaSaturate => fo::BlendFactor::SrcAlphaSaturate,
        }
    }
}

/// Serializable blend equation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum GlBlendEq {
    Add,
    Subtract,
    ReverseSubtract,
    Min,
    Max,
}

impl From<GlBlendEq> for fo::BlendEquation {
    fn from(e: GlBlendEq) -> Self {
        match e {
            GlBlendEq::Add => fo::BlendEquation::Add,
            GlBlendEq::Subtract => fo::BlendEquation::Subtract,
            GlBlendEq::ReverseSubtract => fo::BlendEquation::ReverseSubtract,
            GlBlendEq::Min => fo::BlendEquation::Min,
            GlBlendEq::Max => fo::BlendEquation::Max,
        }
    }
}

/// Serializable primitive topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum GlPrimitive {
    Triangles,
    TriangleStrip,
    TriangleFan,
    Quads,
    QuadStrip,
}

impl From<GlPrimitive> for Primitive {
    fn from(p: GlPrimitive) -> Self {
        match p {
            GlPrimitive::Triangles => Primitive::Triangles,
            GlPrimitive::TriangleStrip => Primitive::TriangleStrip,
            GlPrimitive::TriangleFan => Primitive::TriangleFan,
            GlPrimitive::Quads => Primitive::Quads,
            GlPrimitive::QuadStrip => Primitive::QuadStrip,
        }
    }
}

/// Serializable texture format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum GlTexFormat {
    Rgba8,
    Rgb8,
    L8,
    A8,
    Dxt1,
    Dxt3,
}

impl From<GlTexFormat> for tex::TexFormat {
    fn from(f: GlTexFormat) -> Self {
        match f {
            GlTexFormat::Rgba8 => tex::TexFormat::Rgba8,
            GlTexFormat::Rgb8 => tex::TexFormat::Rgb8,
            GlTexFormat::L8 => tex::TexFormat::L8,
            GlTexFormat::A8 => tex::TexFormat::A8,
            GlTexFormat::Dxt1 => tex::TexFormat::Dxt1,
            GlTexFormat::Dxt3 => tex::TexFormat::Dxt3,
        }
    }
}

/// Serializable texture filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum GlTexFilter {
    Nearest,
    Bilinear,
    BilinearMipNearest,
    Trilinear,
}

impl From<GlTexFilter> for tex::TexFilter {
    fn from(f: GlTexFilter) -> Self {
        match f {
            GlTexFilter::Nearest => tex::TexFilter::Nearest,
            GlTexFilter::Bilinear => tex::TexFilter::Bilinear,
            GlTexFilter::BilinearMipNearest => tex::TexFilter::BilinearMipNearest,
            GlTexFilter::Trilinear => tex::TexFilter::Trilinear,
        }
    }
}

/// Serializable wrap mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum GlWrap {
    Repeat,
    Clamp,
    Mirror,
}

impl From<GlWrap> for tex::WrapMode {
    fn from(w: GlWrap) -> Self {
        match w {
            GlWrap::Repeat => tex::WrapMode::Repeat,
            GlWrap::Clamp => tex::WrapMode::Clamp,
            GlWrap::Mirror => tex::WrapMode::Mirror,
        }
    }
}

/// Capabilities toggled by `Enable`/`Disable`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum GlCap {
    DepthTest,
    StencilTest,
    Blend,
    CullFace,
    ScissorTest,
    AlphaTest,
    Fog,
    Texture2D,
}

/// Face culling selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum GlCullFace {
    Front,
    Back,
}

/// Matrix stack selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum GlMatrixMode {
    ModelView,
    Projection,
}

/// Clear-mask bits.
pub mod clear_mask {
    /// Clear the colour buffer.
    pub const COLOR: u32 = 1;
    /// Clear the depth buffer.
    pub const DEPTH: u32 = 2;
    /// Clear the stencil buffer.
    pub const STENCIL: u32 = 4;
}

/// One recorded OpenGL API call — the unit of the trace format.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum GlCall {
    // Buffer objects / vertex arrays.
    BufferData { id: u32, data: Vec<u8> },
    VertexAttribPointer { attr: u8, buffer: u32, components: u8, stride: u32, offset: u32 },
    DisableVertexAttrib { attr: u8 },

    // Textures.
    TexImage2D {
        id: u32,
        width: u32,
        height: u32,
        format: GlTexFormat,
        mipmapped: bool,
        /// Row-major RGBA bytes (4 per texel), converted/compressed by
        /// the driver.
        pixels: Vec<u8>,
    },
    TexFilter { id: u32, min: GlTexFilter },
    TexWrap { id: u32, s: GlWrap, t: GlWrap },
    TexMaxAniso { id: u32, samples: u32 },
    BindTexture { unit: u8, id: u32 },

    // Render to texture (paper §7 future work, implemented).
    RenderTexture { id: u32, width: u32, height: u32 },
    SetRenderTarget { texture: u32 },
    ResetRenderTarget,

    // ARB-style programs.
    ProgramString { id: u32, source: String },
    BindProgram { target_vertex: bool, id: u32 },
    UnbindPrograms,
    ProgramEnvParameter { target_vertex: bool, index: u32, value: [f32; 4] },

    // Fixed-function state.
    MatrixMode(GlMatrixMode),
    LoadIdentity,
    LoadMatrix { m: [[f32; 4]; 4] },
    MultMatrix { m: [[f32; 4]; 4] },
    Translate { x: f32, y: f32, z: f32 },
    RotateY { radians: f32 },
    RotateX { radians: f32 },
    ScaleM { x: f32, y: f32, z: f32 },
    Perspective { fovy_radians: f32, aspect: f32, near: f32, far: f32 },
    Ortho { left: f32, right: f32, bottom: f32, top: f32, near: f32, far: f32 },
    LookAt { eye: [f32; 3], center: [f32; 3], up: [f32; 3] },
    Color4f { r: f32, g: f32, b: f32, a: f32 },
    AlphaFunc { func: GlCompare, reference: f32 },
    Fog { color: [f32; 4], start: f32, end: f32 },

    // Raster state.
    Enable(GlCap),
    Disable(GlCap),
    DepthFunc(GlCompare),
    DepthMask(bool),
    StencilFunc { func: GlCompare, reference: u8, mask: u8 },
    StencilOpSet { sfail: GlStencilOp, dpfail: GlStencilOp, dppass: GlStencilOp },
    /// Separate back-face stencil (double-sided stencil; one-pass shadow
    /// volumes). `EnableTwoSidedStencil` activates it.
    StencilFuncBack { func: GlCompare, reference: u8, mask: u8 },
    StencilOpBack { sfail: GlStencilOp, dpfail: GlStencilOp, dppass: GlStencilOp },
    EnableTwoSidedStencil(bool),
    StencilMask(u8),
    BlendFunc { src: GlBlendFactor, dst: GlBlendFactor },
    BlendEquation(GlBlendEq),
    BlendColor { r: f32, g: f32, b: f32, a: f32 },
    ColorMask { r: bool, g: bool, b: bool, a: bool },
    CullFaceSet(GlCullFace),
    Scissor { x: u32, y: u32, width: u32, height: u32 },
    ViewportSet { x: u32, y: u32, width: u32, height: u32 },

    // Clears and drawing.
    ClearColor { r: f32, g: f32, b: f32, a: f32 },
    ClearDepth(f32),
    ClearStencil(u8),
    Clear { mask: u32 },
    DrawArrays { primitive: GlPrimitive, count: u32 },
    DrawElements { primitive: GlPrimitive, index_buffer: u32, count: u32 },
    SwapBuffers,
}

// JSON encodings matching serde's externally-tagged conventions, so traces
// captured before the hand-rolled codec replaced serde still replay.
attila_json::impl_json_enum_unit!(GlCompare {
    Never, Less, Equal, LEqual, Greater, NotEqual, GEqual, Always,
});
attila_json::impl_json_enum_unit!(GlStencilOp {
    Keep, Zero, Replace, Incr, IncrWrap, Decr, DecrWrap, Invert,
});
attila_json::impl_json_enum_unit!(GlBlendFactor {
    Zero, One, SrcColor, OneMinusSrcColor, DstColor, OneMinusDstColor,
    SrcAlpha, OneMinusSrcAlpha, DstAlpha, OneMinusDstAlpha, ConstColor,
    OneMinusConstColor, SrcAlphaSaturate,
});
attila_json::impl_json_enum_unit!(GlBlendEq { Add, Subtract, ReverseSubtract, Min, Max });
attila_json::impl_json_enum_unit!(GlPrimitive {
    Triangles, TriangleStrip, TriangleFan, Quads, QuadStrip,
});
attila_json::impl_json_enum_unit!(GlTexFormat { Rgba8, Rgb8, L8, A8, Dxt1, Dxt3 });
attila_json::impl_json_enum_unit!(GlTexFilter {
    Nearest, Bilinear, BilinearMipNearest, Trilinear,
});
attila_json::impl_json_enum_unit!(GlWrap { Repeat, Clamp, Mirror });
attila_json::impl_json_enum_unit!(GlCap {
    DepthTest, StencilTest, Blend, CullFace, ScissorTest, AlphaTest, Fog, Texture2D,
});
attila_json::impl_json_enum_unit!(GlCullFace { Front, Back });
attila_json::impl_json_enum_unit!(GlMatrixMode { ModelView, Projection });
attila_json::impl_json_enum!(GlCall {
    units { LoadIdentity, UnbindPrograms, ResetRenderTarget, SwapBuffers }
    newtypes {
        MatrixMode(GlMatrixMode),
        Enable(GlCap),
        Disable(GlCap),
        DepthFunc(GlCompare),
        DepthMask(bool),
        EnableTwoSidedStencil(bool),
        StencilMask(u8),
        BlendEquation(GlBlendEq),
        CullFaceSet(GlCullFace),
        ClearDepth(f32),
        ClearStencil(u8),
    }
    structs {
        BufferData { id, data },
        VertexAttribPointer { attr, buffer, components, stride, offset },
        DisableVertexAttrib { attr },
        TexImage2D { id, width, height, format, mipmapped, pixels },
        TexFilter { id, min },
        TexWrap { id, s, t },
        TexMaxAniso { id, samples },
        BindTexture { unit, id },
        RenderTexture { id, width, height },
        SetRenderTarget { texture },
        ProgramString { id, source },
        BindProgram { target_vertex, id },
        ProgramEnvParameter { target_vertex, index, value },
        LoadMatrix { m },
        MultMatrix { m },
        Translate { x, y, z },
        RotateY { radians },
        RotateX { radians },
        ScaleM { x, y, z },
        Perspective { fovy_radians, aspect, near, far },
        Ortho { left, right, bottom, top, near, far },
        LookAt { eye, center, up },
        Color4f { r, g, b, a },
        AlphaFunc { func, reference },
        Fog { color, start, end },
        StencilFunc { func, reference, mask },
        StencilOpSet { sfail, dpfail, dppass },
        StencilFuncBack { func, reference, mask },
        StencilOpBack { sfail, dpfail, dppass },
        BlendFunc { src, dst },
        BlendColor { r, g, b, a },
        ColorMask { r, g, b, a },
        Scissor { x, y, width, height },
        ViewportSet { x, y, width, height },
        ClearColor { r, g, b, a },
        Clear { mask },
        DrawArrays { primitive, count },
        DrawElements { primitive, index_buffer, count },
    }
});

/// A texture object's stored definition.
#[derive(Debug, Clone)]
struct TextureObject {
    desc: tex::TextureDesc,
}

/// Errors raised by the GL layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlError {
    /// Reference to an object id that was never defined.
    UnknownObject(&'static str, u32),
    /// A shader failed to assemble.
    BadProgram(String),
    /// The driver's GPU memory heap is exhausted.
    OutOfMemory,
}

impl std::fmt::Display for GlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GlError::UnknownObject(kind, id) => write!(f, "unknown {kind} object {id}"),
            GlError::BadProgram(e) => write!(f, "program failed to assemble: {e}"),
            GlError::OutOfMemory => write!(f, "GPU memory heap exhausted"),
        }
    }
}

impl std::error::Error for GlError {}

/// Driver memory map: the colour buffer base address.
pub const COLOR_BUFFER_BASE: u64 = 0x0010_0000;
/// Driver memory map: the depth/stencil buffer base address.
pub const Z_BUFFER_BASE: u64 = 0x0080_0000;
/// Driver memory map: start of the object heap.
pub const HEAP_BASE: u64 = 0x0100_0000;

/// The OpenGL context: library state + driver, producing a
/// [`GpuCommand`] stream.
pub struct GlContext {
    width: u32,
    height: u32,
    commands: Vec<GpuCommand>,
    alloc: BumpAllocator,

    buffers: BTreeMap<u32, (u64, u32)>,
    textures: BTreeMap<u32, TextureObject>,
    /// Render-target textures: (colour base, private z base, w, h).
    render_targets: BTreeMap<u32, (u64, u64, u32, u32)>,
    /// The bound render-target texture, if any.
    current_target: Option<u32>,
    programs: BTreeMap<u32, Arc<attila_emu::Program>>,

    attributes: Vec<Option<AttributeBinding>>,
    bound_textures: Vec<Option<u32>>,
    bound_vp: Option<u32>,
    bound_fp: Option<u32>,
    vp_constants: Vec<Vec4>,
    fp_constants: Vec<Vec4>,

    viewport: Viewport,
    scissor: ScissorState,
    depth: fo::DepthState,
    stencil: fo::StencilState,
    stencil_back: fo::StencilState,
    two_sided_stencil: bool,
    blend: fo::BlendState,
    cull_enabled: bool,
    cull_face: GlCullFace,

    fixed: FixedFunctionState,
    matrix_mode: GlMatrixMode,

    clear_color: [f32; 4],
    clear_depth: f32,
    clear_stencil: u8,

    state_dirty: bool,
    frames: u64,
    draw_calls: u64,
    /// Hot start: draws are skipped while `frames < skip_frames`.
    skip_draws_until_frame: u64,
}

impl GlContext {
    /// Creates a context rendering to a `width`×`height` framebuffer.
    pub fn new(width: u32, height: u32) -> Self {
        // Default to a 64 MiB device (the baseline GpuConfig); callers
        // with other memory sizes use `set_heap_limit`.
        Self::with_memory(width, height, 64 * 1024 * 1024)
    }

    /// Creates a context for a device with `memory_bytes` of GPU memory;
    /// the driver heap ends there and allocation failures surface as
    /// [`GlError::OutOfMemory`] instead of out-of-range addresses.
    ///
    /// # Panics
    ///
    /// Panics if the framebuffer does not fit the driver's fixed memory
    /// map (colour at 1 MiB, depth at 8 MiB, heap at 16 MiB).
    pub fn with_memory(width: u32, height: u32, memory_bytes: u64) -> Self {
        let surface = attila_core::address::surface_bytes(width, height);
        assert!(
            COLOR_BUFFER_BASE + surface <= Z_BUFFER_BASE,
            "colour buffer ({surface} B at {width}x{height}) overflows the driver memory map"
        );
        assert!(
            Z_BUFFER_BASE + surface <= HEAP_BASE,
            "depth buffer overflows the driver memory map"
        );
        assert!(memory_bytes > HEAP_BASE, "device smaller than the driver memory map");
        GlContext {
            width,
            height,
            commands: Vec::new(),
            alloc: BumpAllocator::new(HEAP_BASE, memory_bytes),
            buffers: BTreeMap::new(),
            textures: BTreeMap::new(),
            render_targets: BTreeMap::new(),
            current_target: None,
            programs: BTreeMap::new(),
            attributes: vec![None; 16],
            bound_textures: vec![None; 16],
            bound_vp: None,
            bound_fp: None,
            vp_constants: vec![Vec4::ZERO; 256],
            fp_constants: vec![Vec4::ZERO; 256],
            viewport: Viewport::new(width, height),
            scissor: ScissorState::default(),
            depth: fo::DepthState::default(),
            stencil: fo::StencilState::default(),
            stencil_back: fo::StencilState::default(),
            two_sided_stencil: false,
            blend: fo::BlendState::default(),
            cull_enabled: false,
            cull_face: GlCullFace::Back,
            fixed: FixedFunctionState::default(),
            matrix_mode: GlMatrixMode::ModelView,
            clear_color: [0.0, 0.0, 0.0, 1.0],
            clear_depth: 1.0,
            clear_stencil: 0,
            state_dirty: true,
            frames: 0,
            draw_calls: 0,
            skip_draws_until_frame: 0,
        }
    }

    /// Enables hot start: draw commands are skipped (state changes and
    /// buffer writes still applied) until `frame` frames have swapped —
    /// the paper's technique for starting simulation at any frame of a
    /// trace.
    pub fn set_hot_start(&mut self, frame: u64) {
        self.skip_draws_until_frame = frame;
    }

    /// Frames swapped so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Draw calls issued (after hot-start skipping).
    pub fn draw_calls(&self) -> u64 {
        self.draw_calls
    }

    /// Takes the Command Processor stream accumulated so far.
    pub fn take_commands(&mut self) -> Vec<GpuCommand> {
        std::mem::take(&mut self.commands)
    }

    /// GPU memory (bytes) the driver has allocated from its heap.
    pub fn heap_used(&self) -> u64 {
        (u64::MAX / 2 - HEAP_BASE) - self.alloc.remaining()
    }

    /// Applies one API call.
    ///
    /// # Errors
    ///
    /// Returns a [`GlError`] for unknown ids, bad programs or heap
    /// exhaustion.
    pub fn apply(&mut self, call: &GlCall) -> Result<(), GlError> {
        match call {
            GlCall::BufferData { id, data } => {
                let addr = self
                    .alloc
                    .alloc(data.len().max(4) as u64, 256)
                    .ok_or(GlError::OutOfMemory)?;
                self.buffers.insert(*id, (addr, data.len() as u32)); // lint:allow(as-cast) buffer uploads are far below 4 GiB; runs at trace build, not in the clock path
                self.commands.push(GpuCommand::WriteBuffer {
                    address: addr,
                    data: Arc::new(data.clone()),
                });
            }
            GlCall::VertexAttribPointer { attr, buffer, components, stride, offset } => {
                let (base, _) = *self
                    .buffers
                    .get(buffer)
                    .ok_or(GlError::UnknownObject("buffer", *buffer))?;
                self.attributes[*attr as usize] = Some(AttributeBinding {
                    address: base + *offset as u64,
                    stride: *stride,
                    components: *components as u32,
                    default_w: 1.0,
                });
                self.state_dirty = true;
            }
            GlCall::DisableVertexAttrib { attr } => {
                self.attributes[*attr as usize] = None;
                self.state_dirty = true;
            }
            GlCall::TexImage2D { id, width, height, format, mipmapped, pixels } => {
                self.tex_image_2d(*id, *width, *height, *format, *mipmapped, pixels)?;
            }
            GlCall::TexFilter { id, min } => {
                let t = self
                    .textures
                    .get_mut(id)
                    .ok_or(GlError::UnknownObject("texture", *id))?;
                t.desc.min_filter = (*min).into();
                self.state_dirty = true;
            }
            GlCall::TexWrap { id, s, t } => {
                let o = self
                    .textures
                    .get_mut(id)
                    .ok_or(GlError::UnknownObject("texture", *id))?;
                o.desc.wrap_s = (*s).into();
                o.desc.wrap_t = (*t).into();
                self.state_dirty = true;
            }
            GlCall::TexMaxAniso { id, samples } => {
                let t = self
                    .textures
                    .get_mut(id)
                    .ok_or(GlError::UnknownObject("texture", *id))?;
                t.desc.max_aniso = (*samples).max(1);
                self.state_dirty = true;
            }
            GlCall::BindTexture { unit, id } => {
                if !self.textures.contains_key(id) {
                    return Err(GlError::UnknownObject("texture", *id));
                }
                self.bound_textures[*unit as usize] = Some(*id);
                self.state_dirty = true;
            }
            GlCall::RenderTexture { id, width, height } => {
                // Colour surface in framebuffer layout + a private depth
                // buffer, both heap-allocated.
                let color_len = attila_core::address::surface_bytes(*width, *height);
                let color = self
                    .alloc
                    .alloc(color_len, 256)
                    .ok_or(GlError::OutOfMemory)?;
                let z = self.alloc.alloc(color_len, 256).ok_or(GlError::OutOfMemory)?;
                let desc = tex::TextureDesc::new_render_target(*width, *height, color);
                self.textures.insert(*id, TextureObject { desc });
                self.render_targets.insert(*id, (color, z, *width, *height));
                self.state_dirty = true;
            }
            GlCall::SetRenderTarget { texture } => {
                if !self.render_targets.contains_key(texture) {
                    return Err(GlError::UnknownObject("render target", *texture));
                }
                self.current_target = Some(*texture);
                self.state_dirty = true;
            }
            GlCall::ResetRenderTarget => {
                self.current_target = None;
                self.state_dirty = true;
            }
            GlCall::ProgramString { id, source } => {
                let program =
                    asm::assemble(source).map_err(|e| GlError::BadProgram(e.to_string()))?;
                self.programs.insert(*id, Arc::new(program));
                self.commands.push(GpuCommand::LoadPrograms);
            }
            GlCall::BindProgram { target_vertex, id } => {
                if !self.programs.contains_key(id) {
                    return Err(GlError::UnknownObject("program", *id));
                }
                if *target_vertex {
                    self.bound_vp = Some(*id);
                } else {
                    self.bound_fp = Some(*id);
                }
                self.state_dirty = true;
            }
            GlCall::UnbindPrograms => {
                self.bound_vp = None;
                self.bound_fp = None;
                self.state_dirty = true;
            }
            GlCall::ProgramEnvParameter { target_vertex, index, value } => {
                let v = Vec4::new(value[0], value[1], value[2], value[3]);
                if *target_vertex {
                    self.vp_constants[*index as usize] = v;
                } else {
                    self.fp_constants[*index as usize] = v;
                }
                self.state_dirty = true;
            }
            GlCall::MatrixMode(m) => self.matrix_mode = *m,
            GlCall::LoadIdentity => self.with_matrix(|_| Mat4::IDENTITY),
            GlCall::LoadMatrix { m } => {
                let m = cols_to_mat(m);
                self.with_matrix(|_| m);
            }
            GlCall::MultMatrix { m } => {
                let m = cols_to_mat(m);
                self.with_matrix(|cur| cur.mul_mat(&m));
            }
            GlCall::Translate { x, y, z } => {
                let m = Mat4::translation(*x, *y, *z);
                self.with_matrix(|cur| cur.mul_mat(&m));
            }
            GlCall::RotateY { radians } => {
                let m = Mat4::rotation_y(*radians);
                self.with_matrix(|cur| cur.mul_mat(&m));
            }
            GlCall::RotateX { radians } => {
                let m = Mat4::rotation_x(*radians);
                self.with_matrix(|cur| cur.mul_mat(&m));
            }
            GlCall::ScaleM { x, y, z } => {
                let m = Mat4::scale(*x, *y, *z);
                self.with_matrix(|cur| cur.mul_mat(&m));
            }
            GlCall::Perspective { fovy_radians, aspect, near, far } => {
                let m = Mat4::perspective(*fovy_radians, *aspect, *near, *far);
                self.with_matrix(|cur| cur.mul_mat(&m));
            }
            GlCall::Ortho { left, right, bottom, top, near, far } => {
                let m = Mat4::ortho(*left, *right, *bottom, *top, *near, *far);
                self.with_matrix(|cur| cur.mul_mat(&m));
            }
            GlCall::LookAt { eye, center, up } => {
                let m = Mat4::look_at(
                    Vec4::point(eye[0], eye[1], eye[2]),
                    Vec4::point(center[0], center[1], center[2]),
                    Vec4::new(up[0], up[1], up[2], 0.0),
                );
                self.with_matrix(|cur| cur.mul_mat(&m));
            }
            GlCall::Color4f { r, g, b, a } => {
                self.fixed.color = Vec4::new(*r, *g, *b, *a);
                self.state_dirty = true;
            }
            GlCall::AlphaFunc { func, reference } => {
                self.fixed.alpha_func = (*func).into();
                self.fixed.alpha_ref = *reference;
                self.state_dirty = true;
            }
            GlCall::Fog { color, start, end } => {
                self.fixed.fog_color = Vec4::new(color[0], color[1], color[2], color[3]);
                self.fixed.fog_start = *start;
                self.fixed.fog_end = *end;
                self.state_dirty = true;
            }
            GlCall::Enable(cap) => self.set_cap(*cap, true),
            GlCall::Disable(cap) => self.set_cap(*cap, false),
            GlCall::DepthFunc(f) => {
                self.depth.func = (*f).into();
                self.state_dirty = true;
            }
            GlCall::DepthMask(w) => {
                self.depth.write = *w;
                self.state_dirty = true;
            }
            GlCall::StencilFunc { func, reference, mask } => {
                self.stencil.func = (*func).into();
                self.stencil.reference = *reference;
                self.stencil.read_mask = *mask;
                self.state_dirty = true;
            }
            GlCall::StencilOpSet { sfail, dpfail, dppass } => {
                self.stencil.sfail = (*sfail).into();
                self.stencil.dpfail = (*dpfail).into();
                self.stencil.dppass = (*dppass).into();
                self.state_dirty = true;
            }
            GlCall::StencilFuncBack { func, reference, mask } => {
                self.stencil_back.func = (*func).into();
                self.stencil_back.reference = *reference;
                self.stencil_back.read_mask = *mask;
                self.state_dirty = true;
            }
            GlCall::StencilOpBack { sfail, dpfail, dppass } => {
                self.stencil_back.sfail = (*sfail).into();
                self.stencil_back.dpfail = (*dpfail).into();
                self.stencil_back.dppass = (*dppass).into();
                self.state_dirty = true;
            }
            GlCall::EnableTwoSidedStencil(on) => {
                self.two_sided_stencil = *on;
                self.state_dirty = true;
            }
            GlCall::StencilMask(m) => {
                self.stencil.write_mask = *m;
                self.stencil_back.write_mask = *m;
                self.state_dirty = true;
            }
            GlCall::BlendFunc { src, dst } => {
                self.blend.src_factor = (*src).into();
                self.blend.dst_factor = (*dst).into();
                self.state_dirty = true;
            }
            GlCall::BlendEquation(e) => {
                self.blend.equation = (*e).into();
                self.state_dirty = true;
            }
            GlCall::BlendColor { r, g, b, a } => {
                self.blend.constant = Vec4::new(*r, *g, *b, *a);
                self.state_dirty = true;
            }
            GlCall::ColorMask { r, g, b, a } => {
                self.blend.color_mask = [*r, *g, *b, *a];
                self.state_dirty = true;
            }
            GlCall::CullFaceSet(f) => {
                self.cull_face = *f;
                self.state_dirty = true;
            }
            GlCall::Scissor { x, y, width, height } => {
                self.scissor.x = *x;
                self.scissor.y = *y;
                self.scissor.width = *width;
                self.scissor.height = *height;
                self.state_dirty = true;
            }
            GlCall::ViewportSet { x, y, width, height } => {
                self.viewport = Viewport { x: *x, y: *y, width: *width, height: *height };
                self.state_dirty = true;
            }
            GlCall::ClearColor { r, g, b, a } => self.clear_color = [*r, *g, *b, *a],
            GlCall::ClearDepth(d) => self.clear_depth = *d,
            GlCall::ClearStencil(s) => self.clear_stencil = *s,
            GlCall::Clear { mask } => {
                // Clears go through the current state's buffer addresses.
                self.flush_state();
                if mask & clear_mask::COLOR != 0 {
                    let c = fo::pack_rgba8(Vec4::new(
                        self.clear_color[0],
                        self.clear_color[1],
                        self.clear_color[2],
                        self.clear_color[3],
                    ));
                    self.commands.push(GpuCommand::FastClearColor(u32::from_le_bytes(c)));
                }
                if mask & (clear_mask::DEPTH | clear_mask::STENCIL) != 0 {
                    let word = fo::pack_depth_stencil(
                        fo::quantize_depth(self.clear_depth),
                        self.clear_stencil,
                    );
                    self.commands.push(GpuCommand::FastClearZStencil(word));
                }
            }
            GlCall::DrawArrays { primitive, count } => {
                self.draw(*primitive, *count, None)?;
            }
            GlCall::DrawElements { primitive, index_buffer, count } => {
                let (base, _) = *self
                    .buffers
                    .get(index_buffer)
                    .ok_or(GlError::UnknownObject("buffer", *index_buffer))?;
                self.draw(*primitive, *count, Some(base))?;
            }
            GlCall::SwapBuffers => {
                self.commands.push(GpuCommand::Swap);
                self.frames += 1;
            }
        }
        Ok(())
    }

    fn set_cap(&mut self, cap: GlCap, on: bool) {
        match cap {
            GlCap::DepthTest => self.depth.enabled = on,
            GlCap::StencilTest => self.stencil.enabled = on,
            GlCap::Blend => self.blend.enabled = on,
            GlCap::CullFace => self.cull_enabled = on,
            GlCap::ScissorTest => self.scissor.enabled = on,
            GlCap::AlphaTest => self.fixed.alpha_test = on,
            GlCap::Fog => self.fixed.fog = on,
            GlCap::Texture2D => self.fixed.texture = on,
        }
        self.state_dirty = true;
    }

    fn with_matrix(&mut self, f: impl FnOnce(Mat4) -> Mat4) {
        let m = match self.matrix_mode {
            GlMatrixMode::ModelView => &mut self.fixed.modelview,
            GlMatrixMode::Projection => &mut self.fixed.projection,
        };
        *m = f(*m);
        self.state_dirty = true;
    }

    fn tex_image_2d(
        &mut self,
        id: u32,
        width: u32,
        height: u32,
        format: GlTexFormat,
        mipmapped: bool,
        pixels: &[u8],
    ) -> Result<(), GlError> {
        assert_eq!(
            pixels.len(),
            (width * height * 4) as usize,
            "TexImage2D expects row-major RGBA bytes"
        );
        let as_vec4: Vec<Vec4> = pixels
            .chunks_exact(4)
            .map(|p| fo::unpack_rgba8([p[0], p[1], p[2], p[3]]))
            .collect();
        let fmt: tex::TexFormat = format.into();
        let mut desc = tex::TextureDesc::new_2d(width, height, fmt, 0);
        if mipmapped {
            desc = desc.with_full_mips();
        }
        // Encode every mip level (box filter) into the device layout.
        let mut encoded = Vec::new();
        let mut level_pixels = as_vec4;
        let (mut w, mut h) = (width, height);
        for level in 0..desc.mip_levels {
            if level > 0 {
                let nw = (w / 2).max(1);
                let nh = (h / 2).max(1);
                let mut next = Vec::with_capacity((nw * nh) as usize);
                for y in 0..nh {
                    for x in 0..nw {
                        let x0 = (x * 2).min(w - 1);
                        let y0 = (y * 2).min(h - 1);
                        let x1 = (x * 2 + 1).min(w - 1);
                        let y1 = (y * 2 + 1).min(h - 1);
                        let p = (level_pixels[(y0 * w + x0) as usize]
                            + level_pixels[(y0 * w + x1) as usize]
                            + level_pixels[(y1 * w + x0) as usize]
                            + level_pixels[(y1 * w + x1) as usize])
                            / 4.0;
                        next.push(p);
                    }
                }
                level_pixels = next;
                w = nw;
                h = nh;
            }
            encoded.extend(tex::encode_tiled(fmt, w, h, &level_pixels));
        }
        assert_eq!(
            encoded.len() as u64,
            desc.total_bytes(),
            "driver encoding must match the sampler's level layout"
        );
        let addr =
            self.alloc.alloc(encoded.len().max(4) as u64, 256).ok_or(GlError::OutOfMemory)?;
        desc.base_address = addr;
        self.commands
            .push(GpuCommand::WriteBuffer { address: addr, data: Arc::new(encoded) });
        self.textures.insert(id, TextureObject { desc });
        self.state_dirty = true;
        Ok(())
    }

    /// Builds the RenderState snapshot for the current GL state.
    fn build_state(&mut self) -> Result<RenderState, GlError> {
        // Programs: bound ARB programs, or driver-generated fixed
        // function (with alpha test / fog folded in, per the paper).
        let (vp, fp, extra_vp_consts, extra_fp_consts) = if let (Some(v), Some(f)) =
            (self.bound_vp, self.bound_fp)
        {
            let vp = Arc::clone(self.programs.get(&v).expect("validated at bind")); // lint:allow(clock-unwrap) bind validated the program id; trace build, not the clock path
            let mut fp = Arc::clone(self.programs.get(&f).expect("validated at bind")); // lint:allow(clock-unwrap) bind validated the program id; trace build, not the clock path
            if self.fixed.alpha_test {
                fp = fixed::inject_alpha_test(&fp, self.fixed.alpha_func);
            }
            (vp, fp, Vec::new(), Vec::new())
        } else {
            fixed::generate_programs(&self.fixed)
        };

        let mut vp_constants = self.vp_constants.clone();
        let mut fp_constants = self.fp_constants.clone();
        for (i, v) in extra_vp_consts {
            vp_constants[i] = v;
        }
        for (i, v) in extra_fp_consts {
            fp_constants[i] = v;
        }
        if self.fixed.alpha_test {
            fp_constants[fixed::ALPHA_REF_CONSTANT] =
                Vec4::splat(self.fixed.alpha_ref);
        }

        let mut textures = vec![None; 16];
        for (i, slot) in self.bound_textures.iter().enumerate() {
            if let Some(id) = slot {
                textures[i] = Some(
                    self.textures
                        .get(id)
                        .ok_or(GlError::UnknownObject("texture", *id))?
                        .desc
                        .clone(),
                );
            }
        }

        let varying_count = fp
            .instructions()
            .iter()
            .flat_map(|i| i.srcs.iter().flatten())
            .filter(|s| s.reg.bank == attila_emu::isa::Bank::Input)
            .map(|s| s.reg.index as u32 + 1)
            .max()
            .unwrap_or(0)
            .max(1);

        let (color_buffer, z_buffer, target_width, target_height) = match self.current_target {
            Some(id) => {
                let (c, z, w, h) = self.render_targets[&id];
                (c, z, w, h)
            }
            None => (COLOR_BUFFER_BASE, Z_BUFFER_BASE, self.width, self.height),
        };
        Ok(RenderState {
            viewport: self.viewport,
            scissor: self.scissor,
            cull: if self.cull_enabled {
                match self.cull_face {
                    GlCullFace::Front => CullMode::Front,
                    GlCullFace::Back => CullMode::Back,
                }
            } else {
                CullMode::None
            },
            depth: self.depth,
            stencil: self.stencil,
            stencil_back: self.two_sided_stencil.then(|| {
                let mut back = self.stencil_back;
                back.enabled = self.stencil.enabled;
                back
            }),
            blend: self.blend,
            vertex_program: vp,
            fragment_program: fp,
            vertex_constants: Arc::new(vp_constants),
            fragment_constants: Arc::new(fp_constants),
            textures: Arc::new(textures),
            attributes: Arc::new(self.attributes.clone()),
            varying_count,
            color_buffer,
            z_buffer,
            target_width,
            target_height,
        })
    }

    fn flush_state(&mut self) {
        if self.state_dirty {
            if let Ok(state) = self.build_state() {
                self.commands.push(GpuCommand::SetState(Box::new(state)));
                self.state_dirty = false;
            }
        }
    }

    fn draw(
        &mut self,
        primitive: GlPrimitive,
        count: u32,
        index_buffer: Option<u64>,
    ) -> Result<(), GlError> {
        if self.frames < self.skip_draws_until_frame {
            // Hot start: "the driver skips over the draw commands and only
            // sends state changes and buffer writes to the simulator".
            return Ok(());
        }
        self.state_dirty = true; // fixed-function constants may change per draw
        self.flush_state();
        self.commands.push(GpuCommand::Draw(DrawCall {
            primitive: primitive.into(),
            vertex_count: count,
            index_buffer,
        }));
        self.draw_calls += 1;
        Ok(())
    }
}

impl std::fmt::Debug for GlContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlContext")
            .field("size", &(self.width, self.height))
            .field("buffers", &self.buffers.len())
            .field("textures", &self.textures.len())
            .field("programs", &self.programs.len())
            .field("frames", &self.frames)
            .finish()
    }
}

fn cols_to_mat(m: &[[f32; 4]; 4]) -> Mat4 {
    Mat4::from_cols(
        Vec4::from(m[0]),
        Vec4::from(m[1]),
        Vec4::from(m[2]),
        Vec4::from(m[3]),
    )
}

/// Compiles a call list into a Command Processor stream.
///
/// # Errors
///
/// Propagates the first [`GlError`] raised by any call.
pub fn compile(width: u32, height: u32, calls: &[GlCall]) -> Result<Vec<GpuCommand>, GlError> {
    let mut ctx = GlContext::new(width, height);
    for call in calls {
        ctx.apply(call)?;
    }
    Ok(ctx.take_commands())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_upload_emits_write() {
        let mut ctx = GlContext::new(64, 64);
        ctx.apply(&GlCall::BufferData { id: 1, data: vec![1, 2, 3, 4] }).unwrap();
        let cmds = ctx.take_commands();
        assert_eq!(cmds.len(), 1);
        assert!(matches!(&cmds[0], GpuCommand::WriteBuffer { address, data }
            if *address >= HEAP_BASE && data.len() == 4));
    }

    #[test]
    fn unknown_buffer_is_an_error() {
        let mut ctx = GlContext::new(64, 64);
        let err = ctx
            .apply(&GlCall::VertexAttribPointer {
                attr: 0,
                buffer: 9,
                components: 4,
                stride: 16,
                offset: 0,
            })
            .unwrap_err();
        assert_eq!(err, GlError::UnknownObject("buffer", 9));
    }

    #[test]
    fn clear_packs_color_and_depth() {
        let mut ctx = GlContext::new(64, 64);
        ctx.apply(&GlCall::ClearColor { r: 1.0, g: 0.0, b: 0.0, a: 1.0 }).unwrap();
        ctx.apply(&GlCall::ClearDepth(1.0)).unwrap();
        ctx.apply(&GlCall::Clear { mask: clear_mask::COLOR | clear_mask::DEPTH }).unwrap();
        let cmds = ctx.take_commands();
        let clears: Vec<_> = cmds
            .iter()
            .filter(|c| {
                matches!(c, GpuCommand::FastClearColor(_) | GpuCommand::FastClearZStencil(_))
            })
            .collect();
        assert_eq!(clears.len(), 2);
        if let GpuCommand::FastClearColor(w) = clears[0] {
            assert_eq!(w.to_le_bytes(), [255, 0, 0, 255]);
        } else {
            panic!("first clear should be colour");
        }
    }

    #[test]
    fn draw_emits_state_then_draw() {
        let mut ctx = GlContext::new(64, 64);
        ctx.apply(&GlCall::BufferData { id: 1, data: vec![0; 48] }).unwrap();
        ctx.apply(&GlCall::VertexAttribPointer {
            attr: 0,
            buffer: 1,
            components: 4,
            stride: 16,
            offset: 0,
        })
        .unwrap();
        ctx.apply(&GlCall::DrawArrays { primitive: GlPrimitive::Triangles, count: 3 }).unwrap();
        let cmds = ctx.take_commands();
        let kinds: Vec<_> = cmds.iter().map(|c| c.mnemonic()).collect();
        assert_eq!(kinds, vec!["WRITE", "STATE", "DRAW"]);
        if let GpuCommand::SetState(s) = &cmds[1] {
            assert!(s.attributes[0].is_some());
            assert_eq!(s.color_buffer, COLOR_BUFFER_BASE);
        }
    }

    #[test]
    fn hot_start_skips_draws_but_keeps_state() {
        let mut ctx = GlContext::new(64, 64);
        ctx.set_hot_start(1); // skip frame 0 draws
        ctx.apply(&GlCall::BufferData { id: 1, data: vec![0; 48] }).unwrap();
        ctx.apply(&GlCall::DrawArrays { primitive: GlPrimitive::Triangles, count: 3 }).unwrap();
        ctx.apply(&GlCall::SwapBuffers).unwrap();
        ctx.apply(&GlCall::DrawArrays { primitive: GlPrimitive::Triangles, count: 3 }).unwrap();
        ctx.apply(&GlCall::SwapBuffers).unwrap();
        let cmds = ctx.take_commands();
        let draws = cmds.iter().filter(|c| matches!(c, GpuCommand::Draw(_))).count();
        let writes = cmds.iter().filter(|c| matches!(c, GpuCommand::WriteBuffer { .. })).count();
        assert_eq!(draws, 1, "frame-0 draw skipped");
        assert_eq!(writes, 1, "uploads always applied");
        assert_eq!(ctx.draw_calls(), 1);
    }

    #[test]
    fn texture_upload_encodes_and_allocates() {
        let mut ctx = GlContext::new(64, 64);
        let pixels = vec![128u8; 8 * 8 * 4];
        ctx.apply(&GlCall::TexImage2D {
            id: 7,
            width: 8,
            height: 8,
            format: GlTexFormat::Rgba8,
            mipmapped: true,
            pixels,
        })
        .unwrap();
        ctx.apply(&GlCall::BindTexture { unit: 0, id: 7 }).unwrap();
        let cmds = ctx.take_commands();
        assert!(matches!(&cmds[0], GpuCommand::WriteBuffer { data, .. } if !data.is_empty()));
        assert!(ctx.heap_used() > 0);
    }

    #[test]
    fn program_binding_affects_state() {
        let mut ctx = GlContext::new(64, 64);
        ctx.apply(&GlCall::ProgramString {
            id: 1,
            source: "!!ATTILAvp1.0\nMOV o0, i0;\nEND;".into(),
        })
        .unwrap();
        ctx.apply(&GlCall::ProgramString {
            id: 2,
            source: "!!ATTILAfp1.0\nMOV o0, i0;\nEND;".into(),
        })
        .unwrap();
        ctx.apply(&GlCall::BindProgram { target_vertex: true, id: 1 }).unwrap();
        ctx.apply(&GlCall::BindProgram { target_vertex: false, id: 2 }).unwrap();
        ctx.apply(&GlCall::DrawArrays { primitive: GlPrimitive::Triangles, count: 3 }).unwrap();
        let cmds = ctx.take_commands();
        let state = cmds.iter().find_map(|c| match c {
            GpuCommand::SetState(s) => Some(s),
            _ => None,
        });
        let state = state.expect("state emitted");
        assert_eq!(state.vertex_program.len(), 2);
        assert_eq!(state.varying_count, 1);
    }

    #[test]
    fn bad_program_reports_error() {
        let mut ctx = GlContext::new(64, 64);
        let err = ctx
            .apply(&GlCall::ProgramString { id: 1, source: "!!ATTILAvp1.0\nBOGUS;\nEND;".into() })
            .unwrap_err();
        assert!(matches!(err, GlError::BadProgram(_)));
    }
}
