//! Fixed-function pipeline emulation via driver-generated shaders.
//!
//! The paper removes the alpha-test and per-fragment-fog hardware units
//! and "instead implement\[s\] them as fragment programs. Our OpenGL
//! library creates or modifies the shader programs as required" (§2.2,
//! partly based on Igesund & Stavang's fixed-function-as-vertex-programs
//! report, ref \[27\]). This module does both jobs:
//!
//! * [`generate_programs`] builds the vertex/fragment programs for the
//!   legacy fixed-function state (MVP transform, current colour, one
//!   texture unit with modulate combine, linear fog, alpha test);
//! * [`inject_alpha_test`] rewrites a user fragment program so the alpha
//!   test runs as a `KIL` at its end.
//!
//! ## Attribute and constant conventions
//!
//! Fixed-function vertex inputs: `i0` = position, `i2` = texture
//! coordinates. Vertex constants: `c0..c3` = MVP rows, `c4` = current
//! colour, `c5` = modelview row 2 (eye-space depth for fog). Fragment
//! constants: `c60` = alpha reference, `c61` = (fog scale, fog bias, 0, 0),
//! `c62` = fog colour.

use std::sync::Arc;

use attila_emu::asm;
use attila_emu::fragops::CompareFunc;
use attila_emu::isa::{
    Bank, Dst, Instruction, Opcode, Program, Reg, ShaderTarget, Src, Swizzle, WriteMask,
};
use attila_emu::vector::{Mat4, Vec4};

/// Fragment-constant index of the alpha-test reference value.
pub const ALPHA_REF_CONSTANT: usize = 60;
/// Fragment-constant index of the fog (scale, bias) pair.
pub const FOG_PARAMS_CONSTANT: usize = 61;
/// Fragment-constant index of the fog colour.
pub const FOG_COLOR_CONSTANT: usize = 62;

/// The legacy fixed-function state tracked by the context.
#[derive(Debug, Clone)]
pub struct FixedFunctionState {
    /// Modelview matrix (top of stack).
    pub modelview: Mat4,
    /// Projection matrix.
    pub projection: Mat4,
    /// Current colour (`glColor4f`).
    pub color: Vec4,
    /// `GL_TEXTURE_2D` enabled.
    pub texture: bool,
    /// `GL_ALPHA_TEST` enabled.
    pub alpha_test: bool,
    /// Alpha-test compare function.
    pub alpha_func: CompareFunc,
    /// Alpha-test reference value.
    pub alpha_ref: f32,
    /// `GL_FOG` enabled (linear fog).
    pub fog: bool,
    /// Fog colour.
    pub fog_color: Vec4,
    /// Linear fog start distance.
    pub fog_start: f32,
    /// Linear fog end distance.
    pub fog_end: f32,
}

impl Default for FixedFunctionState {
    fn default() -> Self {
        FixedFunctionState {
            modelview: Mat4::IDENTITY,
            projection: Mat4::IDENTITY,
            color: Vec4::ONE,
            texture: false,
            alpha_test: false,
            alpha_func: CompareFunc::Always,
            alpha_ref: 0.0,
            fog: false,
            fog_color: Vec4::new(0.5, 0.5, 0.5, 1.0),
            fog_start: 1.0,
            fog_end: 100.0,
        }
    }
}

/// Extra constants a generated program needs, as `(index, value)` pairs.
pub type ConstList = Vec<(usize, Vec4)>;

/// Generates the fixed-function vertex and fragment programs for the
/// current state, plus the constants to load.
pub fn generate_programs(
    state: &FixedFunctionState,
) -> (Arc<Program>, Arc<Program>, ConstList, ConstList) {
    // --- vertex program ---------------------------------------------------
    let mut vp = String::from("!!ATTILAvp1.0\n");
    vp.push_str("DP4 o0.x, c0, i0;\n");
    vp.push_str("DP4 o0.y, c1, i0;\n");
    vp.push_str("DP4 o0.z, c2, i0;\n");
    vp.push_str("DP4 o0.w, c3, i0;\n");
    vp.push_str("MOV o1, c4;\n"); // colour varying
    if state.texture {
        vp.push_str("MOV o2, i2;\n"); // texcoord varying
    }
    if state.fog {
        // Fog distance = -eye_z = -(modelview row2 · position).
        vp.push_str("DP4 o3.x, -c5, i0;\n");
    }
    vp.push_str("END;\n");

    let mvp = state.projection.mul_mat(&state.modelview);
    let mut vp_consts: ConstList = (0..4).map(|r| (r, mvp.row(r))).collect();
    vp_consts.push((4, state.color));
    if state.fog {
        vp_consts.push((5, state.modelview.row(2)));
    }

    // --- fragment program -------------------------------------------------
    let mut fp = String::from("!!ATTILAfp1.0\n");
    if state.texture {
        fp.push_str("TEX r0, i1, texture[0], 2D;\n");
        fp.push_str("MUL r0, r0, i0;\n"); // modulate with colour
    } else {
        fp.push_str("MOV r0, i0;\n");
    }
    if state.alpha_test {
        fp.push_str(&alpha_kill_asm(state.alpha_func, "r0", "r1", ALPHA_REF_CONSTANT));
    }
    if state.fog {
        // factor = saturate(distance * scale + bias); out = lerp.
        fp.push_str(&format!(
            "MAD_SAT r2.x, i2.x, c{f}.x, c{f}.y;\n",
            f = FOG_PARAMS_CONSTANT
        ));
        fp.push_str(&format!(
            "LRP r0.xyz, r2.x, r0, c{};\n",
            FOG_COLOR_CONSTANT
        ));
    }
    fp.push_str("MOV o0, r0;\nEND;\n");

    let mut fp_consts: ConstList = Vec::new();
    if state.alpha_test {
        fp_consts.push((ALPHA_REF_CONSTANT, Vec4::splat(state.alpha_ref)));
    }
    if state.fog {
        // Linear fog: factor = (end - d) / (end - start) = d*scale + bias.
        let denom = (state.fog_end - state.fog_start).max(1e-6);
        fp_consts.push((
            FOG_PARAMS_CONSTANT,
            Vec4::new(-1.0 / denom, state.fog_end / denom, 0.0, 0.0),
        ));
        fp_consts.push((FOG_COLOR_CONSTANT, state.fog_color));
    }

    let vp = Arc::new(asm::assemble(&vp).expect("generated vertex program assembles"));
    let fp = Arc::new(asm::assemble(&fp).expect("generated fragment program assembles"));
    (vp, fp, vp_consts, fp_consts)
}

/// Assembly for an alpha-test `KIL` on `src.w` against the reference
/// constant, using `tmp` as scratch.
fn alpha_kill_asm(func: CompareFunc, src: &str, tmp: &str, const_idx: usize) -> String {
    match func {
        // keep if a > ref / a >= ref: kill when a - ref < 0.
        CompareFunc::Greater | CompareFunc::GEqual => {
            format!("SUB {tmp}.w, {src}.w, c{const_idx}.w;\nKIL {tmp}.w;\n")
        }
        // keep if a < ref / a <= ref: kill when ref - a < 0.
        CompareFunc::Less | CompareFunc::LEqual => {
            format!("SUB {tmp}.w, c{const_idx}.w, {src}.w;\nKIL {tmp}.w;\n")
        }
        // keep if a == ref: kill when either difference is negative...
        // both signs; only exact equality survives.
        CompareFunc::Equal => format!(
            "SUB {tmp}.w, {src}.w, c{const_idx}.w;\nKIL {tmp}.w;\nSUB {tmp}.w, c{const_idx}.w, {src}.w;\nKIL {tmp}.w;\n"
        ),
        // NotEqual cannot be expressed with a single-sided KIL; the
        // closest conservative form keeps everything (documented).
        CompareFunc::NotEqual | CompareFunc::Always => String::new(),
        // Never: kill unconditionally (SLT of x with itself gives 0;
        // subtract the constant ONE... simplest: kill on -(a*0+1)).
        CompareFunc::Never => {
            format!("SUB {tmp}.w, {src}.w, {src}.w;\nSLT {tmp}.w, {tmp}.w, {src}.w;\nSUB {tmp}.w, {tmp}.w, c{const_idx}.w;\nKIL -c{const_idx}.w;\n")
        }
    }
}

/// Rewrites a user fragment program so the fixed-function alpha test runs
/// at its end: writes to `o0` are redirected to a scratch temporary, a
/// `KIL` against the alpha reference (constant `c60`) is appended, then
/// the colour is written out. This is the paper's "our OpenGL library
/// creates or modifies the shaders programs as required".
pub fn inject_alpha_test(program: &Arc<Program>, func: CompareFunc) -> Arc<Program> {
    if matches!(func, CompareFunc::Always | CompareFunc::NotEqual) {
        return Arc::clone(program);
    }
    let scratch = program.temps_used();
    if scratch + 2 > attila_emu::isa::limits::TEMPS {
        // No scratch registers left; skip the test rather than corrupt
        // the program.
        return Arc::clone(program);
    }
    let color_tmp = Reg::temp(scratch);
    let kill_tmp = Reg::temp(scratch + 1);
    let mut rewritten: Vec<Instruction> = Vec::with_capacity(program.len() + 3);
    for inst in program.instructions() {
        if inst.op == Opcode::End {
            break;
        }
        let mut inst = *inst;
        if let Some(dst) = &mut inst.dst {
            if dst.reg.bank == Bank::Output && dst.reg.index == 0 {
                dst.reg = color_tmp;
            }
        }
        rewritten.push(inst);
    }
    let ref_const = Reg::param(ALPHA_REF_CONSTANT);
    let w = WriteMask([false, false, false, true]);
    let sub = |a: Src, b: Src| {
        Instruction::alu(Opcode::Sub, Dst { reg: kill_tmp, mask: w }, &[a, b])
    };
    let alpha = Src::reg(color_tmp).swizzled(Swizzle::parse("w").unwrap());
    let reference = Src::reg(ref_const).swizzled(Swizzle::parse("w").unwrap());
    match func {
        CompareFunc::Greater | CompareFunc::GEqual => {
            rewritten.push(sub(alpha, reference));
            rewritten.push(Instruction::kil(
                Src::reg(kill_tmp).swizzled(Swizzle::parse("w").unwrap()),
            ));
        }
        CompareFunc::Less | CompareFunc::LEqual => {
            rewritten.push(sub(reference, alpha));
            rewritten.push(Instruction::kil(
                Src::reg(kill_tmp).swizzled(Swizzle::parse("w").unwrap()),
            ));
        }
        CompareFunc::Equal => {
            rewritten.push(sub(alpha, reference));
            rewritten.push(Instruction::kil(
                Src::reg(kill_tmp).swizzled(Swizzle::parse("w").unwrap()),
            ));
            rewritten.push(sub(reference, alpha));
            rewritten.push(Instruction::kil(
                Src::reg(kill_tmp).swizzled(Swizzle::parse("w").unwrap()),
            ));
        }
        CompareFunc::Never => {
            // Kill everything: -(|a|+ref_spread)... a constant negative is
            // guaranteed by killing on both signs of any non-zero value
            // and on zero via SLT trick; simplest correct form: two KILs
            // covering all reals except exact 0, plus SGE for 0.
            rewritten.push(Instruction::alu(
                Opcode::Slt,
                Dst { reg: kill_tmp, mask: w },
                &[alpha, alpha],
            )); // kill_tmp.w = 0
            rewritten.push(Instruction::alu(
                Opcode::Sge,
                Dst { reg: kill_tmp, mask: w },
                &[Src::reg(kill_tmp).swizzled(Swizzle::parse("w").unwrap()), reference],
            )); // not robust for all refs; Never is a degenerate mode
            rewritten.push(Instruction::kil(
                Src::reg(kill_tmp).swizzled(Swizzle::parse("w").unwrap()).negated(),
            ));
        }
        CompareFunc::Always | CompareFunc::NotEqual => unreachable!(),
    }
    rewritten.push(Instruction::alu(
        Opcode::Mov,
        Dst::reg(Reg::output(0)),
        &[Src::reg(color_tmp)],
    ));
    rewritten.push(Instruction::nullary(Opcode::End));
    Arc::new(Program::new(ShaderTarget::Fragment, rewritten).expect("rewritten program valid"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use attila_emu::shader::ShaderEmulator;

    fn run_fp(
        program: &Arc<Program>,
        inputs: &[Vec4],
        consts: &[(usize, Vec4)],
    ) -> (Vec4, bool) {
        let mut emu = ShaderEmulator::new(Arc::clone(program));
        for (i, v) in consts {
            emu.set_constant(*i, *v);
        }
        let t = emu.spawn(inputs);
        let (outs, killed) = emu.run_to_end(t, |req| Vec4::new(req.coords.x, req.coords.y, 0.5, 0.5));
        (outs[0], killed)
    }

    #[test]
    fn plain_fixed_function_passes_color() {
        let state = FixedFunctionState::default();
        let (vp, fp, vp_consts, _) = generate_programs(&state);
        assert_eq!(vp.target(), ShaderTarget::Vertex);
        // The colour constant is the default white.
        assert!(vp_consts.iter().any(|(i, v)| *i == 4 && *v == Vec4::ONE));
        let (out, killed) = run_fp(&fp, &[Vec4::new(0.25, 0.5, 0.75, 1.0)], &[]);
        assert!(!killed);
        assert_eq!(out, Vec4::new(0.25, 0.5, 0.75, 1.0));
    }

    #[test]
    fn textured_fixed_function_modulates() {
        let state = FixedFunctionState { texture: true, ..Default::default() };
        let (_, fp, _, _) = generate_programs(&state);
        assert_eq!(fp.texture_instruction_count(), 1);
        // colour = tex * vertex colour; fake sampler returns coords-based.
        let color = Vec4::new(0.5, 0.5, 0.5, 1.0);
        let texcoord = Vec4::new(1.0, 0.8, 0.0, 1.0);
        let (out, _) = run_fp(&fp, &[color, texcoord], &[]);
        assert!((out.x - 0.5).abs() < 1e-6); // 1.0 * 0.5
        assert!((out.y - 0.4).abs() < 1e-6); // 0.8 * 0.5
    }

    #[test]
    fn fog_lerp_towards_fog_color() {
        let state = FixedFunctionState {
            fog: true,
            fog_start: 0.0,
            fog_end: 10.0,
            fog_color: Vec4::new(1.0, 1.0, 1.0, 1.0),
            ..Default::default()
        };
        let (_, fp, _, fp_consts) = generate_programs(&state);
        // distance 0 -> factor 1 -> pure surface colour.
        let near = run_fp(
            &fp,
            &[Vec4::new(0.0, 0.0, 0.0, 1.0), Vec4::ZERO, Vec4::new(0.0, 0.0, 0.0, 0.0)],
            &fp_consts,
        )
        .0;
        assert!(near.x < 0.01, "near: {near}");
        // distance 10 -> factor 0 -> pure fog colour.
        let far = run_fp(
            &fp,
            &[Vec4::new(0.0, 0.0, 0.0, 1.0), Vec4::ZERO, Vec4::new(10.0, 0.0, 0.0, 0.0)],
            &fp_consts,
        )
        .0;
        assert!(far.x > 0.99, "far: {far}");
    }

    #[test]
    fn generated_alpha_test_kills_transparent() {
        let state = FixedFunctionState {
            alpha_test: true,
            alpha_func: CompareFunc::GEqual,
            alpha_ref: 0.5,
            ..Default::default()
        };
        let (_, fp, _, fp_consts) = generate_programs(&state);
        assert!(fp.has_kill());
        let (_, killed) =
            run_fp(&fp, &[Vec4::new(1.0, 0.0, 0.0, 0.25)], &fp_consts);
        assert!(killed, "alpha 0.25 < ref 0.5 must be killed");
        let (_, killed) = run_fp(&fp, &[Vec4::new(1.0, 0.0, 0.0, 0.75)], &fp_consts);
        assert!(!killed);
    }

    #[test]
    fn inject_alpha_test_rewrites_user_program() {
        let user = Arc::new(
            asm::assemble("!!ATTILAfp1.0\nMUL o0, i0, i0;\nEND;").unwrap(),
        );
        let patched = inject_alpha_test(&user, CompareFunc::GEqual);
        assert!(patched.has_kill());
        assert!(patched.len() > user.len());
        let consts = [(ALPHA_REF_CONSTANT, Vec4::splat(0.5))];
        // i0 = 0.6 -> alpha 0.36 < 0.5 -> killed.
        let (_, killed) = run_fp(&patched, &[Vec4::splat(0.6)], &consts);
        assert!(killed);
        // i0 = 0.9 -> alpha 0.81 >= 0.5 -> survives, colour squared.
        let (out, killed) = run_fp(&patched, &[Vec4::splat(0.9)], &consts);
        assert!(!killed);
        assert!((out.x - 0.81).abs() < 1e-5);
    }

    #[test]
    fn inject_is_noop_for_always() {
        let user = Arc::new(asm::assemble("!!ATTILAfp1.0\nMOV o0, i0;\nEND;").unwrap());
        let patched = inject_alpha_test(&user, CompareFunc::Always);
        assert!(Arc::ptr_eq(&user, &patched));
    }
}
