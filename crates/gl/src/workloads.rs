//! Synthetic workload generators.
//!
//! The paper feeds the simulator with traces captured from UT2004 and
//! Doom3. Real game traces are not redistributable, so these generators
//! produce API traces with the same *architectural* characteristics — the
//! properties the Section 5 case study actually measures:
//!
//! * [`doom3_like`] — multi-pass stencil-shadow rendering: an ambient
//!   depth-filling pass, stencil shadow-volume passes (depth-fail
//!   increment/decrement, colour mask off) and additive per-pixel
//!   lighting passes with 4 texture lookups and a ~3:1 ALU:TEX ratio —
//!   high depth complexity, texture-latency sensitive.
//! * [`ut2004_like`] — a single-pass outdoor scene: large terrain mesh
//!   with diffuse + lightmap multitexturing, scattered mesh objects and a
//!   sky layer — wide triangles, moderate overdraw, 2 lookups per
//!   fragment.
//! * [`fillrate`] — layered full-screen textured quads for raw
//!   ROP/texture throughput experiments.
//! * [`quickstart_triangle`] — the minimal textured-triangle demo.
//! * [`embedded_scene`] — a small spinning textured cube for the
//!   embedded-GPU configuration.
//! * [`texture_stream`] — texture streaming: every frame uploads fresh
//!   texture data over the system bus before a small draw, so the
//!   pipeline spends most of its time drained while the bus crawls —
//!   the workload that exercises the event-horizon scheduler.
//!
//! All content is procedurally generated from a seed; traces are fully
//! deterministic.

use attila_sim::TinyRng;

use attila_core::commands::GpuCommand;

use crate::api::{
    clear_mask, compile, GlBlendFactor, GlCall, GlCap, GlCompare, GlCullFace, GlPrimitive,
    GlStencilOp, GlTexFilter, GlTexFormat, GlWrap,
};
use crate::trace::GlTrace;

/// Shared workload sizing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Render-target width.
    pub width: u32,
    /// Render-target height.
    pub height: u32,
    /// Frames to generate.
    pub frames: u32,
    /// RNG seed (content is deterministic per seed).
    pub seed: u64,
    /// Texture edge size (paper-scale: 256; tests: 64).
    pub texture_size: u32,
    /// Geometry density multiplier (1 = default).
    pub detail: u32,
    /// Doom3-like only: draw shadow volumes in a single pass using
    /// double-sided stencil instead of two culled passes.
    pub two_sided_stencil: bool,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            width: 320,
            height: 240,
            frames: 2,
            seed: 0x00A7_711A,
            texture_size: 128,
            detail: 1,
            two_sided_stencil: false,
        }
    }
}

// ---------------------------------------------------------------------------
// Geometry helpers
// ---------------------------------------------------------------------------

/// Interleaved vertex: position (3f), uv (2f), normal (3f) — 32 bytes.
const STRIDE: u32 = 32;

#[derive(Debug, Default)]
struct Mesh {
    data: Vec<u8>,
    indices: Vec<u32>,
    vertex_count: u32,
}

impl Mesh {
    fn push_vertex(&mut self, p: [f32; 3], uv: [f32; 2], n: [f32; 3]) -> u32 {
        for v in p.iter().chain(uv.iter()).chain(n.iter()) {
            self.data.extend_from_slice(&v.to_le_bytes());
        }
        self.vertex_count += 1;
        self.vertex_count - 1
    }

    fn quad(&mut self, corners: [[f32; 3]; 4], uv_scale: f32, normal: [f32; 3]) {
        let uvs = [[0.0, 0.0], [uv_scale, 0.0], [uv_scale, uv_scale], [0.0, uv_scale]];
        let base = self.vertex_count;
        for (c, uv) in corners.iter().zip(uvs.iter()) {
            self.push_vertex(*c, *uv, normal);
        }
        self.indices.extend_from_slice(&[base, base + 1, base + 2, base, base + 2, base + 3]);
    }

    fn index_bytes(&self) -> Vec<u8> {
        self.indices.iter().flat_map(|i| i.to_le_bytes()).collect()
    }
}

/// An axis-aligned box (inward or outward facing).
fn add_box(mesh: &mut Mesh, min: [f32; 3], max: [f32; 3], uv: f32, inward: bool) {
    let [x0, y0, z0] = min;
    let [x1, y1, z1] = max;
    let faces: [([[f32; 3]; 4], [f32; 3]); 6] = [
        // +z
        ([[x0, y0, z1], [x1, y0, z1], [x1, y1, z1], [x0, y1, z1]], [0.0, 0.0, 1.0]),
        // -z
        ([[x1, y0, z0], [x0, y0, z0], [x0, y1, z0], [x1, y1, z0]], [0.0, 0.0, -1.0]),
        // +x
        ([[x1, y0, z1], [x1, y0, z0], [x1, y1, z0], [x1, y1, z1]], [1.0, 0.0, 0.0]),
        // -x
        ([[x0, y0, z0], [x0, y0, z1], [x0, y1, z1], [x0, y1, z0]], [-1.0, 0.0, 0.0]),
        // +y
        ([[x0, y1, z1], [x1, y1, z1], [x1, y1, z0], [x0, y1, z0]], [0.0, 1.0, 0.0]),
        // -y
        ([[x0, y0, z0], [x1, y0, z0], [x1, y0, z1], [x0, y0, z1]], [0.0, -1.0, 0.0]),
    ];
    for (mut corners, mut normal) in faces {
        if inward {
            corners.reverse();
            for n in &mut normal {
                *n = -*n;
            }
        }
        mesh.quad(corners, uv, normal);
    }
}

// ---------------------------------------------------------------------------
// Procedural textures
// ---------------------------------------------------------------------------

/// Noisy checkerboard RGBA pixels.
fn checker_texture(size: u32, rng: &mut TinyRng, base: [u8; 3], alt: [u8; 3]) -> Vec<u8> {
    let mut out = Vec::with_capacity((size * size * 4) as usize);
    for y in 0..size {
        for x in 0..size {
            let cell = ((x / 8) + (y / 8)) % 2 == 0;
            let c = if cell { base } else { alt };
            let noise = rng.range_u32(0, 24) as i16 - 12;
            for ch in c {
                out.push((ch as i16 + noise).clamp(0, 255) as u8);
            }
            out.push(255);
        }
    }
    out
}

/// Blotchy "lightmap" pixels (slow cosine gradients + noise).
fn lightmap_texture(size: u32, rng: &mut TinyRng) -> Vec<u8> {
    let mut out = Vec::with_capacity((size * size * 4) as usize);
    for y in 0..size {
        for x in 0..size {
            let fx = x as f32 / size as f32;
            let fy = y as f32 / size as f32;
            let v = 0.55
                + 0.35 * (fx * 9.3).sin() * (fy * 7.1).cos()
                + rng.range_f32(-0.05, 0.05);
            let b = (v.clamp(0.05, 1.0) * 255.0) as u8;
            out.extend_from_slice(&[b, b, b, 255]);
        }
    }
    out
}

/// Radial falloff texture (bright centre, dark edges) for light
/// attenuation lookups.
fn falloff_texture(size: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity((size * size * 4) as usize);
    let half = size as f32 / 2.0;
    for y in 0..size {
        for x in 0..size {
            let dx = (x as f32 - half) / half;
            let dy = (y as f32 - half) / half;
            let d = (dx * dx + dy * dy).sqrt().min(1.0);
            let v = ((1.0 - d) * 255.0) as u8;
            out.extend_from_slice(&[v, v, v, 255]);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Shaders
// ---------------------------------------------------------------------------

/// Vertex program: MVP transform + uv + object-space light vector +
/// normal. Constants: c0-c3 MVP rows, c8 light position.
const VP_LIGHT: &str = "!!ATTILAvp1.0\n\
    DP4 o0.x, c0, i0;\n\
    DP4 o0.y, c1, i0;\n\
    DP4 o0.z, c2, i0;\n\
    DP4 o0.w, c3, i0;\n\
    MOV o1, i1;\n\
    SUB o2, c8, i0;\n\
    MOV o3, i2;\n\
    END;";

/// Doom3-style per-pixel lighting: diffuse + perturbation + specular +
/// falloff lookup (4 TEX, ~12 ALU — the ~3:1 ratio the case study cares
/// about). Inputs: i0 uv, i1 light vector, i2 normal. Constants: c1
/// perturbation scale, c2.w specular exponent, c3.x falloff scale.
const FP_LIGHT: &str = "!!ATTILAfp1.0\n\
    TEX r0, i0, texture[0], 2D;\n\
    TEX r1, i0, texture[1], 2D;\n\
    TEX r2, i0, texture[2], 2D;\n\
    DP3 r3.w, i1, i1;\n\
    RSQ r3.w, r3.w;\n\
    MUL r3.xyz, i1, r3.w;\n\
    SUB r4, r1, c1;\n\
    MAD r4.xyz, r4, c1.w, i2;\n\
    DP3 r5.w, r4, r4;\n\
    RSQ r5.w, r5.w;\n\
    MUL r4.xyz, r4, r5.w;\n\
    DP3_SAT r5.x, r4, r3;\n\
    MUL r6.xyz, r0, r5.x;\n\
    POW r7.w, r5.x, c2.w;\n\
    MAD r6.xyz, r2, r7.w, r6;\n\
    DP3_SAT r8.x, i1, i1;\n\
    MUL r8.xy, r8.x, c3.x;\n\
    TEX r9, r8, texture[3], 2D;\n\
    MUL r6.xyz, r6, r9;\n\
    MOV r6.w, r0.w;\n\
    MOV o0, r6;\n\
    END;";

/// Ambient pass fragment program: dark textured base (1 TEX).
const FP_AMBIENT: &str = "!!ATTILAfp1.0\n\
    TEX r0, i0, texture[0], 2D;\n\
    MUL o0, r0, c0;\n\
    END;";

/// Flat program for shadow volumes (colour is masked off anyway).
const FP_FLAT: &str = "!!ATTILAfp1.0\n\
    MOV o0, c0;\n\
    END;";

/// Vertex program for UT2004-style terrain: uv + scaled lightmap uv.
const VP_TERRAIN: &str = "!!ATTILAvp1.0\n\
    DP4 o0.x, c0, i0;\n\
    DP4 o0.y, c1, i0;\n\
    DP4 o0.z, c2, i0;\n\
    DP4 o0.w, c3, i0;\n\
    MOV o1, i1;\n\
    MUL o2, i1, c9;\n\
    END;";

/// UT2004-style fragment program: diffuse × lightmap × tint (2 TEX).
const FP_TERRAIN: &str = "!!ATTILAfp1.0\n\
    TEX r0, i0, texture[0], 2D;\n\
    TEX r1, i1, texture[1], 2D;\n\
    MUL r0, r0, r1;\n\
    MUL o0, r0, c0;\n\
    END;";

// ---------------------------------------------------------------------------
// Scene writer
// ---------------------------------------------------------------------------

/// Small helper accumulating calls with fresh object ids.
struct SceneWriter {
    calls: Vec<GlCall>,
    next_id: u32,
}

impl SceneWriter {
    fn new() -> Self {
        SceneWriter { calls: Vec::new(), next_id: 1 }
    }

    fn id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn call(&mut self, c: GlCall) {
        self.calls.push(c);
    }

    fn upload_mesh(&mut self, mesh: &Mesh) -> (u32, u32) {
        let vb = self.id();
        self.call(GlCall::BufferData { id: vb, data: mesh.data.clone() });
        let ib = self.id();
        self.call(GlCall::BufferData { id: ib, data: mesh.index_bytes() });
        (vb, ib)
    }

    fn bind_mesh(&mut self, vb: u32) {
        self.call(GlCall::VertexAttribPointer {
            attr: 0,
            buffer: vb,
            components: 3,
            stride: STRIDE,
            offset: 0,
        });
        self.call(GlCall::VertexAttribPointer {
            attr: 1,
            buffer: vb,
            components: 2,
            stride: STRIDE,
            offset: 12,
        });
        self.call(GlCall::VertexAttribPointer {
            attr: 2,
            buffer: vb,
            components: 3,
            stride: STRIDE,
            offset: 20,
        });
    }

    fn texture(
        &mut self,
        size: u32,
        format: GlTexFormat,
        pixels: Vec<u8>,
        trilinear: bool,
        aniso: u32,
    ) -> u32 {
        let id = self.id();
        self.call(GlCall::TexImage2D {
            id,
            width: size,
            height: size,
            format,
            mipmapped: trilinear,
            pixels,
        });
        self.call(GlCall::TexFilter {
            id,
            min: if trilinear { GlTexFilter::Trilinear } else { GlTexFilter::Bilinear },
        });
        self.call(GlCall::TexWrap { id, s: GlWrap::Repeat, t: GlWrap::Repeat });
        if aniso > 1 {
            self.call(GlCall::TexMaxAniso { id, samples: aniso });
        }
        id
    }

    fn program(&mut self, source: &str) -> u32 {
        let id = self.id();
        self.call(GlCall::ProgramString { id, source: source.to_string() });
        id
    }

    fn use_programs(&mut self, vp: u32, fp: u32) {
        self.call(GlCall::BindProgram { target_vertex: true, id: vp });
        self.call(GlCall::BindProgram { target_vertex: false, id: fp });
    }

    fn mvp(&mut self, m: &attila_emu::Mat4) {
        for r in 0..4 {
            let row = m.row(r);
            self.call(GlCall::ProgramEnvParameter {
                target_vertex: true,
                index: r as u32,
                value: [row.x, row.y, row.z, row.w],
            });
        }
    }
}

fn camera(frame: u32, frames: u32, dist: f32, height: f32, aspect: f32) -> attila_emu::Mat4 {
    use attila_emu::{Mat4, Vec4};
    let angle = frame as f32 / frames.max(1) as f32 * std::f32::consts::TAU * 0.25;
    let eye = Vec4::point(angle.sin() * dist, height, angle.cos() * dist);
    let view = Mat4::look_at(eye, Vec4::point(0.0, 0.0, 0.0), Vec4::new(0.0, 1.0, 0.0, 0.0));
    let proj = Mat4::perspective(std::f32::consts::FRAC_PI_3, aspect, 0.5, 100.0);
    proj.mul_mat(&view)
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// The minimal demo: one textured triangle, one frame. Returns the
/// compiled command stream directly.
pub fn quickstart_triangle(width: u32, height: u32) -> Vec<GpuCommand> {
    let trace = quickstart_trace(width, height);
    compile(trace.width, trace.height, &trace.calls).expect("generated trace compiles")
}

/// The quickstart scene as an API trace.
pub fn quickstart_trace(width: u32, height: u32) -> GlTrace {
    let mut w = SceneWriter::new();
    let mut rng = TinyRng::new(7);
    let tex = w.texture(
        64,
        GlTexFormat::Rgba8,
        checker_texture(64, &mut rng, [230, 60, 40], [250, 240, 220]),
        true,
        1,
    );
    w.call(GlCall::BindTexture { unit: 0, id: tex });
    let vp = w.program(
        "!!ATTILAvp1.0\nMOV o0, i0;\nMOV o1, i1;\nEND;",
    );
    let fp = w.program("!!ATTILAfp1.0\nTEX r0, i0, texture[0], 2D;\nMOV o0, r0;\nEND;");
    w.use_programs(vp, fp);
    let mut mesh = Mesh::default();
    mesh.push_vertex([-0.8, -0.8, 0.0], [0.0, 0.0], [0.0, 0.0, 1.0]);
    mesh.push_vertex([0.8, -0.8, 0.0], [2.0, 0.0], [0.0, 0.0, 1.0]);
    mesh.push_vertex([0.0, 0.8, 0.0], [1.0, 2.0], [0.0, 0.0, 1.0]);
    let vb = w.id();
    w.call(GlCall::BufferData { id: vb, data: mesh.data.clone() });
    w.bind_mesh(vb);
    w.call(GlCall::ClearColor { r: 0.05, g: 0.05, b: 0.1, a: 1.0 });
    w.call(GlCall::Clear { mask: clear_mask::COLOR | clear_mask::DEPTH });
    w.call(GlCall::DrawArrays { primitive: GlPrimitive::Triangles, count: 3 });
    w.call(GlCall::SwapBuffers);
    GlTrace { width, height, calls: w.calls }
}

/// A Doom3-like multi-pass stencil-shadow workload.
pub fn doom3_like(params: WorkloadParams) -> GlTrace {
    let mut rng = TinyRng::new(params.seed);
    let mut w = SceneWriter::new();
    let ts = params.texture_size;
    let aspect = params.width as f32 / params.height as f32;

    // Textures: dark diffuse (DXT1-compressed, as Doom3's are), a noisy
    // perturbation map, a specular map and the light falloff table.
    let diffuse = w.texture(
        ts,
        GlTexFormat::Dxt1,
        checker_texture(ts, &mut rng, [70, 60, 55], [40, 36, 34]),
        true,
        8,
    );
    let perturb = w.texture(ts, GlTexFormat::Rgba8, lightmap_texture(ts, &mut rng), true, 1);
    let specular = w.texture(
        ts,
        GlTexFormat::Dxt1,
        checker_texture(ts, &mut rng, [180, 180, 190], [20, 20, 20]),
        true,
        1,
    );
    let falloff = w.texture(ts.min(64), GlTexFormat::L8, falloff_texture(ts.min(64)), false, 1);

    // Geometry: an inward-facing room plus `detail` boxes, and shadow
    // volume quads extruded from the boxes.
    let mut scene = Mesh::default();
    add_box(&mut scene, [-10.0, -2.0, -10.0], [10.0, 6.0, 10.0], 4.0, true);
    let boxes = 2 + params.detail as usize * 2;
    for i in 0..boxes {
        let x = rng.range_f32(-6.0f32, 6.0);
        let z = rng.range_f32(-6.0f32, 6.0);
        let s = rng.range_f32(0.6f32, 1.6);
        let _ = i;
        add_box(&mut scene, [x - s, -2.0, z - s], [x + s, -2.0 + 2.0 * s, z + s], 1.0, false);
    }
    let (scene_vb, scene_ib) = w.upload_mesh(&scene);
    let scene_indices = scene.indices.len() as u32;

    let mut volumes = Mesh::default();
    for _ in 0..boxes {
        let x = rng.range_f32(-6.0f32, 6.0);
        let z = rng.range_f32(-6.0f32, 6.0);
        let s = rng.range_f32(1.0f32, 2.5);
        // A tall extruded quad standing in for the volume's sides.
        volumes.quad(
            [[x - s, -2.0, z], [x + s, -2.0, z], [x + s, 6.0, z], [x - s, 6.0, z]],
            1.0,
            [0.0, 0.0, 1.0],
        );
        volumes.quad(
            [[x, -2.0, z - s], [x, -2.0, z + s], [x, 6.0, z + s], [x, 6.0, z - s]],
            1.0,
            [1.0, 0.0, 0.0],
        );
    }
    let (vol_vb, vol_ib) = w.upload_mesh(&volumes);
    let vol_indices = volumes.indices.len() as u32;

    let vp = w.program(VP_LIGHT);
    let fp_ambient = w.program(FP_AMBIENT);
    let fp_light = w.program(FP_LIGHT);
    let fp_flat = w.program(FP_FLAT);

    // Static fragment constants.
    w.call(GlCall::ProgramEnvParameter {
        target_vertex: false,
        index: 0,
        value: [0.18, 0.17, 0.2, 1.0], // ambient tint
    });
    w.call(GlCall::ProgramEnvParameter {
        target_vertex: false,
        index: 1,
        value: [0.5, 0.5, 0.5, 0.8], // perturbation bias/scale
    });
    w.call(GlCall::ProgramEnvParameter {
        target_vertex: false,
        index: 2,
        value: [0.0, 0.0, 0.0, 16.0], // specular exponent
    });
    w.call(GlCall::ProgramEnvParameter {
        target_vertex: false,
        index: 3,
        value: [0.02, 0.0, 0.0, 0.0], // falloff scale
    });

    w.call(GlCall::ViewportSet { x: 0, y: 0, width: params.width, height: params.height });
    w.call(GlCall::Enable(GlCap::DepthTest));
    w.call(GlCall::Enable(GlCap::CullFace));
    w.call(GlCall::CullFaceSet(GlCullFace::Back));

    let lights: Vec<[f32; 4]> = (0..2)
        .map(|i| [rng.range_f32(-4.0, 4.0), 3.0 + i as f32, rng.range_f32(-4.0, 4.0), 1.0])
        .collect();

    for frame in 0..params.frames {
        let mvp = camera(frame, params.frames, 7.0, 1.5, aspect);
        w.call(GlCall::ClearColor { r: 0.0, g: 0.0, b: 0.0, a: 1.0 });
        w.call(GlCall::ClearDepth(1.0));
        w.call(GlCall::ClearStencil(128));
        w.call(GlCall::Clear {
            mask: clear_mask::COLOR | clear_mask::DEPTH | clear_mask::STENCIL,
        });
        w.mvp(&mvp);

        // Pass 1: ambient + depth fill.
        w.use_programs(vp, fp_ambient);
        w.call(GlCall::DepthFunc(GlCompare::Less));
        w.call(GlCall::DepthMask(true));
        w.call(GlCall::Disable(GlCap::Blend));
        w.call(GlCall::Disable(GlCap::StencilTest));
        w.call(GlCall::BindTexture { unit: 0, id: diffuse });
        w.bind_mesh(scene_vb);
        w.call(GlCall::DrawElements {
            primitive: GlPrimitive::Triangles,
            index_buffer: scene_ib,
            count: scene_indices,
        });

        for light in &lights {
            // Pass 2: shadow volumes into stencil (depth-fail, colour and
            // depth writes off — "Carmack's reverse").
            w.use_programs(vp, fp_flat);
            w.call(GlCall::ColorMask { r: false, g: false, b: false, a: false });
            w.call(GlCall::DepthMask(false));
            w.call(GlCall::Enable(GlCap::StencilTest));
            w.call(GlCall::StencilFunc { func: GlCompare::Always, reference: 128, mask: 0xff });
            w.bind_mesh(vol_vb);
            if params.two_sided_stencil {
                // One pass with double-sided stencil (paper §7 future
                // work, implemented): front faces increment, back faces
                // decrement, no culling.
                w.call(GlCall::Disable(GlCap::CullFace));
                w.call(GlCall::EnableTwoSidedStencil(true));
                w.call(GlCall::StencilOpSet {
                    sfail: GlStencilOp::Keep,
                    dpfail: GlStencilOp::IncrWrap,
                    dppass: GlStencilOp::Keep,
                });
                w.call(GlCall::StencilFuncBack {
                    func: GlCompare::Always,
                    reference: 128,
                    mask: 0xff,
                });
                w.call(GlCall::StencilOpBack {
                    sfail: GlStencilOp::Keep,
                    dpfail: GlStencilOp::DecrWrap,
                    dppass: GlStencilOp::Keep,
                });
                w.call(GlCall::DrawElements {
                    primitive: GlPrimitive::Triangles,
                    index_buffer: vol_ib,
                    count: vol_indices,
                });
                w.call(GlCall::EnableTwoSidedStencil(false));
                w.call(GlCall::Enable(GlCap::CullFace));
                w.call(GlCall::CullFaceSet(GlCullFace::Back));
            } else {
                // Front faces: increment on depth fail.
                w.call(GlCall::CullFaceSet(GlCullFace::Back));
                w.call(GlCall::StencilOpSet {
                    sfail: GlStencilOp::Keep,
                    dpfail: GlStencilOp::IncrWrap,
                    dppass: GlStencilOp::Keep,
                });
                w.call(GlCall::DrawElements {
                    primitive: GlPrimitive::Triangles,
                    index_buffer: vol_ib,
                    count: vol_indices,
                });
                // Back faces: decrement on depth fail.
                w.call(GlCall::CullFaceSet(GlCullFace::Front));
                w.call(GlCall::StencilOpSet {
                    sfail: GlStencilOp::Keep,
                    dpfail: GlStencilOp::DecrWrap,
                    dppass: GlStencilOp::Keep,
                });
                w.call(GlCall::DrawElements {
                    primitive: GlPrimitive::Triangles,
                    index_buffer: vol_ib,
                    count: vol_indices,
                });
                w.call(GlCall::CullFaceSet(GlCullFace::Back));
            }

            // Pass 3: additive lighting where unshadowed.
            w.use_programs(vp, fp_light);
            w.call(GlCall::ProgramEnvParameter {
                target_vertex: true,
                index: 8,
                value: *light,
            });
            w.call(GlCall::ColorMask { r: true, g: true, b: true, a: true });
            w.call(GlCall::StencilFunc { func: GlCompare::Equal, reference: 128, mask: 0xff });
            w.call(GlCall::StencilOpSet {
                sfail: GlStencilOp::Keep,
                dpfail: GlStencilOp::Keep,
                dppass: GlStencilOp::Keep,
            });
            w.call(GlCall::DepthFunc(GlCompare::LEqual));
            w.call(GlCall::Enable(GlCap::Blend));
            w.call(GlCall::BlendFunc { src: GlBlendFactor::One, dst: GlBlendFactor::One });
            w.call(GlCall::BindTexture { unit: 0, id: diffuse });
            w.call(GlCall::BindTexture { unit: 1, id: perturb });
            w.call(GlCall::BindTexture { unit: 2, id: specular });
            w.call(GlCall::BindTexture { unit: 3, id: falloff });
            w.bind_mesh(scene_vb);
            w.call(GlCall::DrawElements {
                primitive: GlPrimitive::Triangles,
                index_buffer: scene_ib,
                count: scene_indices,
            });
            w.call(GlCall::Disable(GlCap::Blend));
            w.call(GlCall::Disable(GlCap::StencilTest));
            w.call(GlCall::DepthMask(true));
            w.call(GlCall::DepthFunc(GlCompare::Less));
        }
        w.call(GlCall::SwapBuffers);
    }
    GlTrace { width: params.width, height: params.height, calls: w.calls }
}

/// A UT2004-like single-pass outdoor workload.
pub fn ut2004_like(params: WorkloadParams) -> GlTrace {
    let mut rng = TinyRng::new(params.seed ^ 0x0704_2004);
    let mut w = SceneWriter::new();
    let ts = params.texture_size;
    let aspect = params.width as f32 / params.height as f32;

    let terrain_tex = w.texture(
        ts,
        GlTexFormat::Dxt1,
        checker_texture(ts, &mut rng, [96, 120, 60], [70, 90, 50]),
        true,
        8,
    );
    let lightmap = w.texture(ts, GlTexFormat::L8, lightmap_texture(ts, &mut rng), true, 1);
    let object_tex = w.texture(
        ts,
        GlTexFormat::Dxt1,
        checker_texture(ts, &mut rng, [140, 120, 100], [90, 80, 70]),
        true,
        8,
    );
    let sky_tex = w.texture(
        ts,
        GlTexFormat::Rgb8,
        checker_texture(ts, &mut rng, [110, 150, 220], [130, 170, 235]),
        false,
        1,
    );

    // Terrain: an n×n grid with procedural height.
    let n = 8 * params.detail.max(1);
    let mut terrain = Mesh::default();
    let half = 20.0f32;
    let step = 2.0 * half / n as f32;
    for j in 0..=n {
        for i in 0..=n {
            let x = -half + i as f32 * step;
            let z = -half + j as f32 * step;
            let y = -2.0
                + ((x * 0.31).sin() + (z * 0.23).cos()) * 0.8
                + rng.range_f32(-0.05, 0.05);
            terrain.push_vertex(
                [x, y, z],
                [i as f32 / 2.0, j as f32 / 2.0],
                [0.0, 1.0, 0.0],
            );
        }
    }
    for j in 0..n {
        for i in 0..n {
            let v = |a: u32, b: u32| b * (n + 1) + a;
            terrain.indices.extend_from_slice(&[
                v(i, j),
                v(i + 1, j),
                v(i + 1, j + 1),
                v(i, j),
                v(i + 1, j + 1),
                v(i, j + 1),
            ]);
        }
    }
    let (terrain_vb, terrain_ib) = w.upload_mesh(&terrain);
    let terrain_indices = terrain.indices.len() as u32;

    // Scattered mesh objects.
    let mut objects = Mesh::default();
    for _ in 0..(6 * params.detail as usize) {
        let x = rng.range_f32(-15.0f32, 15.0);
        let z = rng.range_f32(-15.0f32, 15.0);
        let s = rng.range_f32(0.5f32, 1.8);
        add_box(&mut objects, [x - s, -1.5, z - s], [x + s, -1.5 + 2.5 * s, z + s], 1.0, false);
    }
    let (obj_vb, obj_ib) = w.upload_mesh(&objects);
    let obj_indices = objects.indices.len() as u32;

    // Sky: a huge background quad drawn first with depth writes off.
    let mut sky = Mesh::default();
    sky.quad(
        [[-60.0, -10.0, -40.0], [60.0, -10.0, -40.0], [60.0, 40.0, -40.0], [-60.0, 40.0, -40.0]],
        2.0,
        [0.0, 0.0, 1.0],
    );
    let (sky_vb, sky_ib) = w.upload_mesh(&sky);

    let vp = w.program(VP_TERRAIN);
    let fp = w.program(FP_TERRAIN);
    w.use_programs(vp, fp);
    w.call(GlCall::ProgramEnvParameter {
        target_vertex: false,
        index: 0,
        value: [1.0, 1.0, 1.0, 1.0],
    });
    w.call(GlCall::ProgramEnvParameter {
        target_vertex: true,
        index: 9,
        value: [0.25, 0.25, 0.0, 0.0], // lightmap uv scale
    });
    w.call(GlCall::ViewportSet { x: 0, y: 0, width: params.width, height: params.height });
    w.call(GlCall::Enable(GlCap::DepthTest));
    w.call(GlCall::DepthFunc(GlCompare::Less));
    w.call(GlCall::Enable(GlCap::CullFace));
    w.call(GlCall::CullFaceSet(GlCullFace::Back));

    for frame in 0..params.frames {
        let mvp = camera(frame, params.frames, 16.0, 4.0, aspect);
        w.call(GlCall::ClearColor { r: 0.4, g: 0.55, b: 0.8, a: 1.0 });
        w.call(GlCall::ClearDepth(1.0));
        w.call(GlCall::Clear { mask: clear_mask::COLOR | clear_mask::DEPTH });
        w.mvp(&mvp);

        // Sky first, depth write off.
        w.call(GlCall::DepthMask(false));
        w.call(GlCall::Disable(GlCap::CullFace));
        w.call(GlCall::BindTexture { unit: 0, id: sky_tex });
        w.call(GlCall::BindTexture { unit: 1, id: lightmap });
        w.bind_mesh(sky_vb);
        w.call(GlCall::DrawElements {
            primitive: GlPrimitive::Triangles,
            index_buffer: sky_ib,
            count: 6,
        });
        w.call(GlCall::DepthMask(true));
        w.call(GlCall::Enable(GlCap::CullFace));

        // Terrain.
        w.call(GlCall::BindTexture { unit: 0, id: terrain_tex });
        w.call(GlCall::BindTexture { unit: 1, id: lightmap });
        w.bind_mesh(terrain_vb);
        w.call(GlCall::DrawElements {
            primitive: GlPrimitive::Triangles,
            index_buffer: terrain_ib,
            count: terrain_indices,
        });

        // Objects.
        w.call(GlCall::BindTexture { unit: 0, id: object_tex });
        w.bind_mesh(obj_vb);
        w.call(GlCall::DrawElements {
            primitive: GlPrimitive::Triangles,
            index_buffer: obj_ib,
            count: obj_indices,
        });

        w.call(GlCall::SwapBuffers);
    }
    GlTrace { width: params.width, height: params.height, calls: w.calls }
}

/// Layered full-screen textured quads (raw fill-rate / texture-rate
/// microworkload for Table-1-style throughput measurements).
pub fn fillrate(width: u32, height: u32, layers: u32, textured: bool) -> GlTrace {
    let mut w = SceneWriter::new();
    let mut rng = TinyRng::new(42);
    let tex = w.texture(
        64,
        GlTexFormat::Rgba8,
        checker_texture(64, &mut rng, [200, 200, 200], [60, 60, 60]),
        false,
        1,
    );
    let fp = if textured {
        w.call(GlCall::BindTexture { unit: 0, id: tex });
        w.program("!!ATTILAfp1.0\nTEX r0, i0, texture[0], 2D;\nMOV o0, r0;\nEND;")
    } else {
        w.program("!!ATTILAfp1.0\nMOV o0, i0;\nEND;")
    };
    let vp = w.program("!!ATTILAvp1.0\nMOV o0, i0;\nMOV o1, i1;\nEND;");
    w.use_programs(vp, fp);
    let mut mesh = Mesh::default();
    for l in 0..layers {
        let z = -0.9 + 1.8 * l as f32 / layers.max(1) as f32;
        mesh.quad(
            [[-1.0, -1.0, z], [1.0, -1.0, z], [1.0, 1.0, z], [-1.0, 1.0, z]],
            1.0 + l as f32 * 0.37,
            [0.0, 0.0, 1.0],
        );
    }
    let (vb, ib) = w.upload_mesh(&mesh);
    w.bind_mesh(vb);
    w.call(GlCall::Clear { mask: clear_mask::COLOR | clear_mask::DEPTH });
    w.call(GlCall::DrawElements {
        primitive: GlPrimitive::Triangles,
        index_buffer: ib,
        count: mesh.indices.len() as u32,
    });
    w.call(GlCall::SwapBuffers);
    GlTrace { width, height, calls: w.calls }
}

/// A small spinning textured cube for the embedded configuration.
pub fn embedded_scene(params: WorkloadParams) -> GlTrace {
    let mut rng = TinyRng::new(params.seed ^ 0xE4B);
    let mut w = SceneWriter::new();
    let tex = w.texture(
        params.texture_size.min(64),
        GlTexFormat::Rgba8,
        checker_texture(params.texture_size.min(64), &mut rng, [255, 130, 30], [40, 40, 80]),
        true,
        1,
    );
    w.call(GlCall::BindTexture { unit: 0, id: tex });
    let vp = w.program(VP_TERRAIN);
    let fp = w.program("!!ATTILAfp1.0\nTEX r0, i0, texture[0], 2D;\nMOV o0, r0;\nEND;");
    w.use_programs(vp, fp);
    w.call(GlCall::ProgramEnvParameter {
        target_vertex: true,
        index: 9,
        value: [1.0, 1.0, 0.0, 0.0],
    });
    let mut cube = Mesh::default();
    add_box(&mut cube, [-1.0, -1.0, -1.0], [1.0, 1.0, 1.0], 1.0, false);
    let (vb, ib) = w.upload_mesh(&cube);
    w.bind_mesh(vb);
    w.call(GlCall::Enable(GlCap::DepthTest));
    w.call(GlCall::Enable(GlCap::CullFace));
    let aspect = params.width as f32 / params.height as f32;
    for frame in 0..params.frames {
        let mvp = camera(frame, params.frames, 4.0, 1.0, aspect);
        w.call(GlCall::ClearColor { r: 0.1, g: 0.1, b: 0.15, a: 1.0 });
        w.call(GlCall::Clear { mask: clear_mask::COLOR | clear_mask::DEPTH });
        w.mvp(&mvp);
        w.call(GlCall::DrawElements {
            primitive: GlPrimitive::Triangles,
            index_buffer: ib,
            count: cube.indices.len() as u32,
        });
        w.call(GlCall::SwapBuffers);
    }
    GlTrace { width: params.width, height: params.height, calls: w.calls }
}

/// A texture-streaming workload: every frame uploads a fresh
/// `texture_size`² texture over the system bus before drawing one small
/// textured triangle with it.
///
/// The upload dominates: while the bus crawls through the pixel data the
/// whole pipeline is drained, so most simulated cycles are provably idle.
/// This is the stress case for the event-horizon scheduler — the other
/// workloads measure that skipping costs nothing when there is no
/// idleness; this one measures how much it saves when there is.
pub fn texture_stream(params: WorkloadParams) -> GlTrace {
    let mut rng = TinyRng::new(params.seed ^ 0x57E4);
    let mut w = SceneWriter::new();
    let vp = w.program("!!ATTILAvp1.0\nMOV o0, i0;\nMOV o1, i1;\nEND;");
    let fp = w.program("!!ATTILAfp1.0\nTEX r0, i0, texture[0], 2D;\nMOV o0, r0;\nEND;");
    w.use_programs(vp, fp);
    let mut mesh = Mesh::default();
    mesh.push_vertex([-0.2, -0.2, 0.0], [0.0, 0.0], [0.0, 0.0, 1.0]);
    mesh.push_vertex([0.2, -0.2, 0.0], [1.0, 0.0], [0.0, 0.0, 1.0]);
    mesh.push_vertex([0.0, 0.2, 0.0], [0.5, 1.0], [0.0, 0.0, 1.0]);
    let vb = w.id();
    w.call(GlCall::BufferData { id: vb, data: mesh.data.clone() });
    w.bind_mesh(vb);
    w.call(GlCall::ClearColor { r: 0.02, g: 0.02, b: 0.05, a: 1.0 });
    for frame in 0..params.frames {
        // A fresh texture per frame: nothing is resident, every texel
        // crosses the system bus again.
        let shade = 80 + ((frame * 37) % 120) as u8;
        let tex = w.texture(
            params.texture_size,
            GlTexFormat::Rgba8,
            checker_texture(params.texture_size, &mut rng, [shade, 60, 40], [250, 240, 220]),
            false,
            1,
        );
        w.call(GlCall::BindTexture { unit: 0, id: tex });
        w.call(GlCall::Clear { mask: clear_mask::COLOR | clear_mask::DEPTH });
        w.call(GlCall::DrawArrays { primitive: GlPrimitive::Triangles, count: 3 });
        w.call(GlCall::SwapBuffers);
    }
    GlTrace { width: params.width, height: params.height, calls: w.calls }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_compiles() {
        let cmds = quickstart_triangle(64, 64);
        assert!(cmds.iter().any(|c| matches!(c, GpuCommand::Draw(_))));
        assert!(cmds.iter().any(|c| matches!(c, GpuCommand::Swap)));
    }

    #[test]
    fn doom3_like_has_multipass_structure() {
        let trace = doom3_like(WorkloadParams {
            width: 64,
            height: 64,
            frames: 1,
            texture_size: 32,
            ..Default::default()
        });
        assert_eq!(trace.frame_count(), 1);
        // Ambient + 2 lights × (2 volume passes + 1 light pass) = 7 draws.
        let draws = trace
            .calls
            .iter()
            .filter(|c| matches!(c, GlCall::DrawElements { .. }))
            .count();
        assert_eq!(draws, 7);
        // Stencil is actually exercised.
        assert!(trace.calls.iter().any(|c| matches!(
            c,
            GlCall::StencilOpSet { dpfail: GlStencilOp::IncrWrap, .. }
        )));
        // Compiles into a command stream.
        let cmds = compile(trace.width, trace.height, &trace.calls).unwrap();
        assert!(cmds.iter().filter(|c| matches!(c, GpuCommand::Draw(_))).count() >= 7);
    }

    #[test]
    fn ut2004_like_is_single_pass_multitexture() {
        let trace = ut2004_like(WorkloadParams {
            width: 64,
            height: 64,
            frames: 2,
            texture_size: 32,
            ..Default::default()
        });
        assert_eq!(trace.frame_count(), 2);
        assert!(!trace.calls.iter().any(|c| matches!(c, GlCall::Enable(GlCap::StencilTest))));
        let cmds = compile(trace.width, trace.height, &trace.calls).unwrap();
        assert!(!cmds.is_empty());
    }

    #[test]
    fn workloads_are_deterministic() {
        let p = WorkloadParams { width: 64, height: 64, frames: 1, texture_size: 32, ..Default::default() };
        assert_eq!(doom3_like(p), doom3_like(p));
        assert_eq!(ut2004_like(p), ut2004_like(p));
        let p2 = WorkloadParams { seed: 99, ..p };
        assert_ne!(doom3_like(p), doom3_like(p2), "different seeds differ");
    }

    #[test]
    fn fillrate_layers_scale_draw_size() {
        let t1 = fillrate(64, 64, 1, true);
        let t4 = fillrate(64, 64, 4, true);
        let count = |t: &GlTrace| {
            t.calls
                .iter()
                .find_map(|c| match c {
                    GlCall::DrawElements { count, .. } => Some(*count),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(count(&t1), 6);
        assert_eq!(count(&t4), 24);
    }

    #[test]
    fn embedded_scene_compiles() {
        let trace = embedded_scene(WorkloadParams {
            width: 48,
            height: 48,
            frames: 1,
            texture_size: 32,
            ..Default::default()
        });
        let cmds = compile(trace.width, trace.height, &trace.calls).unwrap();
        assert!(cmds.iter().any(|c| matches!(c, GpuCommand::Draw(_))));
    }

    #[test]
    fn texture_stream_uploads_fresh_textures_each_frame() {
        let trace = texture_stream(WorkloadParams {
            width: 48,
            height: 48,
            frames: 3,
            texture_size: 32,
            ..Default::default()
        });
        assert_eq!(trace.frame_count(), 3);
        let uploads =
            trace.calls.iter().filter(|c| matches!(c, GlCall::TexImage2D { .. })).count();
        assert_eq!(uploads, 3, "one fresh texture per frame");
        let cmds = compile(trace.width, trace.height, &trace.calls).unwrap();
        assert_eq!(cmds.iter().filter(|c| matches!(c, GpuCommand::Draw(_))).count(), 3);
    }
}
