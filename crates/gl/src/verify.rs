//! Output verification: image comparison and PPM dumps.
//!
//! The paper verifies rendered output by comparing the simulator's DAC
//! dump against a real GPU's frame (Figure 10: three rendering bugs were
//! found that way). Our reference is the golden-model renderer; this
//! module provides the comparison machinery and the file dumps.

use attila_core::commands::GpuCommand;
use attila_core::golden::GoldenRenderer;
use attila_core::gpu::FrameDump;

/// Result of comparing two frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageDiff {
    /// Total pixels compared.
    pub pixels: u64,
    /// Pixels whose RGBA differs at all.
    pub mismatched: u64,
    /// Largest per-channel absolute difference (0–255).
    pub max_channel_error: u8,
    /// Mean absolute per-channel difference.
    pub mean_channel_error: f64,
}

impl ImageDiff {
    /// Whether the images are bit-identical.
    pub fn identical(&self) -> bool {
        self.mismatched == 0
    }

    /// Mismatched fraction in `[0, 1]`.
    pub fn mismatch_rate(&self) -> f64 {
        if self.pixels == 0 {
            0.0
        } else {
            self.mismatched as f64 / self.pixels as f64
        }
    }
}

impl std::fmt::Display for ImageDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} / {} pixels differ ({:.3}%), max channel error {}, mean {:.3}",
            self.mismatched,
            self.pixels,
            self.mismatch_rate() * 100.0,
            self.max_channel_error,
            self.mean_channel_error
        )
    }
}

/// Compares two frames pixel by pixel.
///
/// # Panics
///
/// Panics if the dimensions differ (comparing different configurations is
/// always a harness bug).
pub fn diff_frames(a: &FrameDump, b: &FrameDump) -> ImageDiff {
    assert_eq!((a.width, a.height), (b.width, b.height), "frame dimensions differ");
    let mut mismatched = 0u64;
    let mut max_err = 0u8;
    let mut sum_err = 0u64;
    for (pa, pb) in a.rgba.chunks_exact(4).zip(b.rgba.chunks_exact(4)) {
        let mut any = false;
        for (ca, cb) in pa.iter().zip(pb.iter()) {
            let e = ca.abs_diff(*cb);
            if e > 0 {
                any = true;
                max_err = max_err.max(e);
                sum_err += e as u64;
            }
        }
        if any {
            mismatched += 1;
        }
    }
    let pixels = (a.width * a.height) as u64;
    ImageDiff {
        pixels,
        mismatched,
        max_channel_error: max_err,
        mean_channel_error: sum_err as f64 / (pixels * 4) as f64,
    }
}

/// Renders a command trace through the golden model, returning its
/// frames.
pub fn golden_frames(commands: &[GpuCommand], memory_bytes: usize) -> Vec<FrameDump> {
    let mut golden = GoldenRenderer::new(memory_bytes);
    golden.run_trace(commands)
}

/// Writes a frame as a PPM file.
///
/// # Errors
///
/// Propagates the I/O error on failure.
pub fn write_ppm(frame: &FrameDump, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, frame.to_ppm())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(w: u32, h: u32, f: impl Fn(u32) -> [u8; 4]) -> FrameDump {
        let mut rgba = Vec::new();
        for i in 0..w * h {
            rgba.extend_from_slice(&f(i));
        }
        FrameDump { width: w, height: h, rgba }
    }

    #[test]
    fn identical_frames_diff_clean() {
        let a = frame(4, 4, |i| [i as u8, 0, 0, 255]);
        let d = diff_frames(&a, &a.clone());
        assert!(d.identical());
        assert_eq!(d.max_channel_error, 0);
    }

    #[test]
    fn single_pixel_difference_detected() {
        let a = frame(4, 4, |_| [10, 20, 30, 255]);
        let mut b = a.clone();
        b.rgba[5] = 25; // pixel 1, green channel +5
        let d = diff_frames(&a, &b);
        assert_eq!(d.mismatched, 1);
        assert_eq!(d.max_channel_error, 5);
        assert!(!d.identical());
        assert!((d.mismatch_rate() - 1.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_readable() {
        let a = frame(2, 2, |_| [0, 0, 0, 255]);
        let mut b = a.clone();
        b.rgba[0] = 255;
        let text = diff_frames(&a, &b).to_string();
        assert!(text.contains("1 / 4 pixels"));
        assert!(text.contains("max channel error 255"));
    }

    #[test]
    #[should_panic(expected = "frame dimensions differ")]
    fn size_mismatch_panics() {
        let a = frame(2, 2, |_| [0; 4]);
        let b = frame(4, 4, |_| [0; 4]);
        diff_frames(&a, &b);
    }
}
