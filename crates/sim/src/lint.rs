//! Elaboration-time architecture verifier.
//!
//! ATTILA's boxes-and-signals model makes the whole microarchitecture a
//! *declared* graph of latency/bandwidth-checked wires. That graph is
//! checkable: after the simulator wires itself up but before cycle 0 the
//! full topology can be extracted from the [`SignalBinder`](crate::SignalBinder)
//! and diffed against what each box *says* its interface is. Miswirings
//! that would otherwise surface as silent cycle drift, data-loss aborts
//! deep into a trace, or watchdog hangs become structured findings at
//! elaboration time.
//!
//! The pieces:
//!
//! * [`PortDecl`] — one port a box declares as part of its interface
//!   contract (name, direction, expected bandwidth, whether it is
//!   flow-controlled and therefore owns a companion `.credits` wire).
//! * [`BoxNode`] — a box in the topology: its name, its declared ports and
//!   its current event [`Horizon`].
//! * [`SignalEdge`] — a registered wire plus its live occupancy.
//! * [`Topology`] — the assembled graph; [`Topology::verify`] runs the
//!   rule catalog and returns a [`LintReport`];
//!   [`Topology::summary`] condenses the graph for hang forensics.
//!
//! # Rule catalog
//!
//! | Rule | Severity | Fires when |
//! |---|---|---|
//! | `dangling-signal` | deny | a wire's endpoint box does not exist, a declared port was never wired, or a wired signal is not declared by its endpoint box |
//! | `port-direction` | deny | a box declares a port as input/output but the binder registered the opposite endpoint |
//! | `zero-latency-cycle` | deny | boxes form a cycle entirely over latency-0 wires (results would depend on box clocking order) |
//! | `bandwidth-mismatch` | deny/warn | two boxes declare themselves writer (or reader) of one wire (deny), or a declared bandwidth differs from the registered one (warn) |
//! | `duplicate-stat` | warn | one statistic name was registered from more than one call site |
//! | `horizon-contract` | deny | a box reports [`Horizon::Idle`] while an input wire has data in flight, or a wake-up cycle later than an input's next arrival |
//!
//! Deny findings are architecture bugs — the simulation would be wrong or
//! would abort mid-run; warn findings are suspicious but may be
//! intentional.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::binder::{SignalDirection, SignalInfo};
use crate::boxes::Horizon;
use crate::Cycle;

/// One port a box declares as part of its interface contract.
///
/// A box's declared ports are diffed against the binder's registered
/// signals by [`Topology::verify`]: every declared port must be wired with
/// the declared direction, and every wire touching the box must be
/// declared. Flow-controlled ports implicitly declare the companion
/// `<signal>.credits` return wire in the opposite direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortDecl {
    /// Name of the signal this port attaches to.
    pub signal: String,
    /// Direction relative to the declaring box.
    pub direction: SignalDirection,
    /// Expected bandwidth in objects/cycle, when the box cares.
    pub bandwidth: Option<usize>,
    /// Whether the port is credit flow-controlled: a `<signal>.credits`
    /// wire runs in the opposite direction and belongs to this port.
    pub flow_controlled: bool,
}

impl PortDecl {
    /// Declares an input port (the box reads from `signal`).
    pub fn input(signal: impl Into<String>) -> Self {
        PortDecl {
            signal: signal.into(),
            direction: SignalDirection::Input,
            bandwidth: None,
            flow_controlled: false,
        }
    }

    /// Declares an output port (the box writes into `signal`).
    pub fn output(signal: impl Into<String>) -> Self {
        PortDecl {
            signal: signal.into(),
            direction: SignalDirection::Output,
            bandwidth: None,
            flow_controlled: false,
        }
    }

    /// Records the bandwidth the box expects the wire to have.
    #[must_use]
    pub fn with_bandwidth(mut self, bandwidth: usize) -> Self {
        self.bandwidth = Some(bandwidth);
        self
    }

    /// Marks the port as credit flow-controlled (owning a `.credits`
    /// companion wire in the opposite direction).
    #[must_use]
    pub fn with_flow_control(mut self) -> Self {
        self.flow_controlled = true;
        self
    }
}

/// A box in the extracted topology.
#[derive(Debug, Clone)]
pub struct BoxNode {
    /// The box's name as used in signal endpoint registrations.
    pub name: String,
    /// The box's current event horizon, when it reports one. `None` for
    /// passive nodes (e.g. a DAC modelled inside the top level).
    pub horizon: Option<Horizon>,
    /// The ports the box declares. A box declaring *no* ports opts out of
    /// interface diffing (its wires are only endpoint-checked).
    pub ports: Vec<PortDecl>,
}

impl BoxNode {
    /// A node that declares its interface and reports a horizon.
    pub fn new(name: impl Into<String>, horizon: Horizon, ports: Vec<PortDecl>) -> Self {
        BoxNode { name: name.into(), horizon: Some(horizon), ports }
    }

    /// A passive node: it exists as a signal endpoint but declares no
    /// ports and reports no horizon.
    pub fn passive(name: impl Into<String>) -> Self {
        BoxNode { name: name.into(), horizon: None, ports: Vec::new() }
    }
}

/// A registered wire plus its live occupancy — one edge of the topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalEdge {
    /// The binder's registered metadata.
    pub info: SignalInfo,
    /// Objects currently travelling through the wire.
    pub in_flight: usize,
    /// Earliest delivery cycle among in-flight objects, if any.
    pub next_arrival: Option<Cycle>,
}

/// Severity of a lint finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// An architecture bug: the simulation would be wrong or abort.
    Deny,
    /// Suspicious but possibly intentional.
    Warn,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Deny => write!(f, "deny"),
            Severity::Warn => write!(f, "warn"),
        }
    }
}

/// One finding produced by the architecture verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Rule identifier (e.g. `dangling-signal`).
    pub rule: &'static str,
    /// Whether the finding denies elaboration or merely warns.
    pub severity: Severity,
    /// The box, signal or statistic the finding is about.
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}: {}", self.severity, self.rule, self.subject, self.message)
    }
}

/// The structured result of [`Topology::verify`].
///
/// Findings are sorted deterministically (severity, rule, subject) so the
/// report is stable run to run and diffable in CI logs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// All findings, denies first.
    pub findings: Vec<LintFinding>,
}

impl LintReport {
    /// Whether the report has no findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of deny-severity findings.
    pub fn deny_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Deny).count()
    }

    /// Number of warn-severity findings.
    pub fn warn_count(&self) -> usize {
        self.findings.iter().filter(|f| f.severity == Severity::Warn).count()
    }

    /// The findings produced by one rule, in report order.
    pub fn by_rule(&self, rule: &str) -> Vec<&LintFinding> {
        self.findings.iter().filter(|f| f.rule == rule).collect()
    }

    fn push(&mut self, rule: &'static str, severity: Severity, subject: String, message: String) {
        self.findings.push(LintFinding { rule, severity, subject, message });
    }

    fn finish(mut self) -> Self {
        self.findings.sort_by(|a, b| {
            (a.severity, a.rule, &a.subject, &a.message)
                .cmp(&(b.severity, b.rule, &b.subject, &b.message))
        });
        self
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return writeln!(f, "architecture lint: clean");
        }
        writeln!(
            f,
            "architecture lint: {} deny, {} warn",
            self.deny_count(),
            self.warn_count()
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Condensed topology statistics, embedded in hang forensics so a
/// watchdog dump shows what was *wired*, not just what was busy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologySummary {
    /// Number of boxes in the design.
    pub box_count: usize,
    /// Number of registered signals.
    pub signal_count: usize,
    /// Every signal name, sorted.
    pub signal_names: Vec<String>,
}

impl fmt::Display for TopologySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "topology: {} boxes, {} signals", self.box_count, self.signal_count)?;
        for chunk in self.signal_names.chunks(4) {
            write!(f, "   ")?;
            for name in chunk {
                write!(f, " {name}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The extracted design graph: boxes, wires and statistic registrations.
///
/// Built by the top level after wiring (in the GPU model,
/// `Gpu::topology()`) and verified before cycle 0.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// Every box, with its declared interface and current horizon.
    pub boxes: Vec<BoxNode>,
    /// Every registered signal, with live occupancy.
    pub signals: Vec<SignalEdge>,
    /// `(name, times_registered)` for every statistic handed out by name.
    pub stat_registrations: Vec<(String, usize)>,
}

/// One fully-expanded port declaration: flow-controlled ports contribute
/// their implicit `.credits` companion here.
struct ExpandedDecl {
    box_name: String,
    signal: String,
    direction: SignalDirection,
    bandwidth: Option<usize>,
}

impl Topology {
    /// Condenses the graph for inclusion in failure reports.
    pub fn summary(&self) -> TopologySummary {
        let mut names: Vec<String> = self.signals.iter().map(|e| e.info.name.clone()).collect();
        names.sort();
        TopologySummary {
            box_count: self.boxes.len(),
            signal_count: self.signals.len(),
            signal_names: names,
        }
    }

    /// Runs the full rule catalog (see the module docs) over the graph.
    pub fn verify(&self) -> LintReport {
        let mut report = LintReport::default();
        self.check_endpoints(&mut report);
        self.check_declarations(&mut report);
        self.check_zero_latency_cycles(&mut report);
        self.check_duplicate_stats(&mut report);
        self.check_horizon_contract(&mut report);
        report.finish()
    }

    /// Every declared port, with flow-controlled ports expanded into their
    /// data wire plus the reversed `.credits` companion.
    fn expanded_decls(&self) -> Vec<ExpandedDecl> {
        let mut out = Vec::new();
        for node in &self.boxes {
            for port in &node.ports {
                out.push(ExpandedDecl {
                    box_name: node.name.clone(),
                    signal: port.signal.clone(),
                    direction: port.direction,
                    bandwidth: port.bandwidth,
                });
                if port.flow_controlled {
                    let reversed = match port.direction {
                        SignalDirection::Input => SignalDirection::Output,
                        SignalDirection::Output => SignalDirection::Input,
                    };
                    out.push(ExpandedDecl {
                        box_name: node.name.clone(),
                        signal: format!("{}.credits", port.signal),
                        direction: reversed,
                        bandwidth: None,
                    });
                }
            }
        }
        out
    }

    /// `dangling-signal` (endpoint half): every wire must start and end at
    /// a box that exists in the design.
    fn check_endpoints(&self, report: &mut LintReport) {
        let box_names: BTreeSet<&str> = self.boxes.iter().map(|b| b.name.as_str()).collect();
        for edge in &self.signals {
            for (endpoint, role) in
                [(&edge.info.from_box, "driven"), (&edge.info.to_box, "read")]
            {
                if !box_names.contains(endpoint.as_str()) {
                    report.push(
                        "dangling-signal",
                        Severity::Deny,
                        edge.info.name.clone(),
                        format!("{role} by `{endpoint}`, which is not a box in the design"),
                    );
                }
            }
        }
    }

    /// `dangling-signal` (declaration half), `port-direction` and
    /// `bandwidth-mismatch`: diff declared interfaces against the wiring.
    fn check_declarations(&self, report: &mut LintReport) {
        let decls = self.expanded_decls();
        let edges: BTreeMap<&str, &SignalEdge> =
            self.signals.iter().map(|e| (e.info.name.as_str(), e)).collect();
        // Boxes that declare at least one port opt into full interface
        // diffing; passive nodes are only endpoint-checked above.
        let declaring: BTreeSet<&str> = self
            .boxes
            .iter()
            .filter(|b| !b.ports.is_empty())
            .map(|b| b.name.as_str())
            .collect();

        // Declared but not wired, or wired with the wrong endpoints.
        for decl in &decls {
            let Some(edge) = edges.get(decl.signal.as_str()) else {
                report.push(
                    "dangling-signal",
                    Severity::Deny,
                    decl.signal.clone(),
                    format!(
                        "declared as {} port of `{}` but never registered in the binder",
                        decl.direction, decl.box_name
                    ),
                );
                continue;
            };
            let actual_endpoint = match decl.direction {
                SignalDirection::Output => &edge.info.from_box,
                SignalDirection::Input => &edge.info.to_box,
            };
            if *actual_endpoint != decl.box_name {
                report.push(
                    "port-direction",
                    Severity::Deny,
                    decl.signal.clone(),
                    format!(
                        "`{}` declares it as {} but the binder registered `{}` at that end",
                        decl.box_name, decl.direction, actual_endpoint
                    ),
                );
            }
            if let Some(expected) = decl.bandwidth {
                if expected != edge.info.bandwidth {
                    report.push(
                        "bandwidth-mismatch",
                        Severity::Warn,
                        decl.signal.clone(),
                        format!(
                            "`{}` expects bandwidth {} but the wire carries {}",
                            decl.box_name, expected, edge.info.bandwidth
                        ),
                    );
                }
            }
        }

        // Two writers (or two readers) claiming one wire.
        let mut writers: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        let mut readers: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for decl in &decls {
            let side = match decl.direction {
                SignalDirection::Output => &mut writers,
                SignalDirection::Input => &mut readers,
            };
            side.entry(decl.signal.as_str()).or_default().push(decl.box_name.as_str());
        }
        for (map, role) in [(&writers, "writer"), (&readers, "reader")] {
            for (signal, boxes) in map {
                let unique: BTreeSet<&&str> = boxes.iter().collect();
                if unique.len() > 1 {
                    let list: Vec<&str> = unique.iter().map(|s| **s).collect();
                    report.push(
                        "bandwidth-mismatch",
                        Severity::Deny,
                        (*signal).to_string(),
                        format!("{} boxes declare themselves {role}: {}", list.len(), list.join(", ")),
                    );
                }
            }
        }

        // Wired but not declared: a declaring box must acknowledge every
        // wire that touches it. A missing reader declaration is the
        // written-but-never-read case; a missing writer declaration is
        // read-but-never-driven.
        for edge in &self.signals {
            let name = edge.info.name.as_str();
            if declaring.contains(edge.info.from_box.as_str())
                && !writers.get(name).is_some_and(|w| w.iter().any(|b| *b == edge.info.from_box))
            {
                report.push(
                    "dangling-signal",
                    Severity::Deny,
                    edge.info.name.clone(),
                    format!(
                        "registered with writer `{}` but that box does not declare driving it \
                         (read-but-never-driven)",
                        edge.info.from_box
                    ),
                );
            }
            if declaring.contains(edge.info.to_box.as_str())
                && !readers.get(name).is_some_and(|r| r.iter().any(|b| *b == edge.info.to_box))
            {
                report.push(
                    "dangling-signal",
                    Severity::Deny,
                    edge.info.name.clone(),
                    format!(
                        "registered with reader `{}` but that box does not declare reading it \
                         (written-but-never-read)",
                        edge.info.to_box
                    ),
                );
            }
        }
    }

    /// `zero-latency-cycle`: a cycle of boxes connected entirely by
    /// latency-0 wires means results depend on box clocking order — the
    /// one thing the signal model exists to prevent.
    fn check_zero_latency_cycles(&self, report: &mut LintReport) {
        let mut adjacency: BTreeMap<&str, Vec<(&str, &str)>> = BTreeMap::new();
        for edge in &self.signals {
            if edge.info.latency == 0 {
                adjacency
                    .entry(edge.info.from_box.as_str())
                    .or_default()
                    .push((edge.info.to_box.as_str(), edge.info.name.as_str()));
            }
        }
        // Iterative DFS with tri-colouring; the first back edge found in
        // each component is reported with the full cycle path.
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour: BTreeMap<&str, Colour> =
            adjacency.keys().map(|b| (*b, Colour::White)).collect();
        for targets in adjacency.values() {
            for (to, _) in targets {
                colour.entry(to).or_insert(Colour::White);
            }
        }
        let roots: Vec<&str> = colour.keys().copied().collect();
        for root in roots {
            if colour[root] != Colour::White {
                continue;
            }
            // Path of (box, signal-into-next) pairs currently on the stack.
            let mut path: Vec<(&str, usize)> = vec![(root, 0)];
            colour.insert(root, Colour::Grey);
            while let Some(&mut (node, ref mut next)) = path.last_mut() {
                let targets = adjacency.get(node).map(Vec::as_slice).unwrap_or(&[]);
                if *next >= targets.len() {
                    colour.insert(node, Colour::Black);
                    path.pop();
                    continue;
                }
                let (to, via) = targets[*next];
                *next += 1;
                match colour[to] {
                    Colour::White => {
                        colour.insert(to, Colour::Grey);
                        path.push((to, 0));
                    }
                    Colour::Grey => {
                        let start = path.iter().position(|(b, _)| *b == to).unwrap_or(0);
                        let mut cycle: Vec<&str> =
                            path[start..].iter().map(|(b, _)| *b).collect();
                        cycle.push(to);
                        report.push(
                            "zero-latency-cycle",
                            Severity::Deny,
                            to.to_string(),
                            format!(
                                "combinational loop over latency-0 wires: {} (closing via `{via}`)",
                                cycle.join(" -> ")
                            ),
                        );
                    }
                    Colour::Black => {}
                }
            }
        }
    }

    /// `duplicate-stat`: a statistic registered from two call sites
    /// silently merges two units' numbers.
    fn check_duplicate_stats(&self, report: &mut LintReport) {
        for (name, count) in &self.stat_registrations {
            if *count > 1 {
                report.push(
                    "duplicate-stat",
                    Severity::Warn,
                    name.clone(),
                    format!("registered {count} times; two call sites share one counter"),
                );
            }
        }
    }

    /// `horizon-contract`: a box may not report an event horizon that
    /// would let an idle-aware scheduler jump past data already heading
    /// for one of its inputs.
    fn check_horizon_contract(&self, report: &mut LintReport) {
        for node in &self.boxes {
            let Some(horizon) = node.horizon else { continue };
            for edge in self.signals.iter().filter(|e| e.info.to_box == node.name) {
                match horizon {
                    Horizon::Idle if edge.in_flight > 0 => {
                        report.push(
                            "horizon-contract",
                            Severity::Deny,
                            node.name.clone(),
                            format!(
                                "reports Idle while `{}` has {} object(s) in flight",
                                edge.info.name, edge.in_flight
                            ),
                        );
                    }
                    Horizon::IdleUntil(wake) => {
                        if let Some(arrival) = edge.next_arrival {
                            if arrival < wake {
                                report.push(
                                    "horizon-contract",
                                    Severity::Deny,
                                    node.name.clone(),
                                    format!(
                                        "reports IdleUntil({wake}) but `{}` delivers at cycle \
                                         {arrival}",
                                        edge.info.name
                                    ),
                                );
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(name: &str, from: &str, to: &str, bandwidth: usize, latency: Cycle) -> SignalEdge {
        SignalEdge {
            info: SignalInfo {
                name: name.into(),
                from_box: from.into(),
                to_box: to.into(),
                bandwidth,
                latency,
            },
            in_flight: 0,
            next_arrival: None,
        }
    }

    fn clean_pair() -> Topology {
        Topology {
            boxes: vec![
                BoxNode::new("A", Horizon::Idle, vec![PortDecl::output("a->b")]),
                BoxNode::new("B", Horizon::Idle, vec![PortDecl::input("a->b")]),
            ],
            signals: vec![edge("a->b", "A", "B", 1, 3)],
            stat_registrations: vec![],
        }
    }

    #[test]
    fn clean_topology_produces_no_findings() {
        let report = clean_pair().verify();
        assert!(report.is_clean(), "unexpected findings: {report}");
    }

    #[test]
    fn unknown_endpoint_is_dangling() {
        let mut t = clean_pair();
        t.signals.push(edge("b->ghost", "B", "Ghost", 1, 1));
        t.boxes[1].ports.push(PortDecl::output("b->ghost"));
        let report = t.verify();
        let hits = report.by_rule("dangling-signal");
        assert_eq!(hits.len(), 1, "{report}");
        assert_eq!(hits[0].subject, "b->ghost");
        assert!(hits[0].message.contains("Ghost"));
    }

    #[test]
    fn declared_but_unwired_port_is_dangling() {
        let mut t = clean_pair();
        t.boxes[0].ports.push(PortDecl::output("a->nowhere"));
        let report = t.verify();
        let hits = report.by_rule("dangling-signal");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].subject, "a->nowhere");
        assert!(hits[0].message.contains("never registered"));
    }

    #[test]
    fn wired_but_undeclared_reader_is_written_but_never_read() {
        let mut t = clean_pair();
        t.signals.push(edge("a->b.extra", "A", "B", 1, 1));
        t.boxes[0].ports.push(PortDecl::output("a->b.extra"));
        // B declares ports but not this one.
        let report = t.verify();
        let hits = report.by_rule("dangling-signal");
        assert_eq!(hits.len(), 1, "{report}");
        assert!(hits[0].message.contains("written-but-never-read"));
    }

    #[test]
    fn direction_flip_is_detected() {
        let mut t = clean_pair();
        // B claims to *drive* the wire it actually reads.
        t.boxes[1].ports[0] = PortDecl::output("a->b");
        let report = t.verify();
        assert_eq!(report.by_rule("port-direction").len(), 1, "{report}");
        // ...and the wire now lacks a declared reader.
        assert_eq!(report.by_rule("dangling-signal").len(), 1);
        // ...and two boxes claim the writer end.
        assert_eq!(report.by_rule("bandwidth-mismatch").len(), 1);
    }

    #[test]
    fn bandwidth_expectation_mismatch_warns() {
        let mut t = clean_pair();
        t.boxes[1].ports[0] = PortDecl::input("a->b").with_bandwidth(4);
        let report = t.verify();
        let hits = report.by_rule("bandwidth-mismatch");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].severity, Severity::Warn);
        assert!(hits[0].message.contains('4') && hits[0].message.contains('1'));
    }

    #[test]
    fn flow_controlled_ports_expand_credit_companions() {
        let mut t = clean_pair();
        t.boxes[0].ports[0] = PortDecl::output("a->b").with_flow_control();
        t.boxes[1].ports[0] = PortDecl::input("a->b").with_flow_control();
        // Without the credit wire registered, both expansions dangle.
        let report = t.verify();
        assert_eq!(report.by_rule("dangling-signal").len(), 2, "{report}");
        // Register the reversed credit wire and the design is clean.
        t.signals.push(edge("a->b.credits", "B", "A", 1, 1));
        assert!(t.verify().is_clean());
    }

    #[test]
    fn zero_latency_cycle_is_detected_with_path() {
        let t = Topology {
            boxes: vec![
                BoxNode::new(
                    "A",
                    Horizon::Idle,
                    vec![PortDecl::output("a->b"), PortDecl::input("b->a")],
                ),
                BoxNode::new(
                    "B",
                    Horizon::Idle,
                    vec![PortDecl::input("a->b"), PortDecl::output("b->a")],
                ),
            ],
            signals: vec![edge("a->b", "A", "B", 1, 0), edge("b->a", "B", "A", 1, 0)],
            stat_registrations: vec![],
        };
        let report = t.verify();
        let hits = report.by_rule("zero-latency-cycle");
        assert_eq!(hits.len(), 1, "{report}");
        assert!(hits[0].message.contains("A") && hits[0].message.contains("B"));
    }

    #[test]
    fn nonzero_latency_feedback_loop_is_fine() {
        let t = Topology {
            boxes: vec![
                BoxNode::new(
                    "A",
                    Horizon::Idle,
                    vec![PortDecl::output("a->b"), PortDecl::input("b->a")],
                ),
                BoxNode::new(
                    "B",
                    Horizon::Idle,
                    vec![PortDecl::input("a->b"), PortDecl::output("b->a")],
                ),
            ],
            signals: vec![edge("a->b", "A", "B", 1, 0), edge("b->a", "B", "A", 1, 1)],
            stat_registrations: vec![],
        };
        assert!(t.verify().is_clean());
    }

    #[test]
    fn duplicate_stat_warns() {
        let mut t = clean_pair();
        t.stat_registrations = vec![("fragments".into(), 1), ("triangles".into(), 3)];
        let report = t.verify();
        let hits = report.by_rule("duplicate-stat");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].subject, "triangles");
        assert_eq!(hits[0].severity, Severity::Warn);
    }

    #[test]
    fn idle_with_in_flight_input_violates_horizon_contract() {
        let mut t = clean_pair();
        t.signals[0].in_flight = 2;
        t.signals[0].next_arrival = Some(7);
        let report = t.verify();
        let hits = report.by_rule("horizon-contract");
        assert_eq!(hits.len(), 1, "{report}");
        assert_eq!(hits[0].subject, "B");
        assert!(hits[0].message.contains("in flight"));
    }

    #[test]
    fn idle_until_past_an_arrival_violates_horizon_contract() {
        let mut t = clean_pair();
        t.boxes[1].horizon = Some(Horizon::IdleUntil(10));
        t.signals[0].in_flight = 1;
        t.signals[0].next_arrival = Some(7);
        let report = t.verify();
        let hits = report.by_rule("horizon-contract");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("IdleUntil(10)"));
        assert!(hits[0].message.contains('7'));
    }

    #[test]
    fn busy_box_never_violates_horizon_contract() {
        let mut t = clean_pair();
        t.boxes[1].horizon = Some(Horizon::Busy);
        t.signals[0].in_flight = 5;
        t.signals[0].next_arrival = Some(1);
        assert!(t.verify().is_clean());
    }

    #[test]
    fn report_sorts_denies_before_warnings_and_renders() {
        let mut t = clean_pair();
        t.stat_registrations = vec![("dup".into(), 2)];
        t.boxes[0].ports.push(PortDecl::output("a->nowhere"));
        let report = t.verify();
        assert_eq!(report.findings[0].severity, Severity::Deny);
        assert_eq!(report.findings.last().unwrap().severity, Severity::Warn);
        let rendered = report.to_string();
        assert!(rendered.contains("1 deny, 1 warn"));
        assert!(rendered.contains("dangling-signal"));
        assert!(rendered.contains("duplicate-stat"));
    }

    #[test]
    fn summary_counts_and_sorts() {
        let mut t = clean_pair();
        t.signals.push(edge("0first", "A", "B", 1, 1));
        t.boxes[0].ports.push(PortDecl::output("0first"));
        t.boxes[1].ports.push(PortDecl::input("0first"));
        let s = t.summary();
        assert_eq!(s.box_count, 2);
        assert_eq!(s.signal_count, 2);
        assert_eq!(s.signal_names, vec!["0first".to_string(), "a->b".to_string()]);
        assert!(s.to_string().contains("2 boxes, 2 signals"));
    }

    #[test]
    fn passive_nodes_skip_interface_diffing() {
        let t = Topology {
            boxes: vec![
                BoxNode::new("A", Horizon::Idle, vec![PortDecl::output("a->dac")]),
                BoxNode::passive("DAC"),
            ],
            signals: vec![edge("a->dac", "A", "DAC", 1, 2)],
            stat_registrations: vec![],
        };
        assert!(t.verify().is_clean());
    }
}
