//! Dynamic object identity.
//!
//! In the ATTILA simulator all data that travels through signals derives
//! from a `DynamicObject` class storing an identifier, a "colour" and a text
//! string. The identifier links related objects into a multilevel hierarchy:
//! fragments are associated with the triangle they came from, so a memory
//! access generated for a fragment is transitively associated with the
//! triangle and the draw batch. The per-cycle contents of each signal,
//! together with these identities, can be dumped as a *signal trace* for the
//! Signal Trace Visualizer performance-debugging tool.
//!
//! In this Rust port, pipeline data types *embed* a [`DynamicObject`] value
//! and expose it through the [`Traceable`] trait instead of inheriting from
//! a base class.

use std::fmt;

/// Identity information carried by every object travelling through signals.
///
/// # Examples
///
/// ```
/// use attila_sim::{DynamicObject, ObjectIdGen};
///
/// let mut ids = ObjectIdGen::new();
/// let triangle = DynamicObject::new(ids.next_id());
/// let fragment = DynamicObject::child_of(ids.next_id(), &triangle);
/// assert_eq!(fragment.parent(), Some(triangle.id()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DynamicObject {
    id: u64,
    parent: Option<u64>,
    color: u32,
    info: String,
}

impl DynamicObject {
    /// Creates a root object (no parent) with the given identifier.
    pub fn new(id: u64) -> Self {
        DynamicObject { id, parent: None, color: 0, info: String::new() }
    }

    /// Creates an object linked to a parent object, forming the multilevel
    /// hierarchy used to relate e.g. memory accesses to fragments to
    /// triangles.
    pub fn child_of(id: u64, parent: &DynamicObject) -> Self {
        DynamicObject { id, parent: Some(parent.id), color: parent.color, info: String::new() }
    }

    /// The unique identifier of this object.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The identifier of the parent object, if any.
    pub fn parent(&self) -> Option<u64> {
        self.parent
    }

    /// The debug colour used by the Signal Trace Visualizer to group
    /// related objects visually.
    pub fn color(&self) -> u32 {
        self.color
    }

    /// Sets the debug colour.
    pub fn set_color(&mut self, color: u32) {
        self.color = color;
    }

    /// Free-form debug text shown by the Signal Trace Visualizer.
    pub fn info(&self) -> &str {
        &self.info
    }

    /// Replaces the debug text.
    pub fn set_info(&mut self, info: impl Into<String>) {
        self.info = info.into();
    }
}

impl fmt::Display for DynamicObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.parent {
            Some(p) => write!(f, "#{}<-#{}", self.id, p),
            None => write!(f, "#{}", self.id),
        }?;
        if !self.info.is_empty() {
            write!(f, " {}", self.info)?;
        }
        Ok(())
    }
}

/// Types that carry a [`DynamicObject`] identity and can therefore be
/// recorded in signal traces.
pub trait Traceable {
    /// Returns the embedded identity.
    fn dyn_object(&self) -> &DynamicObject;

    /// One-line description recorded in signal traces. The default uses the
    /// [`Display`](fmt::Display) form of the identity.
    fn trace_info(&self) -> String {
        self.dyn_object().to_string()
    }
}

impl Traceable for DynamicObject {
    fn dyn_object(&self) -> &DynamicObject {
        self
    }
}

/// Monotonic generator for [`DynamicObject`] identifiers.
///
/// The original simulator implements `OptimizedMemory` for cheap object
/// creation/destruction; in Rust, values are stack-allocated or live in
/// `Vec`s, so only the id allocation survives the port.
#[derive(Debug, Default, Clone)]
pub struct ObjectIdGen {
    next: u64,
}

impl ObjectIdGen {
    /// Creates a generator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh, never-before-returned identifier.
    #[allow(clippy::should_implement_trait)]
    pub fn next_id(&mut self) -> u64 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Number of identifiers handed out so far.
    pub fn issued(&self) -> u64 {
        self.next
    }

    /// Restores the generator to a checkpointed position: the next call to
    /// [`next_id`](ObjectIdGen::next_id) returns `issued`.
    pub fn restore_issued(&mut self, issued: u64) {
        self.next = issued;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_monotonic() {
        let mut g = ObjectIdGen::new();
        let a = g.next_id();
        let b = g.next_id();
        let c = g.next_id();
        assert!(a < b && b < c);
        assert_eq!(g.issued(), 3);
    }

    #[test]
    fn child_inherits_color_and_parent_link() {
        let mut g = ObjectIdGen::new();
        let mut tri = DynamicObject::new(g.next_id());
        tri.set_color(7);
        let frag = DynamicObject::child_of(g.next_id(), &tri);
        assert_eq!(frag.parent(), Some(tri.id()));
        assert_eq!(frag.color(), 7);
    }

    #[test]
    fn display_shows_hierarchy_and_info() {
        let mut g = ObjectIdGen::new();
        let tri = DynamicObject::new(g.next_id());
        let mut frag = DynamicObject::child_of(g.next_id(), &tri);
        frag.set_info("frag(3,4)");
        let s = frag.to_string();
        assert!(s.contains("#1"), "{s}");
        assert!(s.contains("#0"), "{s}");
        assert!(s.contains("frag(3,4)"), "{s}");
    }

    #[test]
    fn traceable_default_uses_display() {
        let o = DynamicObject::new(9);
        assert_eq!(o.trace_info(), "#9");
    }
}
