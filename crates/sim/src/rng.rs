//! A tiny deterministic pseudo-random number generator.
//!
//! The simulator needs reproducible randomness in two places: synthetic
//! workload generation (vertex jitter, texture noise) and fault-injection
//! schedules. Both must replay bit-identically from a seed across runs
//! and platforms, so the generator is a fixed algorithm owned by this
//! crate rather than an external dependency: SplitMix64 (Steele et al.,
//! *Fast Splittable Pseudorandom Number Generators*, OOPSLA 2014) — a
//! 64-bit state mixed through two xor-shift-multiply rounds, passing
//! BigCrush while being a handful of instructions per draw.

use crate::Cycle;

/// A seeded SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use attila_sim::TinyRng;
///
/// let mut a = TinyRng::new(7);
/// let mut b = TinyRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let x = a.range_u32(0, 10);
/// assert!(x < 10);
/// let f = a.range_f32(-1.0, 1.0);
/// assert!((-1.0..1.0).contains(&f));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TinyRng {
    state: u64,
}

impl TinyRng {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        TinyRng { state: seed }
    }

    /// The current 64-bit internal state, for checkpointing. Restoring it
    /// with [`set_state`](TinyRng::set_state) resumes the stream exactly
    /// where it left off.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Overwrites the internal state with one captured by
    /// [`state`](TinyRng::state).
    pub fn set_state(&mut self, state: u64) {
        self.state = state;
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform integer in `[lo, hi)`. Empty ranges return `lo`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        if hi <= lo {
            return lo;
        }
        let span = u64::from(hi - lo);
        lo + (self.next_u64() % span) as u32
    }

    /// A uniform integer in `[lo, hi)`. Empty ranges return `lo`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }

    /// A uniform cycle number in `[lo, hi)` (alias of [`range_u64`]).
    ///
    /// [`range_u64`]: TinyRng::range_u64
    pub fn range_cycle(&mut self, lo: Cycle, hi: Cycle) -> Cycle {
        self.range_u64(lo, hi)
    }

    /// A uniform float in `[lo, hi)`. Empty ranges return `lo`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        if hi <= lo {
            return lo;
        }
        lo + self.unit_f32() * (hi - lo)
    }

    /// A uniform float in `[0, 1)` with 24 bits of precision.
    pub fn unit_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// A fair coin flip.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Draws `true` with probability `num / denom` (saturating at 1).
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        if denom == 0 {
            return true;
        }
        self.next_u64() % denom < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = (0..8).map({ let mut r = TinyRng::new(1); move |_| r.next_u64() }).collect();
        let b: Vec<u64> = (0..8).map({ let mut r = TinyRng::new(1); move |_| r.next_u64() }).collect();
        let c: Vec<u64> = (0..8).map({ let mut r = TinyRng::new(2); move |_| r.next_u64() }).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = TinyRng::new(42);
        for _ in 0..1000 {
            let x = r.range_u32(3, 17);
            assert!((3..17).contains(&x));
            let f = r.range_f32(-0.5, 0.25);
            assert!((-0.5..0.25).contains(&f));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut r = TinyRng::new(9);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.range_u32(0, 8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket count {b} far from 1000");
        }
    }

    #[test]
    fn empty_ranges_degenerate_to_lo() {
        let mut r = TinyRng::new(0);
        assert_eq!(r.range_u32(5, 5), 5);
        assert_eq!(r.range_f32(1.0, 1.0), 1.0);
    }
}
