//! Boxes and the clock scheduler.
//!
//! A *box* abstracts a "large enough" piece of the pipeline — the Clipper,
//! the Fragment Generator, a whole ROP unit. Per the ATTILA model, a box
//! may only use local data (registers and queues) plus whatever arrives on
//! its input signals this cycle to update its state and drive its output
//! signals; boxes simulate the architecture's resource restrictions and
//! control/data flow, while signals simulate latency and bandwidth.

use crate::error::SimError;
use crate::Cycle;

/// A simulated hardware unit clocked once per cycle.
///
/// Implementations read their input signals, update internal queues and
/// state machines, and write their output signals. All the boxes of a
/// simulator are clocked in a fixed order each cycle; correctness must not
/// depend on that order because inter-box communication only happens
/// through signals with ≥0 latency.
pub trait SimBox {
    /// The box's registered name (matches the names used when registering
    /// its signals in the [`SignalBinder`](crate::SignalBinder)).
    fn name(&self) -> &str;

    /// Advances the box by one cycle.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] raised by a signal verification
    /// check; the box's state is left as of the failing operation, so the
    /// caller can snapshot it for a post-mortem report.
    fn clock(&mut self, cycle: Cycle) -> Result<(), SimError>;

    /// Whether the box still has work in flight. The scheduler can use this
    /// to detect global quiescence.
    fn busy(&self) -> bool {
        false
    }
}

/// Drives a collection of boxes cycle by cycle.
///
/// The top-level ATTILA GPU assembles its own concrete boxes for speed, but
/// the generic scheduler is useful for tests, tools and custom pipelines.
///
/// # Examples
///
/// ```
/// use attila_sim::{Scheduler, SimBox};
///
/// struct Ticker {
///     name: String,
///     ticks: u64,
/// }
/// impl SimBox for Ticker {
///     fn name(&self) -> &str {
///         &self.name
///     }
///     fn clock(&mut self, _cycle: u64) -> Result<(), attila_sim::SimError> {
///         self.ticks += 1;
///         Ok(())
///     }
/// }
///
/// let mut sched = Scheduler::new();
/// sched.add_box(Box::new(Ticker { name: "t".into(), ticks: 0 }));
/// sched.run(100).unwrap();
/// assert_eq!(sched.cycle(), 100);
/// ```
#[derive(Default)]
pub struct Scheduler {
    boxes: Vec<Box<dyn SimBox>>,
    cycle: Cycle,
}

impl Scheduler {
    /// Creates an empty scheduler at cycle 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a box; boxes are clocked in insertion order.
    pub fn add_box(&mut self, b: Box<dyn SimBox>) {
        self.boxes.push(b);
    }

    /// The current cycle (the next cycle to be simulated).
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Clocks every box once and advances the clock.
    ///
    /// # Errors
    ///
    /// Stops at the first box whose `clock` fails and returns its
    /// [`SimError`] (the name of the failing box is available through the
    /// error's signal name). The clock still advances, so a caller
    /// choosing to continue despite the fault keeps making progress.
    pub fn step(&mut self) -> Result<(), SimError> {
        let cycle = self.cycle;
        self.cycle += 1;
        for b in &mut self.boxes {
            b.clock(cycle)?;
        }
        Ok(())
    }

    /// Runs `cycles` clock steps.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] from [`step`](Self::step).
    pub fn run(&mut self, cycles: Cycle) -> Result<(), SimError> {
        for _ in 0..cycles {
            self.step()?;
        }
        Ok(())
    }

    /// Runs until no box reports [`busy`](SimBox::busy) or `max_cycles`
    /// elapse, returning the number of cycles simulated.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] from [`step`](Self::step).
    pub fn run_until_idle(&mut self, max_cycles: Cycle) -> Result<Cycle, SimError> {
        let start = self.cycle;
        for _ in 0..max_cycles {
            self.step()?;
            if !self.boxes.iter().any(|b| b.busy()) {
                break;
            }
        }
        Ok(self.cycle - start)
    }

    /// Names of all registered boxes, in clocking order.
    pub fn box_names(&self) -> Vec<&str> {
        self.boxes.iter().map(|b| b.name()).collect()
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("cycle", &self.cycle)
            .field("boxes", &self.box_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Signal;

    struct Producer {
        tx: crate::SignalWriter<u32>,
        left: u32,
    }
    impl SimBox for Producer {
        fn name(&self) -> &str {
            "producer"
        }
        fn clock(&mut self, cycle: Cycle) -> Result<(), SimError> {
            if self.left > 0 {
                self.tx.write(cycle, self.left)?;
                self.left -= 1;
            }
            Ok(())
        }
        fn busy(&self) -> bool {
            self.left > 0
        }
    }

    struct Consumer {
        rx: crate::SignalReader<u32>,
        got: std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
    }
    impl SimBox for Consumer {
        fn name(&self) -> &str {
            "consumer"
        }
        fn clock(&mut self, cycle: Cycle) -> Result<(), SimError> {
            while let Some(v) = self.rx.try_read(cycle)? {
                self.got.borrow_mut().push(v);
            }
            Ok(())
        }
        fn busy(&self) -> bool {
            self.rx.in_flight() > 0
        }
    }

    #[test]
    fn two_box_pipeline_moves_data() {
        let (tx, rx) = Signal::<u32>::with_name("p->c", 1, 2);
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sched = Scheduler::new();
        sched.add_box(Box::new(Producer { tx, left: 3 }));
        sched.add_box(Box::new(Consumer { rx, got: std::rc::Rc::clone(&got) }));
        let ran = sched.run_until_idle(100).unwrap();
        assert_eq!(&*got.borrow(), &vec![3, 2, 1]);
        assert!(ran < 100, "should quiesce early, ran {ran}");
    }

    #[test]
    fn step_advances_cycle() {
        let mut sched = Scheduler::new();
        assert_eq!(sched.cycle(), 0);
        sched.step().unwrap();
        sched.step().unwrap();
        assert_eq!(sched.cycle(), 2);
    }

    #[test]
    fn scheduler_surfaces_box_errors() {
        // A producer writing at twice the wire's bandwidth must surface
        // BandwidthExceeded from step(), not panic.
        struct Flooder {
            tx: crate::SignalWriter<u32>,
        }
        impl SimBox for Flooder {
            fn name(&self) -> &str {
                "flooder"
            }
            fn clock(&mut self, cycle: Cycle) -> Result<(), SimError> {
                self.tx.write(cycle, 1)?;
                self.tx.write(cycle, 2)?;
                Ok(())
            }
        }
        let (tx, _rx) = Signal::<u32>::with_name("f->x", 1, 1);
        let mut sched = Scheduler::new();
        sched.add_box(Box::new(Flooder { tx }));
        let err = sched.step().unwrap_err();
        assert!(matches!(err, SimError::BandwidthExceeded { .. }));
        assert_eq!(sched.cycle(), 1, "clock advances even on a fault");
    }

    #[test]
    fn box_names_in_order() {
        let (tx, rx) = Signal::<u32>::with_name("x", 1, 1);
        let mut sched = Scheduler::new();
        sched.add_box(Box::new(Producer { tx, left: 0 }));
        sched.add_box(Box::new(Consumer {
            rx,
            got: std::rc::Rc::new(std::cell::RefCell::new(Vec::new())),
        }));
        assert_eq!(sched.box_names(), vec!["producer", "consumer"]);
    }
}
