//! Boxes and the clock scheduler.
//!
//! A *box* abstracts a "large enough" piece of the pipeline — the Clipper,
//! the Fragment Generator, a whole ROP unit. Per the ATTILA model, a box
//! may only use local data (registers and queues) plus whatever arrives on
//! its input signals this cycle to update its state and drive its output
//! signals; boxes simulate the architecture's resource restrictions and
//! control/data flow, while signals simulate latency and bandwidth.

use crate::Cycle;

/// A simulated hardware unit clocked once per cycle.
///
/// Implementations read their input signals, update internal queues and
/// state machines, and write their output signals. All the boxes of a
/// simulator are clocked in a fixed order each cycle; correctness must not
/// depend on that order because inter-box communication only happens
/// through signals with ≥0 latency.
pub trait SimBox {
    /// The box's registered name (matches the names used when registering
    /// its signals in the [`SignalBinder`](crate::SignalBinder)).
    fn name(&self) -> &str;

    /// Advances the box by one cycle.
    fn clock(&mut self, cycle: Cycle);

    /// Whether the box still has work in flight. The scheduler can use this
    /// to detect global quiescence.
    fn busy(&self) -> bool {
        false
    }
}

/// Drives a collection of boxes cycle by cycle.
///
/// The top-level ATTILA GPU assembles its own concrete boxes for speed, but
/// the generic scheduler is useful for tests, tools and custom pipelines.
///
/// # Examples
///
/// ```
/// use attila_sim::{Scheduler, SimBox};
///
/// struct Ticker {
///     name: String,
///     ticks: u64,
/// }
/// impl SimBox for Ticker {
///     fn name(&self) -> &str {
///         &self.name
///     }
///     fn clock(&mut self, _cycle: u64) {
///         self.ticks += 1;
///     }
/// }
///
/// let mut sched = Scheduler::new();
/// sched.add_box(Box::new(Ticker { name: "t".into(), ticks: 0 }));
/// sched.run(100);
/// assert_eq!(sched.cycle(), 100);
/// ```
#[derive(Default)]
pub struct Scheduler {
    boxes: Vec<Box<dyn SimBox>>,
    cycle: Cycle,
}

impl Scheduler {
    /// Creates an empty scheduler at cycle 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a box; boxes are clocked in insertion order.
    pub fn add_box(&mut self, b: Box<dyn SimBox>) {
        self.boxes.push(b);
    }

    /// The current cycle (the next cycle to be simulated).
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Clocks every box once and advances the clock.
    pub fn step(&mut self) {
        let cycle = self.cycle;
        for b in &mut self.boxes {
            b.clock(cycle);
        }
        self.cycle += 1;
    }

    /// Runs `cycles` clock steps.
    pub fn run(&mut self, cycles: Cycle) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until no box reports [`busy`](SimBox::busy) or `max_cycles`
    /// elapse, returning the number of cycles simulated.
    pub fn run_until_idle(&mut self, max_cycles: Cycle) -> Cycle {
        let start = self.cycle;
        for _ in 0..max_cycles {
            self.step();
            if !self.boxes.iter().any(|b| b.busy()) {
                break;
            }
        }
        self.cycle - start
    }

    /// Names of all registered boxes, in clocking order.
    pub fn box_names(&self) -> Vec<&str> {
        self.boxes.iter().map(|b| b.name()).collect()
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("cycle", &self.cycle)
            .field("boxes", &self.box_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Signal;

    struct Producer {
        tx: crate::SignalWriter<u32>,
        left: u32,
    }
    impl SimBox for Producer {
        fn name(&self) -> &str {
            "producer"
        }
        fn clock(&mut self, cycle: Cycle) {
            if self.left > 0 {
                self.tx.send(cycle, self.left);
                self.left -= 1;
            }
        }
        fn busy(&self) -> bool {
            self.left > 0
        }
    }

    struct Consumer {
        rx: crate::SignalReader<u32>,
        got: std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
    }
    impl SimBox for Consumer {
        fn name(&self) -> &str {
            "consumer"
        }
        fn clock(&mut self, cycle: Cycle) {
            while let Some(v) = self.rx.read(cycle) {
                self.got.borrow_mut().push(v);
            }
        }
        fn busy(&self) -> bool {
            self.rx.in_flight() > 0
        }
    }

    #[test]
    fn two_box_pipeline_moves_data() {
        let (tx, rx) = Signal::<u32>::with_name("p->c", 1, 2);
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sched = Scheduler::new();
        sched.add_box(Box::new(Producer { tx, left: 3 }));
        sched.add_box(Box::new(Consumer { rx, got: std::rc::Rc::clone(&got) }));
        let ran = sched.run_until_idle(100);
        assert_eq!(&*got.borrow(), &vec![3, 2, 1]);
        assert!(ran < 100, "should quiesce early, ran {ran}");
    }

    #[test]
    fn step_advances_cycle() {
        let mut sched = Scheduler::new();
        assert_eq!(sched.cycle(), 0);
        sched.step();
        sched.step();
        assert_eq!(sched.cycle(), 2);
    }

    #[test]
    fn box_names_in_order() {
        let (tx, rx) = Signal::<u32>::with_name("x", 1, 1);
        let mut sched = Scheduler::new();
        sched.add_box(Box::new(Producer { tx, left: 0 }));
        sched.add_box(Box::new(Consumer {
            rx,
            got: std::rc::Rc::new(std::cell::RefCell::new(Vec::new())),
        }));
        assert_eq!(sched.box_names(), vec!["producer", "consumer"]);
    }
}
