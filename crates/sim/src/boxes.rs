//! Boxes and the clock scheduler.
//!
//! A *box* abstracts a "large enough" piece of the pipeline — the Clipper,
//! the Fragment Generator, a whole ROP unit. Per the ATTILA model, a box
//! may only use local data (registers and queues) plus whatever arrives on
//! its input signals this cycle to update its state and drive its output
//! signals; boxes simulate the architecture's resource restrictions and
//! control/data flow, while signals simulate latency and bandwidth.
//!
//! Besides the paper's every-box-every-cycle loop, the scheduler supports
//! **event-horizon skipping**: each box reports a [`Horizon`] describing
//! the earliest future cycle at which clocking it could change any
//! observable state, and when every box agrees the machine is idle until
//! cycle *c* the scheduler jumps the clock straight to *c* instead of
//! spinning no-op `clock()` calls. Skipping never changes observable
//! timing — it only elides cycles that are provably no-ops.

use crate::error::SimError;
use crate::Cycle;

/// How soon a unit could next do observable work — the unit's *event
/// horizon*, reported by [`SimBox::work_horizon`] and combined across all
/// boxes and signals by an idle-aware scheduler.
///
/// The contract is conservative: a unit may only report
/// [`IdleUntil`](Horizon::IdleUntil)`(c)` or [`Idle`](Horizon::Idle) if
/// clocking it on any cycle strictly before `c` (or, for `Idle`, on any
/// cycle before external input arrives) is a no-op for every piece of
/// observable state — queues, signals, statistics counters and functional
/// memory alike. When in doubt a unit must report [`Busy`](Horizon::Busy);
/// `Busy` is always correct, merely slower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Horizon {
    /// The unit may do work on the very next cycle; the scheduler must
    /// keep clocking it every cycle.
    Busy,
    /// The unit is guaranteed not to do observable work before the given
    /// cycle (e.g. it only waits for an in-flight object arriving then).
    IdleUntil(Cycle),
    /// The unit has nothing in flight at all; it will only wake when some
    /// *other* unit (whose own horizon covers that event) feeds it.
    Idle,
}

impl Horizon {
    /// Combines two horizons into the horizon of the pair: `Busy`
    /// dominates, two wake-up cycles keep the earlier one, and `Idle` is
    /// the identity element.
    #[must_use]
    pub fn meet(self, other: Horizon) -> Horizon {
        match (self, other) {
            (Horizon::Busy, _) | (_, Horizon::Busy) => Horizon::Busy,
            (Horizon::IdleUntil(a), Horizon::IdleUntil(b)) => Horizon::IdleUntil(a.min(b)),
            (Horizon::IdleUntil(c), Horizon::Idle) | (Horizon::Idle, Horizon::IdleUntil(c)) => {
                Horizon::IdleUntil(c)
            }
            (Horizon::Idle, Horizon::Idle) => Horizon::Idle,
        }
    }

    /// The horizon of a unit whose only pending event is an optional
    /// arrival cycle: `IdleUntil(c)` when one is known, `Idle` otherwise.
    #[must_use]
    pub fn from_event(next: Option<Cycle>) -> Horizon {
        match next {
            Some(c) => Horizon::IdleUntil(c),
            None => Horizon::Idle,
        }
    }

    /// Whether the unit must be clocked on the very next cycle.
    pub fn is_busy(&self) -> bool {
        matches!(self, Horizon::Busy)
    }

    /// The wake-up cycle, when one is known.
    pub fn wake_cycle(&self) -> Option<Cycle> {
        match self {
            Horizon::IdleUntil(c) => Some(*c),
            _ => None,
        }
    }
}

/// A simulated hardware unit clocked once per cycle.
///
/// Implementations read their input signals, update internal queues and
/// state machines, and write their output signals. All the boxes of a
/// simulator are clocked in a fixed order each cycle; correctness must not
/// depend on that order because inter-box communication only happens
/// through signals with ≥0 latency.
pub trait SimBox {
    /// The box's registered name (matches the names used when registering
    /// its signals in the [`SignalBinder`](crate::SignalBinder)).
    fn name(&self) -> &str;

    /// Advances the box by one cycle.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] raised by a signal verification
    /// check; the box's state is left as of the failing operation, so the
    /// caller can snapshot it for a post-mortem report.
    fn clock(&mut self, cycle: Cycle) -> Result<(), SimError>;

    /// Whether the box still has work in flight. The scheduler can use this
    /// to detect global quiescence.
    fn busy(&self) -> bool {
        false
    }

    /// The box's event horizon: the earliest future cycle at which clocking
    /// it could change observable state (see [`Horizon`] for the exact
    /// contract).
    ///
    /// The default derives a safe answer from [`busy`](Self::busy): a busy
    /// box must be clocked every cycle, an idle box only wakes on external
    /// input. Boxes that know their next event precisely (an in-flight
    /// arrival, a countdown latch) override this with
    /// [`Horizon::IdleUntil`] so the scheduler can skip the dead cycles in
    /// between.
    fn work_horizon(&self) -> Horizon {
        if self.busy() {
            Horizon::Busy
        } else {
            Horizon::Idle
        }
    }
}

/// Drives a collection of boxes cycle by cycle.
///
/// The top-level ATTILA GPU assembles its own concrete boxes for speed, but
/// the generic scheduler is useful for tests, tools and custom pipelines.
///
/// # Examples
///
/// ```
/// use attila_sim::{Scheduler, SimBox};
///
/// struct Ticker {
///     name: String,
///     ticks: u64,
/// }
/// impl SimBox for Ticker {
///     fn name(&self) -> &str {
///         &self.name
///     }
///     fn clock(&mut self, _cycle: u64) -> Result<(), attila_sim::SimError> {
///         self.ticks += 1;
///         Ok(())
///     }
/// }
///
/// let mut sched = Scheduler::new();
/// sched.add_box(Box::new(Ticker { name: "t".into(), ticks: 0 }));
/// sched.run(100).unwrap();
/// assert_eq!(sched.cycle(), 100);
/// ```
#[derive(Default)]
pub struct Scheduler {
    boxes: Vec<Box<dyn SimBox>>,
    cycle: Cycle,
}

impl Scheduler {
    /// Creates an empty scheduler at cycle 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a box; boxes are clocked in insertion order.
    pub fn add_box(&mut self, b: Box<dyn SimBox>) {
        self.boxes.push(b);
    }

    /// The current cycle (the next cycle to be simulated).
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Clocks every box once and advances the clock.
    ///
    /// # Errors
    ///
    /// Stops at the first box whose `clock` fails and returns its
    /// [`SimError`] (the name of the failing box is available through the
    /// error's signal name). The clock still advances, so a caller
    /// choosing to continue despite the fault keeps making progress.
    pub fn step(&mut self) -> Result<(), SimError> {
        let cycle = self.cycle;
        self.cycle += 1;
        for b in &mut self.boxes {
            b.clock(cycle)?;
        }
        Ok(())
    }

    /// Runs `cycles` clock steps.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] from [`step`](Self::step).
    pub fn run(&mut self, cycles: Cycle) -> Result<(), SimError> {
        for _ in 0..cycles {
            self.step()?;
        }
        Ok(())
    }

    /// Runs until no box reports [`busy`](SimBox::busy) or `max_cycles`
    /// elapse, returning the number of cycles simulated.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] from [`step`](Self::step).
    pub fn run_until_idle(&mut self, max_cycles: Cycle) -> Result<Cycle, SimError> {
        let start = self.cycle;
        for _ in 0..max_cycles {
            self.step()?;
            if !self.boxes.iter().any(|b| b.busy()) {
                break;
            }
        }
        Ok(self.cycle - start)
    }

    /// The combined event horizon of every registered box (see
    /// [`SimBox::work_horizon`]).
    pub fn horizon(&self) -> Horizon {
        self.boxes.iter().fold(Horizon::Idle, |h, b| h.meet(b.work_horizon()))
    }

    /// Runs `cycles` clock steps with event-horizon skipping: whenever the
    /// combined [`horizon`](Self::horizon) reports every box idle until
    /// cycle *c*, the clock jumps straight to *c* (never past the `cycles`
    /// budget) instead of issuing no-op `clock()` calls. Skipped cycles
    /// count as simulated, so the final [`cycle`](Self::cycle) matches a
    /// plain [`run`](Self::run) exactly.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] from [`step`](Self::step).
    pub fn step_many(&mut self, cycles: Cycle) -> Result<(), SimError> {
        let target = self.cycle.saturating_add(cycles);
        while self.cycle < target {
            self.step()?;
            match self.horizon() {
                Horizon::Busy => {}
                Horizon::IdleUntil(wake) => self.cycle = wake.clamp(self.cycle, target),
                Horizon::Idle => self.cycle = target,
            }
        }
        Ok(())
    }

    /// Names of all registered boxes, in clocking order.
    pub fn box_names(&self) -> Vec<&str> {
        self.boxes.iter().map(|b| b.name()).collect()
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("cycle", &self.cycle)
            .field("boxes", &self.box_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Signal;

    struct Producer {
        tx: crate::SignalWriter<u32>,
        left: u32,
    }
    impl SimBox for Producer {
        fn name(&self) -> &str {
            "producer"
        }
        fn clock(&mut self, cycle: Cycle) -> Result<(), SimError> {
            if self.left > 0 {
                self.tx.write(cycle, self.left)?;
                self.left -= 1;
            }
            Ok(())
        }
        fn busy(&self) -> bool {
            self.left > 0
        }
    }

    struct Consumer {
        rx: crate::SignalReader<u32>,
        got: std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
    }
    impl SimBox for Consumer {
        fn name(&self) -> &str {
            "consumer"
        }
        fn clock(&mut self, cycle: Cycle) -> Result<(), SimError> {
            while let Some(v) = self.rx.try_read(cycle)? {
                self.got.borrow_mut().push(v);
            }
            Ok(())
        }
        fn busy(&self) -> bool {
            self.rx.in_flight() > 0
        }
    }

    #[test]
    fn two_box_pipeline_moves_data() {
        let (tx, rx) = Signal::<u32>::with_name("p->c", 1, 2);
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sched = Scheduler::new();
        sched.add_box(Box::new(Producer { tx, left: 3 }));
        sched.add_box(Box::new(Consumer { rx, got: std::rc::Rc::clone(&got) }));
        let ran = sched.run_until_idle(100).unwrap();
        assert_eq!(&*got.borrow(), &vec![3, 2, 1]);
        assert!(ran < 100, "should quiesce early, ran {ran}");
    }

    #[test]
    fn step_advances_cycle() {
        let mut sched = Scheduler::new();
        assert_eq!(sched.cycle(), 0);
        sched.step().unwrap();
        sched.step().unwrap();
        assert_eq!(sched.cycle(), 2);
    }

    #[test]
    fn scheduler_surfaces_box_errors() {
        // A producer writing at twice the wire's bandwidth must surface
        // BandwidthExceeded from step(), not panic.
        struct Flooder {
            tx: crate::SignalWriter<u32>,
        }
        impl SimBox for Flooder {
            fn name(&self) -> &str {
                "flooder"
            }
            fn clock(&mut self, cycle: Cycle) -> Result<(), SimError> {
                self.tx.write(cycle, 1)?;
                self.tx.write(cycle, 2)?;
                Ok(())
            }
        }
        let (tx, _rx) = Signal::<u32>::with_name("f->x", 1, 1);
        let mut sched = Scheduler::new();
        sched.add_box(Box::new(Flooder { tx }));
        let err = sched.step().unwrap_err();
        assert!(matches!(err, SimError::BandwidthExceeded { .. }));
        assert_eq!(sched.cycle(), 1, "clock advances even on a fault");
    }

    #[test]
    fn horizon_meet_busy_dominates() {
        assert_eq!(Horizon::Busy.meet(Horizon::Idle), Horizon::Busy);
        assert_eq!(Horizon::Idle.meet(Horizon::Busy), Horizon::Busy);
        assert_eq!(Horizon::Busy.meet(Horizon::IdleUntil(9)), Horizon::Busy);
        assert!(Horizon::Busy.is_busy());
        assert_eq!(Horizon::Busy.wake_cycle(), None);
    }

    #[test]
    fn horizon_meet_keeps_earliest_wake() {
        assert_eq!(
            Horizon::IdleUntil(7).meet(Horizon::IdleUntil(3)),
            Horizon::IdleUntil(3)
        );
        assert_eq!(Horizon::IdleUntil(5).meet(Horizon::Idle), Horizon::IdleUntil(5));
        assert_eq!(Horizon::Idle.meet(Horizon::Idle), Horizon::Idle);
        assert_eq!(Horizon::IdleUntil(5).wake_cycle(), Some(5));
    }

    #[test]
    fn horizon_from_event() {
        assert_eq!(Horizon::from_event(Some(4)), Horizon::IdleUntil(4));
        assert_eq!(Horizon::from_event(None), Horizon::Idle);
    }

    #[test]
    fn default_work_horizon_follows_busy() {
        let (tx, _rx) = Signal::<u32>::with_name("p->x", 1, 4);
        let busy = Producer { tx, left: 2 };
        assert_eq!(busy.work_horizon(), Horizon::Busy);
        let (tx, _rx) = Signal::<u32>::with_name("p->y", 1, 4);
        let idle = Producer { tx, left: 0 };
        assert_eq!(idle.work_horizon(), Horizon::Idle);
    }

    #[test]
    fn step_many_matches_run_cycle_for_cycle() {
        // The same pipeline driven with and without horizon skipping must
        // land on the same cycle with the same delivered data.
        let build = |got: &std::rc::Rc<std::cell::RefCell<Vec<u32>>>| {
            let (tx, rx) = Signal::<u32>::with_name("p->c", 3, 4);
            let mut sched = Scheduler::new();
            sched.add_box(Box::new(Producer { tx, left: 3 }));
            sched.add_box(Box::new(Consumer { rx, got: std::rc::Rc::clone(got) }));
            sched
        };
        let got_skip = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut skipping = build(&got_skip);
        skipping.step_many(200).unwrap();
        let got_plain = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut plain = build(&got_plain);
        plain.run(200).unwrap();
        assert_eq!(skipping.cycle(), plain.cycle());
        assert_eq!(&*got_skip.borrow(), &*got_plain.borrow());
        assert_eq!(&*got_skip.borrow(), &vec![3, 2, 1]);
    }

    #[test]
    fn step_many_jumps_an_all_idle_machine_to_the_target() {
        let (tx, rx) = Signal::<u32>::with_name("p->c", 1, 1);
        let mut sched = Scheduler::new();
        sched.add_box(Box::new(Producer { tx, left: 0 }));
        sched.add_box(Box::new(Consumer {
            rx,
            got: std::rc::Rc::new(std::cell::RefCell::new(Vec::new())),
        }));
        sched.step_many(1_000_000).unwrap();
        assert_eq!(sched.cycle(), 1_000_000);
    }

    #[test]
    fn box_names_in_order() {
        let (tx, rx) = Signal::<u32>::with_name("x", 1, 1);
        let mut sched = Scheduler::new();
        sched.add_box(Box::new(Producer { tx, left: 0 }));
        sched.add_box(Box::new(Consumer {
            rx,
            got: std::rc::Rc::new(std::cell::RefCell::new(Vec::new())),
        }));
        assert_eq!(sched.box_names(), vec!["producer", "consumer"]);
    }
}
