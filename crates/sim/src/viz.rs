//! HTML timeline renderer for signal traces — `attila viz`.
//!
//! Turns a [`SignalTrace`] into a **single self-contained HTML file**: no
//! external scripts, stylesheets, fonts or network fetches, so the file
//! can be archived next to a run's statistics and opened years later.
//!
//! # Data model
//!
//! The cycle span `[first, last]` covered by the trace is divided into at
//! most [`VizOptions::buckets`] equal integer-width buckets. Each traced
//! signal becomes one horizontal *lane*; each bucket in a lane is classed
//! by the events that landed in it:
//!
//! * **busy** — at least one transfer arrived in the bucket;
//! * **stall** — no transfer, but the bucket lies strictly inside the
//!   lane's active span (between its first and last event): a bubble;
//! * outside the active span the lane is blank.
//!
//! Lanes named `mem.ch<c>.bank<b>` are DRAM bank lanes: their events carry
//! a row-buffer outcome prefix (`hit` / `miss` / `conf`, see
//! `attila-mem`), and the bucket is classed by the *worst* outcome it
//! contains (conflict > miss > hit) instead of plain busy/stall.
//!
//! # Determinism
//!
//! The output is **byte-for-byte deterministic**: a pure function of the
//! event list and options. Lanes are ordered by signal name (`BTreeMap`),
//! all geometry is integer arithmetic, and nothing samples the clock or an
//! RNG. Rendering the same dump twice must produce identical bytes — CI
//! diffs the two files.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::trace::SignalTrace;
use crate::Cycle;

/// Rendering options for [`render_html`].
#[derive(Debug, Clone)]
pub struct VizOptions {
    /// Page title (escaped into the header and `<title>`).
    pub title: String,
    /// Maximum number of timeline columns. The span is divided into
    /// equal integer-width buckets; fewer columns are used when the span
    /// is shorter than the limit. Clamped to at least 1.
    pub buckets: usize,
}

impl Default for VizOptions {
    fn default() -> Self {
        VizOptions { title: "ATTILA signal timeline".into(), buckets: 240 }
    }
}

/// Per-bucket class, in severity order. For plain lanes only `Busy` and
/// `Stall` occur; bank lanes use the row-buffer outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Cell {
    Blank,
    Stall,
    Busy,
    Hit,
    Miss,
    Conflict,
}

impl Cell {
    fn css(self) -> &'static str {
        match self {
            Cell::Blank => "",
            Cell::Stall => "stall",
            Cell::Busy => "busy",
            Cell::Hit => "hit",
            Cell::Miss => "miss",
            Cell::Conflict => "conf",
        }
    }

    fn label(self) -> &'static str {
        match self {
            Cell::Blank => "idle",
            Cell::Stall => "stall",
            Cell::Busy => "busy",
            Cell::Hit => "row hit",
            Cell::Miss => "row miss",
            Cell::Conflict => "row conflict",
        }
    }
}

/// One lane's aggregated statistics for the occupancy table.
struct LaneStats {
    events: u64,
    first: Cycle,
    last: Cycle,
    /// `Some` for `mem.ch*.bank*` lanes: (hits, misses, conflicts).
    bank: Option<(u64, u64, u64)>,
}

/// Whether a signal name is a DRAM bank lane (`mem.ch<c>.bank<b>`).
fn is_bank_lane(name: &str) -> bool {
    let Some(rest) = name.strip_prefix("mem.ch") else { return false };
    let Some((ch, bank)) = rest.split_once(".bank") else { return false };
    !ch.is_empty()
        && ch.bytes().all(|b| b.is_ascii_digit())
        && !bank.is_empty()
        && bank.bytes().all(|b| b.is_ascii_digit())
}

/// Escapes text for HTML element and attribute content.
fn escape(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
}

fn escaped(text: &str) -> String {
    let mut out = String::new();
    escape(text, &mut out);
    out
}

/// Renders the trace as a self-contained HTML timeline.
///
/// The output depends only on `trace` and `opts` — see the module docs
/// for the determinism guarantee.
pub fn render_html(trace: &SignalTrace, opts: &VizOptions) -> String {
    let events = trace.events();
    let first = events.iter().map(|e| e.cycle).min().unwrap_or(0);
    let last = events.iter().map(|e| e.cycle).max().unwrap_or(0);
    let span = last - first + 1;
    let max_buckets = opts.buckets.max(1) as Cycle;
    // Integer bucket width; the last bucket may cover fewer cycles.
    let per = span.div_ceil(max_buckets).max(1);
    let n = span.div_ceil(per) as usize;

    // Lane name -> per-bucket worst class, plus stats. BTreeMap fixes the
    // lane order regardless of event order in the dump.
    let mut lanes: BTreeMap<&str, (Vec<Cell>, LaneStats)> = BTreeMap::new();
    for ev in events {
        let bucket = ((ev.cycle - first) / per) as usize;
        let bank = is_bank_lane(ev.signal.as_str());
        let entry = lanes.entry(ev.signal.as_str()).or_insert_with(|| {
            (
                vec![Cell::Blank; n],
                LaneStats {
                    events: 0,
                    first: ev.cycle,
                    last: ev.cycle,
                    bank: bank.then_some((0, 0, 0)),
                },
            )
        });
        let class = if let Some(counts) = entry.1.bank.as_mut() {
            match ev.info.split(' ').next().unwrap_or("") {
                "hit" => {
                    counts.0 += 1;
                    Cell::Hit
                }
                "conf" => {
                    counts.2 += 1;
                    Cell::Conflict
                }
                _ => {
                    counts.1 += 1;
                    Cell::Miss
                }
            }
        } else {
            Cell::Busy
        };
        entry.0[bucket] = entry.0[bucket].max(class);
        entry.1.events += 1;
        entry.1.first = entry.1.first.min(ev.cycle);
        entry.1.last = entry.1.last.max(ev.cycle);
    }
    // Second pass: mark in-span gaps as stalls (bubbles).
    for (cells, stats) in lanes.values_mut() {
        let lo = ((stats.first - first) / per) as usize;
        let hi = ((stats.last - first) / per) as usize;
        for cell in cells.iter_mut().take(hi + 1).skip(lo) {
            if *cell == Cell::Blank {
                *cell = Cell::Stall;
            }
        }
    }

    let mut out = String::with_capacity(16 * 1024);
    let title = escaped(&opts.title);
    let _ = write!(
        out,
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
         <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n\
         <title>{title}</title>\n<style>\n{css}</style>\n</head>\n<body>\n",
        css = CSS,
    );
    let _ = write!(
        out,
        "<header>\n<h1>{title}</h1>\n<p class=\"meta\">cycles {first}&#8211;{last} \
         ({span} cycles, {events} events, {signals} signals; {per} cycle(s) per column)</p>\n\
         </header>\n",
        events = events.len(),
        signals = lanes.len(),
    );
    // Legend: visible labels beside every swatch — identity is never
    // colour-alone (and the light-mode ramps lean on this relief).
    out.push_str(
        "<ul class=\"legend\">\n\
         <li><span class=\"sw busy\"></span>busy</li>\n\
         <li><span class=\"sw stall\"></span>stall (bubble)</li>\n\
         <li><span class=\"sw hit\"></span>bank row hit</li>\n\
         <li><span class=\"sw miss\"></span>bank row miss</li>\n\
         <li><span class=\"sw conf\"></span>bank row conflict</li>\n\
         </ul>\n",
    );

    out.push_str("<div class=\"lanes\">\n");
    for (name, (cells, _)) in &lanes {
        let _ = write!(out, "<div class=\"lane\"><span class=\"name\">{}</span>", escaped(name));
        let _ = write!(
            out,
            "<svg viewBox=\"0 0 {n} 1\" preserveAspectRatio=\"none\" role=\"img\" \
             aria-label=\"{} activity\">",
            escaped(name)
        );
        // Run-length merge identical adjacent buckets into one rect.
        let mut i = 0;
        while i < cells.len() {
            let class = cells[i];
            let mut j = i + 1;
            while j < cells.len() && cells[j] == class {
                j += 1;
            }
            if class != Cell::Blank {
                let lo = first + i as Cycle * per;
                let hi = (first + j as Cycle * per - 1).min(last);
                let _ = write!(
                    out,
                    "<rect class=\"{}\" x=\"{i}\" y=\"0\" width=\"{}\" height=\"1\">\
                     <title>{}: cycles {lo}&#8211;{hi}</title></rect>",
                    class.css(),
                    j - i,
                    class.label(),
                );
            }
            i = j;
        }
        out.push_str("</svg></div>\n");
    }
    out.push_str("</div>\n");

    // Occupancy table: the numbers behind the picture, readable without
    // colour at all.
    out.push_str(
        "<h2>Occupancy</h2>\n<table>\n<thead><tr><th>signal</th><th>events</th>\
         <th>first</th><th>last</th><th>row hits</th><th>row misses</th>\
         <th>row conflicts</th></tr></thead>\n<tbody>\n",
    );
    for (name, (_, stats)) in &lanes {
        let (h, m, c) = match stats.bank {
            Some((h, m, c)) => (h.to_string(), m.to_string(), c.to_string()),
            None => ("&#8212;".into(), "&#8212;".into(), "&#8212;".into()),
        };
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{h}</td><td>{m}</td>\
             <td>{c}</td></tr>",
            escaped(name),
            stats.events,
            stats.first,
            stats.last,
        );
    }
    out.push_str("</tbody>\n</table>\n</body>\n</html>\n");
    out
}

/// Inline stylesheet. The palette is validated for adjacent-pair CVD
/// separation on both surfaces; dark mode is its own set of steps, not an
/// automatic flip.
const CSS: &str = "\
:root {
  --surface: #ffffff; --ink: #1a1f26; --muted: #5c6670; --grid: #e4e7eb;
  --busy: #2a78d6; --stall: #eda100;
  --hit: #1baf7a; --miss: #eda100; --conf: #e87ba4;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #15191e; --ink: #e8ebee; --muted: #9aa4ad; --grid: #2a3138;
    --busy: #3987e5; --stall: #c98500;
    --hit: #199e70; --miss: #c98500; --conf: #d55181;
  }
}
body { background: var(--surface); color: var(--ink);
  font: 14px/1.45 system-ui, sans-serif; margin: 24px auto; max-width: 1100px;
  padding: 0 16px; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; }
.meta { color: var(--muted); margin: 0 0 16px; }
.legend { display: flex; flex-wrap: wrap; gap: 16px; list-style: none;
  margin: 0 0 12px; padding: 0; color: var(--muted); }
.legend li { display: flex; align-items: center; gap: 6px; }
.sw { display: inline-block; width: 14px; height: 14px; border-radius: 3px; }
.lanes { display: grid; grid-template-columns: max-content 1fr; gap: 2px 10px; }
.lane { display: contents; }
.lane .name { font: 12px/16px ui-monospace, monospace; color: var(--muted);
  text-align: right; align-self: center; }
.lane svg { width: 100%; height: 16px; background: var(--grid);
  border-radius: 3px; display: block; }
rect.busy, .sw.busy { fill: var(--busy); background: var(--busy); }
rect.stall, .sw.stall { fill: var(--stall); background: var(--stall); }
rect.hit, .sw.hit { fill: var(--hit); background: var(--hit); }
rect.miss, .sw.miss { fill: var(--miss); background: var(--miss); }
rect.conf, .sw.conf { fill: var(--conf); background: var(--conf); }
rect:hover { opacity: 0.75; }
table { border-collapse: collapse; font-size: 13px; }
th, td { border-bottom: 1px solid var(--grid); padding: 4px 12px 4px 0;
  text-align: left; font-variant-numeric: tabular-nums; }
th { color: var(--muted); font-weight: 600; }
";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn ev(cycle: Cycle, signal: &str, info: &str) -> TraceEvent {
        TraceEvent { cycle, signal: signal.into(), info: info.into() }
    }

    fn sample() -> SignalTrace {
        let mut t = SignalTrace::new();
        t.push(ev(10, "clip->setup", "#1 tri"));
        t.push(ev(12, "clip->setup", "#2 tri"));
        t.push(ev(40, "clip->setup", "#3 tri"));
        t.push(ev(11, "mem.ch0.bank0", "miss R row=0 11..21"));
        t.push(ev(15, "mem.ch0.bank0", "hit R row=0 15..19"));
        t.push(ev(30, "mem.ch0.bank0", "conf W row=9 30..46"));
        t
    }

    #[test]
    fn render_is_deterministic() {
        let a = render_html(&sample(), &VizOptions::default());
        let b = render_html(&sample(), &VizOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn round_trip_through_dump_is_byte_identical() {
        let direct = render_html(&sample(), &VizOptions::default());
        let reparsed = SignalTrace::parse(&sample().dump());
        assert_eq!(direct, render_html(&reparsed, &VizOptions::default()));
    }

    #[test]
    fn bank_lane_detection() {
        assert!(is_bank_lane("mem.ch0.bank7"));
        assert!(is_bank_lane("mem.ch12.bank31"));
        assert!(!is_bank_lane("mem.ch0.bank"));
        assert!(!is_bank_lane("mem.ch.bank0"));
        assert!(!is_bank_lane("clip->setup"));
        assert!(!is_bank_lane("mem.ch0.bankX"));
    }

    #[test]
    fn bank_outcomes_are_classed_and_counted() {
        let html = render_html(&sample(), &VizOptions::default());
        assert!(html.contains("class=\"hit\""), "hit rect present");
        assert!(html.contains("class=\"miss\""), "miss rect present");
        assert!(html.contains("class=\"conf\""), "conflict rect present");
        // Occupancy row: 1 hit, 1 miss, 1 conflict.
        assert!(
            html.contains("<td>mem.ch0.bank0</td><td>3</td><td>11</td><td>30</td><td>1</td><td>1</td><td>1</td>"),
            "bank occupancy row"
        );
    }

    #[test]
    fn gaps_inside_span_become_stalls() {
        let mut t = SignalTrace::new();
        t.push(ev(0, "s", ""));
        t.push(ev(50, "s", ""));
        // Force one bucket per cycle so the gap is visible.
        let html = render_html(&t, &VizOptions { title: "t".into(), buckets: 64 });
        assert!(html.contains("class=\"stall\""), "bubble between the two events");
    }

    #[test]
    fn names_and_title_are_escaped() {
        let mut t = SignalTrace::new();
        t.push(ev(0, "a<b>&\"c\"", ""));
        let html =
            render_html(&t, &VizOptions { title: "<script>".into(), buckets: 8 });
        assert!(html.contains("a&lt;b&gt;&amp;&quot;c&quot;"));
        assert!(html.contains("<title>&lt;script&gt;</title>"));
        assert!(!html.contains("<script>"));
    }

    #[test]
    fn empty_trace_renders_without_panicking() {
        let html = render_html(&SignalTrace::new(), &VizOptions::default());
        assert!(html.contains("0 events"));
        assert!(html.ends_with("</html>\n"));
    }

    #[test]
    fn self_contained_no_external_references() {
        let html = render_html(&sample(), &VizOptions::default());
        for needle in ["http://", "https://", "src=", "href="] {
            assert!(!html.contains(needle), "external reference: {needle}");
        }
    }

    #[test]
    fn wide_span_buckets_stay_bounded() {
        let mut t = SignalTrace::new();
        for i in 0..10_000u64 {
            t.push(ev(i * 7, "s", ""));
        }
        let html = render_html(&t, &VizOptions { title: "t".into(), buckets: 100 });
        // 69994 cycles / 100 buckets -> 700 cycles per column.
        assert!(html.contains("700 cycle(s) per column"), "bucket width from span");
    }
}
