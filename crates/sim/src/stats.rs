//! Statistics collection.
//!
//! The ATTILA simulator's `StatisticsManager` registers, updates, gathers
//! and outputs ~300 named statistics covering resource utilization of every
//! pipeline stage, cache hit/miss ratios and memory bandwidth. Statistics
//! are dumped as CSV, and several of the paper's figures (8 and 9) plot
//! statistics *sampled every 10 K cycles*; the [`StatsRegistry`] therefore
//! supports windowed sampling natively.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::error::SimError;
use crate::Cycle;

/// A shared, monotonically increasing event counter.
///
/// Cloning a `Counter` yields another handle to the same underlying value,
/// so a box can keep a cheap handle while the registry retains another for
/// reporting.
///
/// # Examples
///
/// ```
/// use attila_sim::StatsRegistry;
/// let mut stats = StatsRegistry::new(10_000);
/// let hits = stats.counter("TextureCache.hits");
/// hits.inc();
/// hits.add(4);
/// assert_eq!(hits.value(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Rc<Cell<u64>>,
}

impl Counter {
    /// Creates a detached counter (not registered anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one event.
    pub fn inc(&self) {
        self.value.set(self.value.get() + 1);
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.value.set(self.value.get() + n);
    }

    /// Total events since simulation start.
    pub fn value(&self) -> u64 {
        self.value.get()
    }
}

/// A shared instantaneous value (occupancy, ratio, level).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Rc<Cell<f64>>,
}

impl Gauge {
    /// Creates a detached gauge (not registered anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current value.
    pub fn set(&self, v: f64) {
        self.value.set(v);
    }

    /// Reads the current value.
    pub fn value(&self) -> f64 {
        self.value.get()
    }
}

enum StatHandle {
    Counter(Counter),
    Gauge(Gauge),
}

struct StatEntry {
    handle: StatHandle,
    /// Per-window samples: counter delta within the window, or gauge value
    /// at window close.
    windows: Vec<f64>,
    /// Counter value at the close of the previous window.
    last_total: u64,
}

/// Registry of named statistics with periodic window sampling.
///
/// Every statistic is identified by a `Unit.stat` style name. Calling
/// [`tick`](Self::tick) each cycle closes a sampling window every
/// `window_size` cycles; [`csv`](Self::csv) then renders one row per window
/// (the format the paper's figures 8/9 are plotted from), and
/// [`totals_csv`](Self::totals_csv) renders the end-of-run totals.
///
/// Entries live in a dense `Vec` indexed by registration order — the slot
/// a statistic gets on first use — so the per-window sweep in
/// [`close_window`](Self::close_window) is a linear scan over contiguous
/// slots instead of a tree walk. A sorted name → slot index sits alongside
/// purely for lookups and for rendering CSV in the historical (sorted)
/// column order, keeping the output byte-identical to the tree-backed
/// implementation.
#[derive(Default)]
pub struct StatsRegistry {
    /// Dense storage, one slot per statistic in registration order.
    entries: Vec<StatEntry>,
    /// Sorted name → slot map (lookups and CSV column order only).
    index: BTreeMap<String, u32>,
    window_size: Cycle,
    windows_closed: usize,
    /// How many times each name was handed out by [`counter`](Self::counter)
    /// or [`gauge`](Self::gauge). A count above 1 means two call sites
    /// registered the same name — usually a copy-paste bug that silently
    /// merges two units' statistics (the `duplicate-stat` lint rule).
    registrations: BTreeMap<String, usize>,
}

impl StatsRegistry {
    /// Creates a registry sampling every `window_size` cycles (the paper
    /// uses 10 000). A `window_size` of 0 disables windowing.
    pub fn new(window_size: Cycle) -> Self {
        StatsRegistry {
            entries: Vec::new(),
            index: BTreeMap::new(),
            window_size,
            windows_closed: 0,
            registrations: BTreeMap::new(),
        }
    }

    /// The dense slot registered under `name`, if any.
    fn slot(&self, name: &str) -> Option<&StatEntry> {
        self.index.get(name).map(|&i| &self.entries[i as usize])
    }

    /// Returns (creating on first use) the counter registered under `name`.
    pub fn counter(&mut self, name: &str) -> Counter {
        *self.registrations.entry(name.to_string()).or_insert(0) += 1;
        match self.slot(name) {
            Some(StatEntry { handle: StatHandle::Counter(c), .. }) => c.clone(),
            Some(_) => panic!("statistic `{name}` is registered as a gauge, not a counter"),
            None => {
                let c = Counter::new();
                self.index.insert(name.to_string(), self.entries.len() as u32);
                self.entries.push(StatEntry {
                    handle: StatHandle::Counter(c.clone()),
                    // Backfill windows closed before registration so
                    // every statistic's series stays aligned.
                    windows: vec![0.0; self.windows_closed],
                    last_total: 0,
                });
                c
            }
        }
    }

    /// Returns (creating on first use) the gauge registered under `name`.
    pub fn gauge(&mut self, name: &str) -> Gauge {
        *self.registrations.entry(name.to_string()).or_insert(0) += 1;
        match self.slot(name) {
            Some(StatEntry { handle: StatHandle::Gauge(g), .. }) => g.clone(),
            Some(_) => panic!("statistic `{name}` is registered as a counter, not a gauge"),
            None => {
                let g = Gauge::new();
                self.index.insert(name.to_string(), self.entries.len() as u32);
                self.entries.push(StatEntry {
                    handle: StatHandle::Gauge(g.clone()),
                    windows: vec![0.0; self.windows_closed],
                    last_total: 0,
                });
                g
            }
        }
    }

    /// Advances the sampling clock; must be called once per simulated
    /// cycle. Closes a window whenever `window_size` cycles have elapsed.
    pub fn tick(&mut self, cycle: Cycle) {
        if self.window_size == 0 {
            return;
        }
        if (cycle + 1).is_multiple_of(self.window_size) {
            self.close_window();
        }
    }

    /// Advances the sampling clock across a skipped cycle range: exactly
    /// equivalent to calling [`tick`](Self::tick) once for every cycle in
    /// `from..to`, but in O(windows crossed) instead of O(cycles).
    ///
    /// Used by the event-horizon scheduler when it jumps the clock over
    /// provably idle cycles: no statistic changes during such a jump, so
    /// each window boundary crossed records the same all-zero counter
    /// deltas (and unchanged gauge values) a per-cycle loop would have.
    pub fn skip_to(&mut self, from: Cycle, to: Cycle) {
        if self.window_size == 0 || to <= from {
            return;
        }
        // tick(j) closes a window when (j + 1) % window_size == 0, so the
        // boundaries crossed by j in from..to number to/W - from/W.
        let crossed = to / self.window_size - from / self.window_size;
        for _ in 0..crossed {
            self.close_window();
        }
    }

    /// Closes the current sampling window explicitly (also called from
    /// [`tick`](Self::tick)); useful at end of frame / end of run.
    pub fn close_window(&mut self) {
        for entry in &mut self.entries {
            match &entry.handle {
                StatHandle::Counter(c) => {
                    let total = c.value();
                    entry.windows.push((total - entry.last_total) as f64);
                    entry.last_total = total;
                }
                StatHandle::Gauge(g) => entry.windows.push(g.value()),
            }
        }
        self.windows_closed += 1;
    }

    /// Number of closed sampling windows.
    pub fn windows_closed(&self) -> usize {
        self.windows_closed
    }

    /// The per-window sample series of one statistic, if registered.
    pub fn window_series(&self, name: &str) -> Option<&[f64]> {
        self.slot(name).map(|e| e.windows.as_slice())
    }

    /// End-of-run total of a counter (or current value of a gauge).
    pub fn total(&self, name: &str) -> Option<f64> {
        self.slot(name).map(|e| match &e.handle {
            StatHandle::Counter(c) => c.value() as f64,
            StatHandle::Gauge(g) => g.value(),
        })
    }

    /// Names of all registered statistics, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.index.keys().map(|s| s.as_str()).collect()
    }

    /// Names handed out more than once, with their registration counts —
    /// the input of the `duplicate-stat` architecture-lint rule. Shared
    /// handles obtained by *cloning* a [`Counter`]/[`Gauge`] do not count;
    /// only repeated lookups by name do.
    pub fn duplicate_registrations(&self) -> Vec<(String, usize)> {
        self.registrations
            .iter()
            .filter(|(_, &n)| n > 1)
            .map(|(name, &n)| (name.clone(), n))
            .collect()
    }

    /// Number of registered statistics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no statistics are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Captures every registered statistic (totals, window series, window
    /// bookkeeping) as plain data for checkpointing. Entries are listed in
    /// sorted-name order so the snapshot is deterministic.
    pub fn save_state(&self) -> StatsSnapshot {
        let entries = self
            .index
            .iter()
            .map(|(name, &slot)| {
                let e = &self.entries[slot as usize];
                let (is_counter, total, gauge) = match &e.handle {
                    StatHandle::Counter(c) => (true, c.value(), 0.0),
                    StatHandle::Gauge(g) => (false, 0, g.value()),
                };
                StatSnapshotEntry {
                    name: name.clone(),
                    is_counter,
                    total,
                    gauge,
                    windows: e.windows.clone(),
                    last_total: e.last_total,
                }
            })
            .collect();
        StatsSnapshot { entries, windows_closed: self.windows_closed }
    }

    /// Restores a snapshot taken by [`save_state`](Self::save_state) into a
    /// registry holding the same set of statistics (i.e. one elaborated
    /// from the same configuration).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointMismatch`] when the snapshot's
    /// statistics do not line up with the registered ones by name or kind.
    pub fn load_state(&mut self, snap: &StatsSnapshot) -> Result<(), SimError> {
        if snap.entries.len() != self.entries.len() {
            return Err(SimError::CheckpointMismatch {
                reason: format!(
                    "checkpoint has {} statistics, simulator registered {}",
                    snap.entries.len(),
                    self.entries.len()
                ),
            });
        }
        for e in &snap.entries {
            let Some(&slot) = self.index.get(&e.name) else {
                return Err(SimError::CheckpointMismatch {
                    reason: format!("checkpoint statistic `{}` is not registered", e.name),
                });
            };
            let entry = &mut self.entries[slot as usize];
            match (&entry.handle, e.is_counter) {
                (StatHandle::Counter(c), true) => c.value.set(e.total),
                (StatHandle::Gauge(g), false) => g.value.set(e.gauge),
                _ => {
                    return Err(SimError::CheckpointMismatch {
                        reason: format!("checkpoint statistic `{}` has the wrong kind", e.name),
                    })
                }
            }
            entry.windows = e.windows.clone();
            entry.last_total = e.last_total;
        }
        self.windows_closed = snap.windows_closed;
        Ok(())
    }

    /// Renders the windowed samples as CSV: one column per statistic, one
    /// row per closed window (the simulator's statistics-file format).
    pub fn csv(&self) -> String {
        let mut out = String::from("window");
        for name in self.index.keys() {
            out.push(',');
            out.push_str(name);
        }
        out.push('\n');
        for w in 0..self.windows_closed {
            let _ = write!(out, "{w}");
            for &slot in self.index.values() {
                let v = self.entries[slot as usize].windows.get(w).copied().unwrap_or(0.0);
                let _ = write!(out, ",{v}");
            }
            out.push('\n');
        }
        out
    }

    /// Renders end-of-run totals as `name,value` CSV rows.
    pub fn totals_csv(&self) -> String {
        let mut out = String::from("stat,total\n");
        for (name, &slot) in &self.index {
            let v = match &self.entries[slot as usize].handle {
                StatHandle::Counter(c) => c.value() as f64,
                StatHandle::Gauge(g) => g.value(),
            };
            let _ = writeln!(out, "{name},{v}");
        }
        out
    }
}

/// Plain-data snapshot of a whole [`StatsRegistry`], for checkpointing.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// One entry per statistic, in sorted-name order.
    pub entries: Vec<StatSnapshotEntry>,
    /// Closed sampling windows at capture time.
    pub windows_closed: usize,
}

/// One statistic's checkpointed state.
#[derive(Debug, Clone, PartialEq)]
pub struct StatSnapshotEntry {
    /// Registered name (`Unit.stat` style).
    pub name: String,
    /// `true` for a counter, `false` for a gauge.
    pub is_counter: bool,
    /// Counter total at capture (0 for gauges).
    pub total: u64,
    /// Gauge value at capture (0.0 for counters).
    pub gauge: f64,
    /// Per-window samples captured so far.
    pub windows: Vec<f64>,
    /// Counter total at the close of the previous window.
    pub last_total: u64,
}

impl std::fmt::Debug for StatsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsRegistry")
            .field("stats", &self.entries.len())
            .field("window_size", &self.window_size)
            .field("windows_closed", &self.windows_closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let mut reg = StatsRegistry::new(0);
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.total("x"), Some(3.0));
    }

    #[test]
    fn windows_capture_deltas() {
        let mut reg = StatsRegistry::new(10);
        let c = reg.counter("events");
        for cycle in 0..30 {
            if cycle < 10 {
                c.add(2);
            } else if cycle < 20 {
                c.inc();
            }
            reg.tick(cycle);
        }
        assert_eq!(reg.windows_closed(), 3);
        assert_eq!(reg.window_series("events").unwrap(), &[20.0, 10.0, 0.0]);
    }

    #[test]
    fn gauges_sample_instantaneous_values() {
        let mut reg = StatsRegistry::new(5);
        let g = reg.gauge("occupancy");
        for cycle in 0..10 {
            g.set(cycle as f64);
            reg.tick(cycle);
        }
        assert_eq!(reg.window_series("occupancy").unwrap(), &[4.0, 9.0]);
    }

    #[test]
    fn skip_to_closes_exactly_the_windows_ticking_would() {
        // Every (from, to) pair inside three windows: skip_to must leave
        // the registry in the same state as per-cycle ticking.
        for from in 0..30u64 {
            for to in from..30u64 {
                let mut ticked = StatsRegistry::new(10);
                let c = ticked.counter("events");
                c.add(4);
                for cycle in from..to {
                    ticked.tick(cycle);
                }
                let mut skipped = StatsRegistry::new(10);
                let c = skipped.counter("events");
                c.add(4);
                skipped.skip_to(from, to);
                assert_eq!(
                    skipped.windows_closed(),
                    ticked.windows_closed(),
                    "windows diverge for {from}..{to}"
                );
                assert_eq!(
                    skipped.window_series("events"),
                    ticked.window_series("events"),
                    "series diverge for {from}..{to}"
                );
            }
        }
    }

    #[test]
    fn skip_to_is_a_noop_without_windows_or_distance() {
        let mut reg = StatsRegistry::new(0);
        reg.counter("x");
        reg.skip_to(0, 1_000_000);
        assert_eq!(reg.windows_closed(), 0);
        let mut reg = StatsRegistry::new(10);
        reg.counter("x");
        reg.skip_to(25, 25);
        reg.skip_to(25, 5);
        assert_eq!(reg.windows_closed(), 0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut reg = StatsRegistry::new(2);
        let c = reg.counter("a.hits");
        let g = reg.gauge("b.level");
        c.inc();
        g.set(0.5);
        reg.tick(0);
        reg.tick(1); // closes window 0
        let csv = reg.csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("window,a.hits,b.level"));
        assert_eq!(lines.next(), Some("0,1,0.5"));
    }

    #[test]
    fn totals_csv_lists_every_stat() {
        let mut reg = StatsRegistry::new(0);
        reg.counter("one").add(7);
        reg.gauge("two").set(1.25);
        let csv = reg.totals_csv();
        assert!(csv.contains("one,7"));
        assert!(csv.contains("two,1.25"));
    }

    #[test]
    #[should_panic(expected = "registered as a gauge")]
    fn kind_mismatch_panics() {
        let mut reg = StatsRegistry::new(0);
        reg.gauge("x");
        reg.counter("x");
    }

    #[test]
    fn late_registration_stays_aligned() {
        let mut reg = StatsRegistry::new(10);
        let a = reg.counter("early");
        a.add(5);
        for cycle in 0..10 {
            reg.tick(cycle);
        }
        // Registered after one window closed: its first real sample must
        // land in window 1, not window 0.
        let b = reg.counter("late");
        b.add(3);
        for cycle in 10..20 {
            reg.tick(cycle);
        }
        assert_eq!(reg.window_series("late").unwrap(), &[0.0, 3.0]);
        assert_eq!(reg.window_series("early").unwrap(), &[5.0, 0.0]);
    }

    #[test]
    fn explicit_close_window() {
        let mut reg = StatsRegistry::new(0);
        let c = reg.counter("n");
        c.add(4);
        reg.close_window();
        c.add(1);
        reg.close_window();
        assert_eq!(reg.window_series("n").unwrap(), &[4.0, 1.0]);
    }
}
