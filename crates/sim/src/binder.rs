//! The signal binder: a name server for signals.
//!
//! In the ATTILA simulator the `SignalBinder` static class registers and
//! associates, using unique names, signals with the boxes they connect. The
//! set of signals a box registers conforms the box *interface*: a box can be
//! replaced by another box implementing an alternative microarchitecture as
//! long as it registers the same signals and supports the same objects.
//!
//! The Rust port keeps the binder as an explicit value (no global state).
//! Because signals are statically typed here, the binder stores the
//! *metadata* (name, direction, endpoints, bandwidth, latency) used for
//! introspection, interface checking and signal-trace tooling, while the
//! typed endpoints are handed to the boxes.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::SimError;
use crate::name::SignalName;
use crate::signal::{Signal, SignalProbe, SignalReader, SignalStatus, SignalWriter};
use crate::Cycle;

/// Direction of a signal relative to the box that registered it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalDirection {
    /// The box reads from this signal.
    Input,
    /// The box writes to this signal.
    Output,
}

impl fmt::Display for SignalDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalDirection::Input => write!(f, "in"),
            SignalDirection::Output => write!(f, "out"),
        }
    }
}

/// Metadata describing one registered signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalInfo {
    /// Unique signal name, conventionally `producer->consumer` or
    /// `box.purpose`.
    pub name: String,
    /// The box producing into the signal.
    pub from_box: String,
    /// The box consuming from the signal.
    pub to_box: String,
    /// Objects per cycle the wire can carry.
    pub bandwidth: usize,
    /// Cycles between write and arrival.
    pub latency: Cycle,
}

/// Registry of every signal in a simulator instance.
///
/// # Examples
///
/// ```
/// use attila_sim::SignalBinder;
///
/// let mut binder = SignalBinder::new();
/// let (_tx, _rx) =
///     binder.register::<u32>("clipper->setup", "Clipper", "TriangleSetup", 1, 6).unwrap();
/// let info = binder.info("clipper->setup").unwrap();
/// assert_eq!(info.latency, 6);
/// assert_eq!(binder.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct SignalBinder {
    signals: BTreeMap<String, SignalInfo>,
    /// Type-erased handles onto the live wires, kept for post-mortem
    /// reporting and fault isolation.
    probes: BTreeMap<String, SignalProbe>,
    /// Next dense [`SignalName`] id, assigned in registration order.
    next_id: u32,
}

impl SignalBinder {
    /// Creates an empty binder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a signal, registers its metadata under a unique name and
    /// returns the typed endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NameCollision`] if a signal with the same name
    /// was already registered.
    pub fn register<T: fmt::Debug + 'static>(
        &mut self,
        name: &str,
        from_box: &str,
        to_box: &str,
        bandwidth: usize,
        latency: Cycle,
    ) -> Result<(SignalWriter<T>, SignalReader<T>), SimError> {
        if self.signals.contains_key(name) {
            return Err(SimError::NameCollision(name.to_string()));
        }
        self.signals.insert(
            name.to_string(),
            SignalInfo {
                name: name.to_string(),
                from_box: from_box.to_string(),
                to_box: to_box.to_string(),
                bandwidth,
                latency,
            },
        );
        // Intern the name with a dense id in registration order: the
        // pipeline is wired in a fixed sequence, so ids are deterministic
        // for a given configuration.
        let interned = SignalName::interned(name, self.next_id);
        self.next_id += 1;
        let (writer, reader) = Signal::with_name(interned, bandwidth, latency);
        self.probes.insert(name.to_string(), writer.probe());
        Ok((writer, reader))
    }

    /// The live probe of a registered signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] if no signal has that name.
    pub fn probe(&self, name: &str) -> Result<&SignalProbe, SimError> {
        self.probes.get(name).ok_or_else(|| SimError::UnknownSignal(name.to_string()))
    }

    /// Degrades (or restores) a registered signal to best-effort delivery
    /// by name — the mechanism behind fault *isolation*: a wire that
    /// failed a verification check keeps flowing, dropping what it cannot
    /// carry, instead of taking the simulation down.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] if no signal has that name.
    pub fn set_lossy(&self, name: &str, lossy: bool) -> Result<(), SimError> {
        self.probe(name).map(|p| p.set_lossy(lossy))
    }

    /// Attaches a compiled fault schedule to a registered signal by name
    /// (see [`FaultInjector`](crate::FaultInjector)).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] if no signal has that name.
    pub fn attach_faults(
        &self,
        name: &str,
        hook: crate::fault::SignalFaultHandle,
    ) -> Result<(), SimError> {
        self.probe(name).map(|p| p.attach_faults(hook))
    }

    /// Snapshots the health counters of every registered signal, in name
    /// order — the signal section of a failure report.
    pub fn statuses(&self) -> Vec<SignalStatus> {
        self.probes.values().map(SignalProbe::status).collect()
    }

    /// The earliest delivery cycle across every registered signal's
    /// in-flight objects, if anything is in flight at all.
    ///
    /// This is the wire half of the event-horizon computation: an
    /// idle-aware scheduler may only jump the clock to a cycle no later
    /// than this, because every in-flight object (data *and* credit
    /// returns) must be readable at its exact arrival cycle.
    pub fn next_event_cycle(&self) -> Option<Cycle> {
        self.probes.values().filter_map(SignalProbe::next_arrival).min()
    }

    /// The latest delivery cycle across every registered signal's
    /// in-flight objects — the cycle by which all wires have drained.
    pub fn drain_cycle(&self) -> Option<Cycle> {
        self.probes.values().filter_map(SignalProbe::drain_cycle).max()
    }

    /// Snapshots every registered signal as a topology edge — metadata
    /// plus current in-flight occupancy — in name order. This is the raw
    /// material of the architecture verifier
    /// ([`Topology`](crate::lint::Topology)).
    pub fn edges(&self) -> Vec<crate::lint::SignalEdge> {
        self.signals
            .values()
            .map(|info| {
                let (in_flight, next_arrival) = match self.probes.get(&info.name) {
                    Some(p) => (p.status().in_flight, p.next_arrival()),
                    None => (0, None),
                };
                crate::lint::SignalEdge { info: info.clone(), in_flight, next_arrival }
            })
            .collect()
    }

    /// Looks up the metadata of a registered signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] if no signal has that name.
    pub fn info(&self, name: &str) -> Result<&SignalInfo, SimError> {
        self.signals.get(name).ok_or_else(|| SimError::UnknownSignal(name.to_string()))
    }

    /// Iterates over all registered signals in name order.
    pub fn iter(&self) -> impl Iterator<Item = &SignalInfo> {
        self.signals.values()
    }

    /// All signals attached (as producer or consumer) to `box_name` — the
    /// box's *interface* in the paper's sense.
    pub fn interface_of<'a>(&'a self, box_name: &'a str) -> impl Iterator<Item = &'a SignalInfo> {
        self.signals.values().filter(move |s| s.from_box == box_name || s.to_box == box_name)
    }

    /// Number of registered signals.
    pub fn len(&self) -> usize {
        self.signals.len()
    }

    /// Whether the binder has no registered signals.
    pub fn is_empty(&self) -> bool {
        self.signals.is_empty()
    }

    /// Renders a human-readable interface summary (one line per signal),
    /// useful in debug dumps and documentation of configured pipelines.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for s in self.signals.values() {
            out.push_str(&format!(
                "{:<36} {} -> {} bw={} lat={}\n",
                s.name, s.from_box, s.to_box, s.bandwidth, s.latency
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut b = SignalBinder::new();
        b.register::<u8>("a->b", "A", "B", 2, 4).unwrap();
        let info = b.info("a->b").unwrap();
        assert_eq!(info.from_box, "A");
        assert_eq!(info.to_box, "B");
        assert_eq!(info.bandwidth, 2);
        assert_eq!(info.latency, 4);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut b = SignalBinder::new();
        b.register::<u8>("x", "A", "B", 1, 1).unwrap();
        let err = b.register::<u8>("x", "C", "D", 1, 1).unwrap_err();
        assert_eq!(err, SimError::NameCollision("x".into()));
    }

    #[test]
    fn unknown_lookup_errors() {
        let b = SignalBinder::new();
        assert_eq!(b.info("nope").unwrap_err(), SimError::UnknownSignal("nope".into()));
    }

    #[test]
    fn interface_of_collects_both_directions() {
        let mut b = SignalBinder::new();
        b.register::<u8>("a->b", "A", "B", 1, 1).unwrap();
        b.register::<u8>("b->c", "B", "C", 1, 1).unwrap();
        b.register::<u8>("c->a", "C", "A", 1, 1).unwrap();
        let names: Vec<_> = b.interface_of("B").map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a->b", "b->c"]);
    }

    #[test]
    fn registered_endpoints_work() {
        let mut b = SignalBinder::new();
        let (mut tx, mut rx) = b.register::<u32>("w", "A", "B", 1, 2).unwrap();
        tx.write(0, 5).unwrap();
        assert_eq!(rx.read(2), Some(5));
    }

    #[test]
    fn next_event_cycle_is_earliest_across_all_wires() {
        let mut b = SignalBinder::new();
        let (mut tx1, mut rx1) = b.register::<u32>("slow", "A", "B", 1, 10).unwrap();
        let (mut tx2, _rx2) = b.register::<u32>("fast", "B", "C", 1, 2).unwrap();
        assert_eq!(b.next_event_cycle(), None);
        assert_eq!(b.drain_cycle(), None);
        tx1.write(0, 1).unwrap(); // arrives at 10
        tx2.write(0, 2).unwrap(); // arrives at 2
        assert_eq!(b.next_event_cycle(), Some(2), "min over every wire");
        assert_eq!(b.drain_cycle(), Some(10), "max over every wire");
        assert_eq!(rx1.read(10), Some(1));
        assert_eq!(b.next_event_cycle(), Some(2), "fast wire still in flight");
    }

    #[test]
    fn describe_mentions_every_signal() {
        let mut b = SignalBinder::new();
        b.register::<u8>("alpha", "A", "B", 1, 1).unwrap();
        b.register::<u8>("beta", "B", "C", 8, 3).unwrap();
        let d = b.describe();
        assert!(d.contains("alpha") && d.contains("beta"));
        assert!(d.contains("bw=8") && d.contains("lat=3"));
    }
}
