//! Signals: latency- and bandwidth-checked wires between boxes.
//!
//! A [`Signal`] models a physical bundle of wires (possibly pipelined over
//! several stages): an object written at cycle *c* becomes visible to the
//! reader at exactly cycle *c + latency*, and at most *bandwidth* objects
//! may be written per cycle. Because latency and bandwidth are properties
//! of the wire, not of the boxes, modelling (and *checking*) communication
//! delays and pipeline stages is straightforward — exactly the argument the
//! ATTILA paper makes for this simulation model.
//!
//! Signals are also used to simulate the latency of multistage units that
//! do not require a more precise model (e.g. multistage ALUs): the
//! producing box decides the computation latency and writes the result into
//! an intra-box signal with that latency.
//!
//! # Verification
//!
//! Following the paper, a signal performs verification checks that abort
//! the simulation (or surface a [`SimError`]):
//!
//! * writing more than `bandwidth` objects in one cycle;
//! * an object reaching the reader's end and never being read before the
//!   clock moves past its arrival cycle (data loss) — unless the signal is
//!   explicitly marked [lossy](SignalWriter::set_lossy);
//! * writing for a cycle earlier than one already observed.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use crate::error::SimError;
use crate::fault::{SignalFaultHandle, SignalFaultKind};
use crate::name::SignalName;
use crate::trace::{TraceEvent, TraceSink};
use crate::Cycle;

/// Upper bound on the preallocated ring, so a pathological
/// `latency × bandwidth` product cannot balloon memory; traffic beyond it
/// overflows into the growable spill queue.
const RING_SLOTS_MAX: usize = 4096;

/// Fixed-capacity FIFO holding a signal's in-flight objects, sized once at
/// bind time to `(latency + 1) × bandwidth` slots — the most a healthy wire
/// can ever hold (`bandwidth` writes per cycle, each resident for `latency`
/// cycles plus the arrival cycle itself).
///
/// Steady-state pushes and pops touch only the preallocated slot array: no
/// allocation, no pointer chasing. Only an injected delay fault can extend
/// an object's residence past that bound; such writes overflow into a
/// growable spill queue, logically ordered *after* every ring slot. FIFO
/// (write) order is preserved by routing every push to the spill while it
/// is non-empty.
struct Ring<T> {
    /// The circular buffer itself. `VecDeque` is a power-of-two ring
    /// buffer; preallocating [`ring_capacity`] slots at bind time means a
    /// healthy wire can never outgrow it, so steady-state pushes and pops
    /// never allocate. Only an injected delay fault can extend an object's
    /// residence past `latency` and push occupancy over the preallocated
    /// capacity; that one growth step is the "spill" path.
    q: VecDeque<(Cycle, T)>,
    /// Arrival of the most recent push, valid while non-empty: the back of
    /// the queue without re-reading its slot.
    back_arrival: Cycle,
    /// `false` once an arrival was pushed behind a later one (delay
    /// faults); while `true`, min/max arrival are the front/back in O(1).
    sorted: bool,
}

impl<T> Ring<T> {
    fn with_capacity(slots: usize) -> Self {
        Ring { q: VecDeque::with_capacity(slots.max(1)), back_arrival: 0, sorted: true }
    }

    fn len(&self) -> usize {
        self.q.len()
    }

    fn front(&self) -> Option<&(Cycle, T)> {
        self.q.front()
    }

    fn push_back(&mut self, arrival: Cycle, obj: T) {
        if !self.q.is_empty() && arrival < self.back_arrival {
            self.sorted = false;
        }
        self.back_arrival = arrival;
        self.q.push_back((arrival, obj));
    }

    fn pop_front(&mut self) -> Option<(Cycle, T)> {
        let popped = self.q.pop_front();
        if self.q.is_empty() {
            self.sorted = true;
        }
        popped
    }

    fn iter(&self) -> impl Iterator<Item = &(Cycle, T)> {
        self.q.iter()
    }

    /// The earliest arrival among in-flight objects: O(1) while arrivals
    /// are monotone (every un-faulted wire), a scan otherwise.
    fn min_arrival(&self) -> Option<Cycle> {
        if self.sorted {
            self.front().map(|(arrival, _)| *arrival)
        } else {
            self.iter().map(|(arrival, _)| *arrival).min()
        }
    }

    /// The latest arrival among in-flight objects (see [`min_arrival`](Self::min_arrival)).
    fn max_arrival(&self) -> Option<Cycle> {
        if self.q.is_empty() {
            None
        } else if self.sorted {
            Some(self.back_arrival)
        } else {
            self.iter().map(|(arrival, _)| *arrival).max()
        }
    }
}

/// Ring capacity for a wire: `(latency + 1) × bandwidth`, clamped to
/// [`RING_SLOTS_MAX`]. `VecDeque` rounds the allocation up to a power of
/// two internally, so index arithmetic wraps with a mask, never a
/// division.
fn ring_capacity(bandwidth: usize, latency: Cycle) -> usize {
    let per_cycle = bandwidth.max(1) as u64;
    latency
        .saturating_add(1)
        .saturating_mul(per_cycle)
        .clamp(1, RING_SLOTS_MAX as u64) as usize
}

/// Shared state of a signal.
struct SignalCore<T> {
    name: SignalName,
    bandwidth: usize,
    latency: Cycle,
    /// Objects in flight, in write order (arrival order unless faulted).
    in_flight: Ring<T>,
    /// Latest cycle observed by either endpoint.
    latest_cycle: Cycle,
    /// Number of writes performed at `latest_cycle`.
    writes_this_cycle: usize,
    /// When `true`, the signal degrades instead of failing verification:
    /// unread, late or over-bandwidth objects are dropped (and counted)
    /// rather than aborting the simulation.
    lossy: bool,
    total_written: u64,
    total_read: u64,
    total_lost: u64,
    trace: Option<TraceSink>,
    /// Injected fault schedule, consulted on every write when armed.
    faults: Option<SignalFaultHandle>,
}

impl<T: fmt::Debug> SignalCore<T> {
    /// Advances the internal notion of time, detecting data loss.
    fn observe_cycle(&mut self, cycle: Cycle) -> Result<(), SimError> {
        if cycle > self.latest_cycle {
            self.latest_cycle = cycle;
            self.writes_this_cycle = 0;
        }
        // Objects whose arrival cycle is already in the past can never be
        // read again: they have fallen off the wire.
        let mut lost = 0usize;
        while let Some((arrival, _)) = self.in_flight.front() {
            if *arrival < cycle {
                self.in_flight.pop_front();
                lost += 1;
            } else {
                break;
            }
        }
        if lost > 0 {
            self.total_lost += lost as u64;
            if !self.lossy {
                return Err(SimError::DataLost { signal: self.name.clone(), cycle, lost });
            }
        }
        Ok(())
    }

    fn write(&mut self, cycle: Cycle, obj: T) -> Result<(), SimError> {
        // Consult the fault schedule first: a fault may shift this write in
        // time, drop it, or double-latch it.
        let fault = match &self.faults {
            Some(hook) => hook.borrow_mut().next_write(),
            None => None,
        };
        let mut cycle = cycle;
        let mut extra_latency: Cycle = 0;
        let mut dropped = false;
        let mut slots = 1;
        match fault {
            Some(SignalFaultKind::Drop) => dropped = true,
            Some(SignalFaultKind::Delay(d)) if d >= 0 => extra_latency = d as Cycle,
            Some(SignalFaultKind::Delay(d)) => cycle = cycle.saturating_sub(d.unsigned_abs()),
            Some(SignalFaultKind::Duplicate) => slots = 2,
            None => {}
        }
        if cycle < self.latest_cycle {
            if self.lossy {
                // Degraded wire: a write in the past cannot be latched;
                // drop it instead of failing verification.
                self.total_lost += 1;
                return Ok(());
            }
            return Err(SimError::TimeTravel {
                signal: self.name.clone(),
                cycle,
                latest: self.latest_cycle,
            });
        }
        self.observe_cycle(cycle)?;
        if self.writes_this_cycle + slots > self.bandwidth {
            if self.lossy {
                // Degraded wire: excess objects fall on the floor.
                self.writes_this_cycle = self.bandwidth;
                self.total_lost += 1;
                return Ok(());
            }
            return Err(SimError::BandwidthExceeded {
                signal: self.name.clone(),
                cycle,
                bandwidth: self.bandwidth,
            });
        }
        self.writes_this_cycle += slots;
        if dropped {
            // The latch clocked (its bandwidth slot is spent) but the value
            // never entered the wire.
            self.total_lost += 1;
            return Ok(());
        }
        self.total_written += 1;
        let arrival = cycle + self.latency + extra_latency;
        if let Some(trace) = &self.trace {
            trace.borrow_mut().push(TraceEvent {
                cycle: arrival,
                signal: self.name.clone(),
                info: {
                    let mut s = format!("{obj:?}");
                    s.truncate(120);
                    s
                },
            });
        }
        self.in_flight.push_back(arrival, obj);
        Ok(())
    }

    /// The earliest delivery cycle among in-flight objects, if any.
    ///
    /// Objects are appended in write order and the latency is fixed, so the
    /// ring is normally sorted by arrival (O(1) minimum); an injected delay
    /// fault can perturb that, falling back to a scan.
    fn next_arrival(&self) -> Option<Cycle> {
        self.in_flight.min_arrival()
    }

    /// The latest delivery cycle among in-flight objects — the cycle by
    /// which the wire has fully drained, if anything is in flight.
    fn drain_cycle(&self) -> Option<Cycle> {
        self.in_flight.max_arrival()
    }

    fn read(&mut self, cycle: Cycle) -> Result<Option<T>, SimError> {
        // Reading never moves `latest_cycle` backwards, and reading at a
        // cycle older than data already dropped is harmless.
        if cycle >= self.latest_cycle {
            self.observe_cycle(cycle)?;
        }
        match self.in_flight.front() {
            Some((arrival, _)) if *arrival == cycle => match self.in_flight.pop_front() {
                Some((_, obj)) => {
                    self.total_read += 1;
                    Ok(Some(obj))
                }
                None => Ok(None),
            },
            _ => Ok(None),
        }
    }
}

/// Staged (mailbox) writing state of a [`SignalWriter`], used by the
/// multi-threaded clock loop.
///
/// When a wire crosses a clock-domain (thread) boundary, the writer stops
/// touching the shared [`SignalCore`] during the parallel phase of a cycle
/// — the core is owned by the *reader's* thread then — and instead latches
/// writes into this private, preallocated mailbox. The scheduler drains
/// every mailbox into its core between barrier epochs, in fixed wiring
/// order, via the matching [`DrainStaged`] handle.
///
/// The lane performs the same verification the core would (strict
/// time-travel and bandwidth checks against the declared parameters), so a
/// buggy box fails identically under serial and threaded clocking. Lossy
/// degradation, traces and fault schedules are core-side features; the
/// scheduler only enables staging on strict, untraced, unfaulted wires and
/// flips `enabled` off (routing writes back to the core) the moment any of
/// those are armed.
struct StagedLane<T> {
    /// Pending writes, `(write cycle, object)` in write order. Shared with
    /// the [`StagedDrain`] handle; only the writer's thread touches it
    /// during a parallel phase, only the coordinator between epochs.
    mailbox: Rc<RefCell<VecDeque<(Cycle, T)>>>,
    /// Master switch, shared with the scheduler: `false` routes writes
    /// straight to the core (exact serial transport).
    enabled: Rc<Cell<bool>>,
    /// Mirror of the core's `total_written`, shared with the drain handle
    /// so it can be resynced after a checkpoint restore. Kept by the lane
    /// so `total_written()` (used by boxes for sequence ids mid-cycle)
    /// never has to borrow the possibly-foreign core.
    total_written: Rc<Cell<u64>>,
    /// Latest write cycle this writer has latched (lane-local time).
    latest_cycle: Cycle,
    /// Writes latched at `latest_cycle`.
    writes_this_cycle: usize,
}

/// Coordinator-side handle that flushes one staged mailbox into its signal
/// core (see [`SignalWriter::stage`]). Type-erased so the scheduler can
/// hold one list for wires of every payload type.
pub trait DrainStaged {
    /// Moves every staged write into the signal core, preserving write
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates the core's verification result — a staged write replays
    /// exactly as if the writer had hit the core directly, so
    /// [`SimError::DataLost`] (the wire advanced past an unread arrival)
    /// or any other check surfaces here instead of at the write site.
    fn drain(&mut self) -> Result<(), SimError>;

    /// Re-seeds the lane's `total_written` mirror from the core, after a
    /// checkpoint restore overwrote the core's lifetime counters.
    fn resync(&mut self);
}

struct StagedDrain<T> {
    mailbox: Rc<RefCell<VecDeque<(Cycle, T)>>>,
    core: Rc<RefCell<SignalCore<T>>>,
    total_written: Rc<Cell<u64>>,
}

impl<T: fmt::Debug> DrainStaged for StagedDrain<T> {
    fn drain(&mut self) -> Result<(), SimError> {
        let mut mailbox = self.mailbox.borrow_mut();
        if mailbox.is_empty() {
            return Ok(());
        }
        let mut core = self.core.borrow_mut();
        while let Some((cycle, obj)) = mailbox.pop_front() {
            core.write(cycle, obj)?;
        }
        Ok(())
    }

    fn resync(&mut self) {
        self.total_written.set(self.core.borrow().total_written);
    }
}

/// A signal under construction; see [`Signal::with_name`].
///
/// `Signal` itself is a factory: creating one yields a connected
/// ([`SignalWriter`], [`SignalReader`]) pair. The two handles share the wire
/// state; the simulation is single-threaded so the sharing uses `Rc`.
#[derive(Debug)]
pub struct Signal<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: fmt::Debug> Signal<T> {
    /// Creates a named signal with the given `bandwidth` (objects per
    /// cycle) and `latency` (cycles) and returns its two endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is zero (a wire that can carry nothing is
    /// always a configuration bug).
    ///
    /// # Examples
    ///
    /// ```
    /// use attila_sim::Signal;
    /// let (mut tx, mut rx) = Signal::<&str>::with_name("clip->setup", 1, 6);
    /// tx.write(0, "triangle").unwrap();
    /// assert_eq!(rx.read(6), Some("triangle"));
    /// ```
    pub fn with_name(
        name: impl Into<SignalName>,
        bandwidth: usize,
        latency: Cycle,
    ) -> (SignalWriter<T>, SignalReader<T>) {
        assert!(bandwidth > 0, "signal bandwidth must be at least 1 object/cycle");
        let name = name.into();
        let core = Rc::new(RefCell::new(SignalCore {
            name: name.clone(),
            bandwidth,
            latency,
            in_flight: Ring::with_capacity(ring_capacity(bandwidth, latency)),
            latest_cycle: 0,
            writes_this_cycle: 0,
            lossy: false,
            total_written: 0,
            total_read: 0,
            total_lost: 0,
            trace: None,
            faults: None,
        }));
        let writer = SignalWriter {
            core: Rc::clone(&core),
            staged: None,
            decl_bandwidth: bandwidth,
            decl_latency: latency,
            cached_name: name,
        };
        (writer, SignalReader { core })
    }
}

/// The producing endpoint of a [`Signal`].
pub struct SignalWriter<T> {
    core: Rc<RefCell<SignalCore<T>>>,
    /// Mailbox lane for cross-thread wires; `None` on every wire of a
    /// single-threaded simulator. Boxed so the serial hot path only pays
    /// one pointer of writer footprint for it. See [`StagedLane`].
    staged: Option<Box<StagedLane<T>>>,
    /// Declared bandwidth, cached at bind time (immutable in the core) so
    /// staged writers never borrow the core to check it.
    decl_bandwidth: usize,
    /// Declared latency, cached like `decl_bandwidth`.
    decl_latency: Cycle,
    /// Interned name, cached like `decl_bandwidth` (clone = refcount bump).
    cached_name: SignalName,
}

impl<T: fmt::Debug> SignalWriter<T> {
    /// Writes `obj` into the wire at `cycle`; it will arrive at
    /// `cycle + latency`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BandwidthExceeded`] if more than `bandwidth`
    /// objects were already written this cycle, [`SimError::TimeTravel`] if
    /// `cycle` is in the past, or [`SimError::DataLost`] if advancing the
    /// clock exposes unread data on a non-lossy signal.
    #[inline]
    pub fn write(&mut self, cycle: Cycle, obj: T) -> Result<(), SimError> {
        // The staged branch is out-of-line so a single-threaded machine's
        // write (the simulator's hottest function) keeps its pre-staging
        // code size and inlines as before.
        if self.staged.is_some() {
            return self.write_slow(cycle, obj);
        }
        self.core.borrow_mut().write(cycle, obj)
    }

    /// Out-of-line write for wires that carry a mailbox lane: verify
    /// against the declared parameters and latch into the mailbox; the
    /// core (owned by the reader's thread mid-cycle) is updated at the
    /// next barrier drain. With the lane disabled, falls through to the
    /// exact serial transport.
    #[cold]
    fn write_slow(&mut self, cycle: Cycle, obj: T) -> Result<(), SimError> {
        if let Some(lane) = &mut self.staged {
            if lane.enabled.get() {
                if cycle < lane.latest_cycle {
                    return Err(SimError::TimeTravel {
                        signal: self.cached_name.clone(),
                        cycle,
                        latest: lane.latest_cycle,
                    });
                }
                if cycle > lane.latest_cycle {
                    lane.latest_cycle = cycle;
                    lane.writes_this_cycle = 0;
                }
                if lane.writes_this_cycle >= self.decl_bandwidth {
                    return Err(SimError::BandwidthExceeded {
                        signal: self.cached_name.clone(),
                        cycle,
                        bandwidth: self.decl_bandwidth,
                    });
                }
                lane.writes_this_cycle += 1;
                lane.total_written.set(lane.total_written.get() + 1);
                lane.mailbox.borrow_mut().push_back((cycle, obj));
                return Ok(());
            }
        }
        self.core.borrow_mut().write(cycle, obj)
    }

    /// Puts this writer into staged (mailbox) mode for cross-thread use and
    /// returns the coordinator-side handle that drains the mailbox into the
    /// core at each barrier.
    ///
    /// While `enabled` reads `true`, writes latch into a private mailbox
    /// instead of the shared core, and the bookkeeping getters
    /// ([`can_write`](Self::can_write), [`slots_left`](Self::slots_left),
    /// [`total_written`](Self::total_written)) answer from lane-local
    /// mirrors — the writer never borrows the core, which mid-cycle belongs
    /// to the reader's thread. Flipping `enabled` to `false` (only ever
    /// done between cycles, with the mailbox drained) routes everything
    /// back through the core, byte-for-byte the serial transport.
    pub fn stage(&mut self, enabled: Rc<Cell<bool>>) -> Box<dyn DrainStaged>
    where
        T: 'static,
    {
        let total_written = Rc::new(Cell::new(self.core.borrow().total_written));
        // A healthy wire stages at most `bandwidth` writes per cycle and is
        // drained every cycle; preallocate double that so the mailbox never
        // grows on the hot path.
        let mailbox: Rc<RefCell<VecDeque<(Cycle, T)>>> =
            Rc::new(RefCell::new(VecDeque::with_capacity(self.decl_bandwidth.max(1) * 2)));
        self.staged = Some(Box::new(StagedLane {
            mailbox: Rc::clone(&mailbox),
            enabled,
            total_written: Rc::clone(&total_written),
            latest_cycle: 0,
            writes_this_cycle: 0,
        }));
        Box::new(StagedDrain { mailbox, core: Rc::clone(&self.core), total_written })
    }

    /// Like [`write`](Self::write) but panics on verification failure.
    ///
    /// Failing a signal check means the timing model itself is buggy, so
    /// most boxes use this form — matching the paper's "checks that may
    /// terminate the simulator".
    ///
    /// # Panics
    ///
    /// Panics with the [`SimError`] display message on any verification
    /// failure.
    pub fn send(&mut self, cycle: Cycle, obj: T) {
        if let Err(e) = self.write(cycle, obj) {
            panic!("signal verification failed: {e}");
        }
    }

    /// Returns `true` if at least one more object can be written at
    /// `cycle` without exceeding the bandwidth.
    #[inline]
    pub fn can_write(&self, cycle: Cycle) -> bool {
        if let Some(lane) = &self.staged {
            if lane.enabled.get() {
                return cycle > lane.latest_cycle || lane.writes_this_cycle < self.decl_bandwidth;
            }
        }
        let core = self.core.borrow();
        if cycle > core.latest_cycle {
            true
        } else {
            core.writes_this_cycle < core.bandwidth
        }
    }

    /// Remaining write slots at `cycle`.
    #[inline]
    pub fn slots_left(&self, cycle: Cycle) -> usize {
        if let Some(lane) = &self.staged {
            if lane.enabled.get() {
                return if cycle > lane.latest_cycle {
                    self.decl_bandwidth
                } else {
                    self.decl_bandwidth - lane.writes_this_cycle.min(self.decl_bandwidth)
                };
            }
        }
        let core = self.core.borrow();
        if cycle > core.latest_cycle {
            core.bandwidth
        } else {
            core.bandwidth - core.writes_this_cycle.min(core.bandwidth)
        }
    }

    /// Marks the signal as lossy: unread objects are dropped and counted
    /// instead of aborting the simulation. Used for purely informational
    /// wires (e.g. performance-counter broadcasts).
    pub fn set_lossy(&mut self, lossy: bool) {
        self.core.borrow_mut().lossy = lossy;
    }

    /// Attaches a trace sink; every written object is recorded (with its
    /// arrival cycle) for the Signal Trace Visualizer.
    pub fn attach_trace(&mut self, sink: TraceSink) {
        self.core.borrow_mut().trace = Some(sink);
    }

    /// Attaches a compiled fault schedule (see
    /// [`FaultInjector`](crate::FaultInjector)); every subsequent write
    /// consults it.
    pub fn attach_faults(&mut self, hook: SignalFaultHandle) {
        self.core.borrow_mut().faults = Some(hook);
    }

    /// The signal's configured bandwidth in objects per cycle.
    pub fn bandwidth(&self) -> usize {
        self.decl_bandwidth
    }

    /// The signal's configured latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.decl_latency
    }

    /// Total number of objects ever written (staged writes included the
    /// moment they are latched, so mid-cycle sequence numbering is
    /// identical under serial and threaded clocking).
    #[inline]
    pub fn total_written(&self) -> u64 {
        if let Some(lane) = &self.staged {
            if lane.enabled.get() {
                return lane.total_written.get();
            }
        }
        self.core.borrow().total_written
    }

    /// The latest in-flight write's delivery cycle, if any — the cycle by
    /// which everything this writer has sent will have arrived.
    pub fn drain_cycle(&self) -> Option<Cycle> {
        self.core.borrow().drain_cycle()
    }

    /// The signal's registered name (an interned handle: cached on the
    /// endpoint, so this never borrows the shared core).
    pub fn name(&self) -> SignalName {
        self.cached_name.clone()
    }

    /// A type-erased handle onto this signal's shared state, used by the
    /// [`SignalBinder`](crate::SignalBinder) for post-mortem reporting and
    /// for degrading a signal to lossy by name.
    pub fn probe(&self) -> SignalProbe
    where
        T: 'static,
    {
        SignalProbe { ops: Rc::clone(&self.core) as Rc<dyn ProbeOps> }
    }
}

/// A point-in-time snapshot of one signal's health counters, collected
/// into failure reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalStatus {
    /// The signal's registered name.
    pub name: SignalName,
    /// Objects currently travelling through the wire.
    pub in_flight: usize,
    /// Total objects ever written.
    pub written: u64,
    /// Total objects ever read.
    pub read: u64,
    /// Total objects dropped (late, over-bandwidth on a lossy wire, or
    /// destroyed by an injected fault).
    pub lost: u64,
    /// Whether the signal is degraded to best-effort delivery.
    pub lossy: bool,
}

/// Type-erased operations every signal exposes for introspection.
trait ProbeOps {
    fn name(&self) -> SignalName;
    fn status(&self) -> SignalStatus;
    fn set_lossy(&self, lossy: bool);
    fn attach_faults(&self, hook: SignalFaultHandle);
    fn next_arrival(&self) -> Option<Cycle>;
    fn drain_cycle(&self) -> Option<Cycle>;
    fn restore_counters(&self, written: u64, read: u64, lost: u64);
}

impl<T: fmt::Debug> ProbeOps for RefCell<SignalCore<T>> {
    fn name(&self) -> SignalName {
        self.borrow().name.clone()
    }

    fn status(&self) -> SignalStatus {
        let core = self.borrow();
        SignalStatus {
            name: core.name.clone(),
            in_flight: core.in_flight.len(),
            written: core.total_written,
            read: core.total_read,
            lost: core.total_lost,
            lossy: core.lossy,
        }
    }

    fn set_lossy(&self, lossy: bool) {
        self.borrow_mut().lossy = lossy;
    }

    fn attach_faults(&self, hook: SignalFaultHandle) {
        self.borrow_mut().faults = Some(hook);
    }

    fn next_arrival(&self) -> Option<Cycle> {
        self.borrow().next_arrival()
    }

    fn drain_cycle(&self) -> Option<Cycle> {
        self.borrow().drain_cycle()
    }

    fn restore_counters(&self, written: u64, read: u64, lost: u64) {
        let mut core = self.borrow_mut();
        core.total_written = written;
        core.total_read = read;
        core.total_lost = lost;
    }
}

/// A type-erased handle onto a signal's shared state (see
/// [`SignalWriter::probe`]). The binder keeps one per registered signal so
/// failure reports can snapshot every wire and fault isolation can degrade
/// a wire by name without knowing its payload type.
#[derive(Clone)]
pub struct SignalProbe {
    ops: Rc<dyn ProbeOps>,
}

impl SignalProbe {
    /// The probed signal's interned name (refcount bump, no allocation).
    pub fn name(&self) -> SignalName {
        self.ops.name()
    }

    /// Snapshots the signal's health counters.
    pub fn status(&self) -> SignalStatus {
        self.ops.status()
    }

    /// Degrades (or restores) the signal to best-effort delivery.
    pub fn set_lossy(&self, lossy: bool) {
        self.ops.set_lossy(lossy);
    }

    /// Attaches a compiled fault schedule to the underlying signal;
    /// every subsequent write consults it.
    pub fn attach_faults(&self, hook: SignalFaultHandle) {
        self.ops.attach_faults(hook);
    }

    /// The earliest delivery cycle among objects still travelling through
    /// the wire, if any — the signal's next scheduler-visible event. An
    /// idle-aware scheduler must never jump past this cycle: the reader
    /// drains the wire at exact arrival cycles, so skipping one would turn
    /// a healthy handoff into a data-loss verification failure.
    pub fn next_arrival(&self) -> Option<Cycle> {
        self.ops.next_arrival()
    }

    /// The latest in-flight write's delivery cycle — the cycle by which
    /// the wire has fully drained, if anything is in flight.
    pub fn drain_cycle(&self) -> Option<Cycle> {
        self.ops.drain_cycle()
    }

    /// Overwrites the signal's lifetime health counters with checkpointed
    /// values, so post-restore failure reports account for the whole run
    /// rather than just the resumed tail. Only safe on a drained wire.
    pub fn restore_counters(&self, written: u64, read: u64, lost: u64) {
        self.ops.restore_counters(written, read, lost);
    }
}

impl fmt::Debug for SignalProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SignalProbe").field("status", &self.status()).finish()
    }
}

impl<T> fmt::Debug for SignalWriter<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SignalWriter")
            .field("name", &self.cached_name)
            .field("bandwidth", &self.decl_bandwidth)
            .field("latency", &self.decl_latency)
            .field("staged", &self.staged.is_some())
            .finish()
    }
}

/// The consuming endpoint of a [`Signal`].
pub struct SignalReader<T> {
    core: Rc<RefCell<SignalCore<T>>>,
}

impl<T: fmt::Debug> SignalReader<T> {
    /// Reads the next object arriving exactly at `cycle`, if any.
    ///
    /// Call repeatedly in a loop to drain everything arriving this cycle
    /// (up to the signal bandwidth objects).
    ///
    /// # Panics
    ///
    /// Panics if advancing the clock exposes unread data on a non-lossy
    /// signal (a data-loss verification failure — a bug in the consuming
    /// box).
    pub fn read(&mut self, cycle: Cycle) -> Option<T> {
        match self.core.borrow_mut().read(cycle) {
            Ok(v) => v,
            Err(e) => panic!("signal verification failed: {e}"),
        }
    }

    /// Fallible form of [`read`](Self::read).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DataLost`] instead of panicking when unread data
    /// fell off a non-lossy wire.
    pub fn try_read(&mut self, cycle: Cycle) -> Result<Option<T>, SimError> {
        self.core.borrow_mut().read(cycle)
    }

    /// Drains every object arriving at `cycle` into a `Vec`.
    ///
    /// # Panics
    ///
    /// Like [`read`](Self::read), panics on a data-loss verification
    /// failure; fallible callers use [`try_read_all`](Self::try_read_all).
    pub fn read_all(&mut self, cycle: Cycle) -> Vec<T> {
        match self.try_read_all(cycle) {
            Ok(v) => v,
            Err(e) => panic!("signal verification failed: {e}"),
        }
    }

    /// Fallible form of [`read_all`](Self::read_all).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DataLost`] instead of panicking when unread data
    /// fell off a non-lossy wire.
    pub fn try_read_all(&mut self, cycle: Cycle) -> Result<Vec<T>, SimError> {
        let mut out = Vec::new();
        while let Some(v) = self.try_read(cycle)? {
            out.push(v);
        }
        Ok(out)
    }

    /// Returns `true` if an object is due to arrive exactly at `cycle`.
    pub fn has_data(&self, cycle: Cycle) -> bool {
        let core = self.core.borrow();
        core.in_flight.front().map(|(a, _)| *a == cycle).unwrap_or(false)
    }

    /// Number of objects currently travelling through the wire.
    pub fn in_flight(&self) -> usize {
        self.core.borrow().in_flight.len()
    }

    /// The earliest delivery cycle among in-flight objects, if any — when
    /// this reader next has something to read.
    pub fn next_arrival(&self) -> Option<Cycle> {
        self.core.borrow().next_arrival()
    }

    /// The latest in-flight write's delivery cycle, if any — the cycle by
    /// which the wire has fully drained.
    pub fn drain_cycle(&self) -> Option<Cycle> {
        self.core.borrow().drain_cycle()
    }

    /// Total number of objects ever read.
    pub fn total_read(&self) -> u64 {
        self.core.borrow().total_read
    }

    /// Total number of objects dropped (only non-zero on lossy signals,
    /// since a loss on a strict signal aborts the simulation).
    pub fn total_lost(&self) -> u64 {
        self.core.borrow().total_lost
    }

    /// The signal's registered name (an interned handle: cloning it out of
    /// the shared core bumps a refcount, no allocation).
    pub fn name(&self) -> SignalName {
        self.core.borrow().name.clone()
    }

    /// The signal's configured bandwidth in objects per cycle.
    pub fn bandwidth(&self) -> usize {
        self.core.borrow().bandwidth
    }

    /// The signal's configured latency in cycles.
    pub fn latency(&self) -> Cycle {
        self.core.borrow().latency
    }
}

impl<T> fmt::Debug for SignalReader<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let core = self.core.borrow();
        f.debug_struct("SignalReader")
            .field("name", &core.name)
            .field("in_flight", &core.in_flight.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_respected_exactly() {
        let (mut tx, mut rx) = Signal::<u32>::with_name("s", 1, 5);
        tx.write(10, 99).unwrap();
        assert_eq!(rx.read(14), None);
        assert_eq!(rx.read(15), Some(99));
        assert_eq!(rx.read(15), None);
    }

    #[test]
    fn zero_latency_signal_delivers_same_cycle() {
        let (mut tx, mut rx) = Signal::<u32>::with_name("s", 1, 0);
        tx.write(3, 7).unwrap();
        assert_eq!(rx.read(3), Some(7));
    }

    #[test]
    fn bandwidth_is_enforced() {
        let (mut tx, _rx) = Signal::<u32>::with_name("s", 2, 1);
        tx.write(0, 1).unwrap();
        assert!(tx.can_write(0));
        tx.write(0, 2).unwrap();
        assert!(!tx.can_write(0));
        let err = tx.write(0, 3).unwrap_err();
        assert!(matches!(err, SimError::BandwidthExceeded { bandwidth: 2, cycle: 0, .. }));
        // Next cycle the budget resets.
        assert!(tx.can_write(1));
        tx.write(1, 4).unwrap();
    }

    #[test]
    fn unread_data_is_detected_as_loss() {
        let (mut tx, mut rx) = Signal::<u32>::with_name("s", 1, 1);
        tx.write(0, 1).unwrap();
        // Data arrives at cycle 1, but the reader first looks at cycle 2.
        let err = rx.try_read(2).unwrap_err();
        assert!(matches!(err, SimError::DataLost { lost: 1, .. }));
    }

    #[test]
    fn lossy_signal_counts_instead_of_failing() {
        let (mut tx, mut rx) = Signal::<u32>::with_name("s", 1, 1);
        tx.set_lossy(true);
        tx.write(0, 1).unwrap();
        assert_eq!(rx.try_read(5).unwrap(), None);
        assert_eq!(rx.total_lost(), 1);
    }

    #[test]
    fn time_travel_is_rejected() {
        let (mut tx, _rx) = Signal::<u32>::with_name("s", 1, 1);
        tx.write(10, 1).unwrap();
        let err = tx.write(5, 2).unwrap_err();
        assert!(matches!(err, SimError::TimeTravel { cycle: 5, latest: 10, .. }));
    }

    #[test]
    fn fifo_order_is_preserved_within_bandwidth() {
        let (mut tx, mut rx) = Signal::<u32>::with_name("s", 4, 2);
        for v in 0..4 {
            tx.write(0, v).unwrap();
        }
        let got = rx.read_all(2);
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn next_arrival_and_drain_cycle_track_in_flight_events() {
        let (mut tx, mut rx) = Signal::<u32>::with_name("s", 2, 5);
        assert_eq!(rx.next_arrival(), None);
        assert_eq!(rx.drain_cycle(), None);
        tx.write(10, 1).unwrap();
        tx.write(12, 2).unwrap();
        // Arrivals land at 15 and 17: the earliest bounds any clock skip,
        // the latest is when the wire fully drains.
        assert_eq!(rx.next_arrival(), Some(15));
        assert_eq!(rx.drain_cycle(), Some(17));
        assert_eq!(tx.drain_cycle(), Some(17));
        assert_eq!(rx.read(15), Some(1));
        assert_eq!(rx.next_arrival(), Some(17));
        assert_eq!(rx.read(17), Some(2));
        assert_eq!(rx.next_arrival(), None);
    }

    #[test]
    fn counters_track_traffic() {
        let (mut tx, mut rx) = Signal::<u32>::with_name("s", 2, 1);
        tx.write(0, 1).unwrap();
        tx.write(0, 2).unwrap();
        rx.read_all(1);
        assert_eq!(tx.total_written(), 2);
        assert_eq!(rx.total_read(), 2);
        assert_eq!(rx.in_flight(), 0);
    }

    #[test]
    fn has_data_peeks_without_consuming() {
        let (mut tx, mut rx) = Signal::<u32>::with_name("s", 1, 3);
        tx.write(0, 9).unwrap();
        assert!(!rx.has_data(2));
        assert!(rx.has_data(3));
        assert_eq!(rx.read(3), Some(9));
    }

    #[test]
    #[should_panic(expected = "signal verification failed")]
    fn send_panics_on_bandwidth_violation() {
        let (mut tx, _rx) = Signal::<u32>::with_name("s", 1, 1);
        tx.send(0, 1);
        tx.send(0, 2);
    }

    #[test]
    fn slots_left_reports_remaining_budget() {
        let (mut tx, _rx) = Signal::<u32>::with_name("s", 3, 1);
        assert_eq!(tx.slots_left(0), 3);
        tx.write(0, 1).unwrap();
        assert_eq!(tx.slots_left(0), 2);
        assert_eq!(tx.slots_left(1), 3);
    }

    #[test]
    fn staged_writes_arrive_after_drain_with_serial_timing() {
        let (mut tx, mut rx) = Signal::<u32>::with_name("s", 2, 3);
        let enabled = Rc::new(Cell::new(true));
        let mut drain = tx.stage(Rc::clone(&enabled));
        tx.write(5, 7).unwrap();
        tx.write(5, 8).unwrap();
        // Latched but not yet on the wire: the reader sees nothing even at
        // the arrival cycle, and bookkeeping still counts the writes.
        assert_eq!(rx.in_flight(), 0);
        assert_eq!(tx.total_written(), 2);
        assert_eq!(tx.slots_left(5), 0);
        drain.drain().unwrap();
        assert_eq!(rx.in_flight(), 2);
        assert_eq!(rx.read(8), Some(7));
        assert_eq!(rx.read(8), Some(8));
    }

    #[test]
    fn staged_lane_enforces_bandwidth_and_time_travel() {
        let (mut tx, _rx) = Signal::<u32>::with_name("s", 1, 1);
        let enabled = Rc::new(Cell::new(true));
        let _drain = tx.stage(Rc::clone(&enabled));
        tx.write(4, 1).unwrap();
        let err = tx.write(4, 2).unwrap_err();
        assert!(matches!(err, SimError::BandwidthExceeded { bandwidth: 1, cycle: 4, .. }));
        let err = tx.write(3, 3).unwrap_err();
        assert!(matches!(err, SimError::TimeTravel { cycle: 3, latest: 4, .. }));
        assert!(!tx.can_write(4));
        assert!(tx.can_write(5));
    }

    #[test]
    fn disabled_lane_bypasses_to_core() {
        let (mut tx, mut rx) = Signal::<u32>::with_name("s", 1, 2);
        let enabled = Rc::new(Cell::new(false));
        let mut drain = tx.stage(Rc::clone(&enabled));
        tx.write(0, 42).unwrap();
        // Straight onto the wire, no drain needed; the mailbox stays empty.
        assert_eq!(rx.in_flight(), 1);
        drain.drain().unwrap();
        assert_eq!(rx.read(2), Some(42));
        assert_eq!(tx.total_written(), 1);
    }

    #[test]
    fn drain_surfaces_loss_exactly_like_a_direct_write() {
        let (mut tx, mut rx) = Signal::<u32>::with_name("s", 1, 1);
        let enabled = Rc::new(Cell::new(true));
        let mut drain = tx.stage(Rc::clone(&enabled));
        tx.write(0, 1).unwrap();
        drain.drain().unwrap();
        tx.write(5, 2).unwrap();
        // The cycle-0 object (arrival 1) was never read; replaying the
        // cycle-5 write at drain time trips the same DataLost check the
        // serial writer would have hit.
        let err = drain.drain().unwrap_err();
        assert!(matches!(err, SimError::DataLost { lost: 1, .. }));
        assert_eq!(rx.try_read(5).unwrap(), None);
    }

    #[test]
    fn resync_reseeds_the_written_mirror() {
        let (mut tx, _rx) = Signal::<u32>::with_name("s", 1, 1);
        let enabled = Rc::new(Cell::new(true));
        let mut drain = tx.stage(Rc::clone(&enabled));
        // A checkpoint restore rewrites the core's lifetime counters
        // behind the lane's back; resync() catches the mirror up.
        tx.probe().restore_counters(17, 12, 0);
        assert_eq!(tx.total_written(), 0);
        drain.resync();
        assert_eq!(tx.total_written(), 17);
        tx.write(9, 1).unwrap();
        assert_eq!(tx.total_written(), 18);
    }
}
