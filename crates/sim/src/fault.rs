//! Deterministic fault injection for chaos-testing the timing model.
//!
//! The ATTILA paper leans on signal verification checks (bandwidth
//! exceeded, data lost, time travel) as the simulator's correctness
//! defense — but nothing in a healthy model ever exercises them. This
//! module injects *controlled* hardware-style faults so the failure paths,
//! the [`SimError`] propagation and the post-mortem
//! reporting can be tested end to end:
//!
//! * **Drop** the Nth object written to a named signal (a latch losing a
//!   value — downstream units starve or hang);
//! * **Delay** a write by ±k cycles (clock jitter; a positive delay makes
//!   the object arrive late and surface as `DataLost` when it falls off
//!   the wire unread, a negative delay rewinds the write and surfaces as
//!   `TimeTravel`);
//! * **Duplicate** a write (a glitch double-latching the wire — consumes
//!   an extra bandwidth slot and surfaces as `BandwidthExceeded` on a
//!   saturated signal);
//! * **Flip a bit** in the Nth memory reply (a DRAM single-bit error);
//! * **Stall the memory controller** for K cycles (a refresh storm).
//!
//! A [`FaultInjector`] owns a list of [`FaultPlan`]s plus a seeded
//! [`TinyRng`]; plans may select their target write pseudo-randomly, and
//! the seed makes every such choice reproducible. The injector compiles
//! plans into per-signal hooks ([`SignalFaultHandle`]) installed with
//! [`SignalWriter::attach_faults`](crate::SignalWriter::attach_faults) and
//! a memory hook ([`MemFaultHandle`]) consumed by the memory controller.

use std::cell::RefCell;
use std::rc::Rc;

use crate::error::SimError;
use crate::rng::TinyRng;
use crate::Cycle;

/// Selects which write on a signal a fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultWrite {
    /// The Nth write (0-based) since the hook was installed.
    Nth(u64),
    /// A pseudo-random write index in `[lo, hi)`, resolved once from the
    /// injector's seeded RNG when the hook is compiled.
    Random {
        /// Lowest candidate write index.
        lo: u64,
        /// One past the highest candidate write index.
        hi: u64,
    },
}

/// One planned fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlan {
    /// Drop the selected write on `signal`: the object never enters the
    /// wire (its bandwidth slot is still consumed, as the latch clocked).
    Drop {
        /// Target signal name.
        signal: String,
        /// Which write to drop.
        write: FaultWrite,
    },
    /// Shift the selected write on `signal` by `delay` cycles. Positive
    /// delays make the object arrive late (surfacing as `DataLost` once
    /// it falls off a strict wire unread); negative delays rewind the
    /// write into the past (surfacing as `TimeTravel`).
    Delay {
        /// Target signal name.
        signal: String,
        /// Which write to delay.
        write: FaultWrite,
        /// Signed cycle shift.
        delay: i64,
    },
    /// Latch the selected write on `signal` twice, consuming an extra
    /// bandwidth slot (surfacing as `BandwidthExceeded` on a saturated
    /// wire).
    Duplicate {
        /// Target signal name.
        signal: String,
        /// Which write to duplicate.
        write: FaultWrite,
    },
    /// Flip `bit` (0-7) of the first byte addressed by the `reply`-th
    /// memory *read* reply, written through to the backing memory image —
    /// a hard single-bit DRAM error, silently corrupting rendering for
    /// every later read of that address.
    FlipBits {
        /// Which read reply (0-based) to corrupt.
        reply: u64,
        /// Bit index within the first data byte.
        bit: u32,
    },
    /// Freeze the memory controller for `cycles` cycles starting at `at`:
    /// it accepts no requests and serves no replies while stalled.
    StallMemory {
        /// First stalled cycle.
        at: Cycle,
        /// Stall duration in cycles.
        cycles: Cycle,
    },
}

impl FaultPlan {
    /// The signal this plan targets, if it is a signal-level fault.
    pub fn signal(&self) -> Option<&str> {
        match self {
            FaultPlan::Drop { signal, .. }
            | FaultPlan::Delay { signal, .. }
            | FaultPlan::Duplicate { signal, .. } => Some(signal),
            FaultPlan::FlipBits { .. } | FaultPlan::StallMemory { .. } => None,
        }
    }
}

/// The action a signal hook performs on one specific write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalFaultKind {
    /// Discard the object.
    Drop,
    /// Shift the write by the given signed cycle count.
    Delay(i64),
    /// Consume an extra bandwidth slot.
    Duplicate,
}

/// Compiled per-signal fault schedule, shared between the injector (which
/// reads the hit counters for reporting) and the signal (which consults it
/// on every write).
#[derive(Debug, Default)]
pub struct SignalFaults {
    /// Writes observed so far (the index the schedule is keyed on).
    write_index: u64,
    /// `(write index, action)` pairs, unordered.
    actions: Vec<(u64, SignalFaultKind)>,
    /// Number of faults actually delivered.
    hits: u64,
}

/// Shared handle to a [`SignalFaults`] schedule.
pub type SignalFaultHandle = Rc<RefCell<SignalFaults>>;

impl SignalFaults {
    /// Called by the signal on every write: advances the write index and
    /// returns the action scheduled for this write, if any.
    pub fn next_write(&mut self) -> Option<SignalFaultKind> {
        let idx = self.write_index;
        self.write_index += 1;
        let hit = self.actions.iter().find(|(at, _)| *at == idx).map(|(_, k)| *k);
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Number of faults delivered so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

/// Compiled memory-controller fault schedule.
#[derive(Debug, Default)]
pub struct MemFaults {
    /// `(start, len)` stall windows.
    stalls: Vec<(Cycle, Cycle)>,
    /// `(reply index, bit)` single-bit flips.
    flips: Vec<(u64, u32)>,
    replies_seen: u64,
    stall_cycles_served: u64,
    bits_flipped: u64,
}

/// Shared handle to a [`MemFaults`] schedule.
pub type MemFaultHandle = Rc<RefCell<MemFaults>>;

impl MemFaults {
    /// Whether the controller is frozen at `cycle` (counts served stall
    /// cycles as a side effect).
    pub fn stalled(&mut self, cycle: Cycle) -> bool {
        let hit = self.stalls.iter().any(|(at, len)| cycle >= *at && cycle < at + len);
        if hit {
            self.stall_cycles_served += 1;
        }
        hit
    }

    /// Called by the controller for every *read* reply it produces;
    /// returns the bit index (0-7) to flip in the reply's first byte when
    /// this reply is targeted. The controller applies the flip both to the
    /// reply data and to the backing memory image — a hard DRAM cell
    /// error, visible to every later functional read of that address.
    ///
    /// Only read replies count towards the index, so `reply`
    /// deterministically targets the Nth read regardless of how many
    /// write acknowledgements are interleaved.
    pub fn next_read_flip(&mut self) -> Option<u32> {
        let idx = self.replies_seen;
        self.replies_seen += 1;
        let (_, bit) = self.flips.iter().find(|(at, _)| *at == idx)?;
        self.bits_flipped += 1;
        Some(bit % 8)
    }

    /// Stall cycles actually imposed so far.
    pub fn stall_cycles_served(&self) -> u64 {
        self.stall_cycles_served
    }

    /// Bits actually flipped so far.
    pub fn bits_flipped(&self) -> u64 {
        self.bits_flipped
    }

    /// Whether any fault is scheduled.
    pub fn is_armed(&self) -> bool {
        !self.stalls.is_empty() || !self.flips.is_empty()
    }
}

/// A deterministic, seeded fault injector.
///
/// # Examples
///
/// ```
/// use attila_sim::{FaultInjector, FaultPlan, Signal};
/// use attila_sim::fault::FaultWrite;
///
/// let mut inj = FaultInjector::new(0xC0FFEE);
/// inj.add(FaultPlan::Drop { signal: "a->b".into(), write: FaultWrite::Nth(1) });
/// let (mut tx, mut rx) = Signal::<u32>::with_name("a->b", 1, 1);
/// tx.attach_faults(inj.signal_hook("a->b").unwrap());
/// tx.write(0, 10).unwrap();
/// assert_eq!(rx.read(1), Some(10));
/// tx.write(1, 11).unwrap(); // dropped by the fault
/// assert_eq!(rx.read(2), None); // the dropped write never arrives
/// tx.write(2, 12).unwrap();
/// assert_eq!(rx.read(3), Some(12));
/// ```
#[derive(Debug)]
pub struct FaultInjector {
    seed: u64,
    rng: TinyRng,
    plans: Vec<FaultPlan>,
    hooks: Vec<(String, SignalFaultHandle)>,
    mem: Option<MemFaultHandle>,
}

impl FaultInjector {
    /// Creates an injector with no plans; `seed` drives every
    /// [`FaultWrite::Random`] resolution.
    pub fn new(seed: u64) -> Self {
        FaultInjector { seed, rng: TinyRng::new(seed), plans: Vec::new(), hooks: Vec::new(), mem: None }
    }

    /// Schedules a fault.
    pub fn add(&mut self, plan: FaultPlan) {
        self.plans.push(plan);
    }

    /// Builder form of [`add`](Self::add).
    #[must_use]
    pub fn with(mut self, plan: FaultPlan) -> Self {
        self.add(plan);
        self
    }

    /// The seed this injector was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled plans.
    pub fn plans(&self) -> &[FaultPlan] {
        &self.plans
    }

    fn resolve(&mut self, write: FaultWrite) -> u64 {
        match write {
            FaultWrite::Nth(n) => n,
            FaultWrite::Random { lo, hi } => self.rng.range_u64(lo, hi),
        }
    }

    /// Compiles the plans targeting `signal` into a hook, or `None` when no
    /// plan mentions it. Hooks are cached: asking twice for the same signal
    /// returns the same schedule (random targets resolve only once).
    pub fn signal_hook(&mut self, signal: &str) -> Option<SignalFaultHandle> {
        if let Some((_, h)) = self.hooks.iter().find(|(name, _)| name == signal) {
            return Some(Rc::clone(h));
        }
        let mut actions = Vec::new();
        let plans = self.plans.clone();
        for plan in &plans {
            if plan.signal() != Some(signal) {
                continue;
            }
            match plan {
                FaultPlan::Drop { write, .. } => {
                    let at = self.resolve(*write);
                    actions.push((at, SignalFaultKind::Drop));
                }
                FaultPlan::Delay { write, delay, .. } => {
                    let at = self.resolve(*write);
                    actions.push((at, SignalFaultKind::Delay(*delay)));
                }
                FaultPlan::Duplicate { write, .. } => {
                    let at = self.resolve(*write);
                    actions.push((at, SignalFaultKind::Duplicate));
                }
                FaultPlan::FlipBits { .. } | FaultPlan::StallMemory { .. } => {}
            }
        }
        if actions.is_empty() {
            return None;
        }
        let handle = Rc::new(RefCell::new(SignalFaults { write_index: 0, actions, hits: 0 }));
        self.hooks.push((signal.to_string(), Rc::clone(&handle)));
        Some(handle)
    }

    /// Compiles the memory-level plans into a hook, or `None` when no plan
    /// targets the memory controller. Cached like [`signal_hook`].
    ///
    /// [`signal_hook`]: Self::signal_hook
    pub fn mem_hook(&mut self) -> Option<MemFaultHandle> {
        if let Some(h) = &self.mem {
            return Some(Rc::clone(h));
        }
        let mut faults = MemFaults::default();
        for plan in &self.plans {
            match plan {
                FaultPlan::StallMemory { at, cycles } => faults.stalls.push((*at, *cycles)),
                FaultPlan::FlipBits { reply, bit } => faults.flips.push((*reply, *bit)),
                _ => {}
            }
        }
        if !faults.is_armed() {
            return None;
        }
        let handle = Rc::new(RefCell::new(faults));
        self.mem = Some(Rc::clone(&handle));
        Some(handle)
    }

    /// Captures the injector's mutable state — RNG position, per-hook
    /// write indices and delivery counters — for checkpointing. The plans
    /// themselves are carried separately (they are part of the run's
    /// configuration, not of its progress).
    pub fn save_state(&self) -> FaultInjectorState {
        FaultInjectorState {
            rng_state: self.rng.state(),
            hooks: self
                .hooks
                .iter()
                .map(|(name, h)| {
                    let f = h.borrow();
                    SignalFaultsState {
                        signal: name.clone(),
                        write_index: f.write_index,
                        hits: f.hits,
                    }
                })
                .collect(),
            mem: self.mem.as_ref().map(|m| {
                let m = m.borrow();
                MemFaultsState {
                    replies_seen: m.replies_seen,
                    stall_cycles_served: m.stall_cycles_served,
                    bits_flipped: m.bits_flipped,
                }
            }),
        }
    }

    /// Restores state captured by [`save_state`](Self::save_state) into an
    /// injector rebuilt from the same seed and plans, with its hooks
    /// already compiled (compilation order is deterministic, so random
    /// targets resolve identically).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointMismatch`] when the checkpointed hooks
    /// do not match the compiled ones.
    pub fn load_state(&mut self, state: &FaultInjectorState) -> Result<(), SimError> {
        self.rng.set_state(state.rng_state);
        for h in &state.hooks {
            let Some((_, handle)) = self.hooks.iter().find(|(name, _)| *name == h.signal) else {
                return Err(SimError::CheckpointMismatch {
                    reason: format!("no compiled fault hook for signal `{}`", h.signal),
                });
            };
            let mut f = handle.borrow_mut();
            f.write_index = h.write_index;
            f.hits = h.hits;
        }
        if let Some(ms) = &state.mem {
            let Some(m) = &self.mem else {
                return Err(SimError::CheckpointMismatch {
                    reason: "checkpoint carries memory-fault state but none is compiled".into(),
                });
            };
            let mut m = m.borrow_mut();
            m.replies_seen = ms.replies_seen;
            m.stall_cycles_served = ms.stall_cycles_served;
            m.bits_flipped = ms.bits_flipped;
        }
        Ok(())
    }

    /// Total faults delivered across every compiled hook (signal hits,
    /// stall cycles and bit flips), for reporting.
    pub fn faults_delivered(&self) -> u64 {
        let signal_hits: u64 = self.hooks.iter().map(|(_, h)| h.borrow().hits()).sum();
        let mem: u64 = self
            .mem
            .as_ref()
            .map(|m| {
                let m = m.borrow();
                m.stall_cycles_served() + m.bits_flipped()
            })
            .unwrap_or(0);
        signal_hits + mem
    }
}

/// Checkpointed progress of one compiled signal hook.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalFaultsState {
    /// The hooked signal's name.
    pub signal: String,
    /// Writes observed so far.
    pub write_index: u64,
    /// Faults delivered so far.
    pub hits: u64,
}

/// Checkpointed progress of the memory-fault hook.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemFaultsState {
    /// Read replies observed so far.
    pub replies_seen: u64,
    /// Stall cycles actually imposed so far.
    pub stall_cycles_served: u64,
    /// Bits actually flipped so far.
    pub bits_flipped: u64,
}

/// Checkpointed mutable state of a whole [`FaultInjector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInjectorState {
    /// The RNG's internal state.
    pub rng_state: u64,
    /// Per-hook progress, in hook compilation order.
    pub hooks: Vec<SignalFaultsState>,
    /// Memory-hook progress, when a memory fault is compiled.
    pub mem: Option<MemFaultsState>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SimError;
    use crate::signal::Signal;

    #[test]
    fn duplicate_write_exceeds_bandwidth() {
        let mut inj = FaultInjector::new(1)
            .with(FaultPlan::Duplicate { signal: "s".into(), write: FaultWrite::Nth(0) });
        let (mut tx, _rx) = Signal::<u32>::with_name("s", 1, 1);
        tx.attach_faults(inj.signal_hook("s").unwrap());
        let err = tx.write(0, 7).unwrap_err();
        assert!(matches!(err, SimError::BandwidthExceeded { cycle: 0, .. }), "{err}");
    }

    #[test]
    fn positive_delay_surfaces_as_data_lost() {
        let mut inj = FaultInjector::new(1)
            .with(FaultPlan::Delay { signal: "s".into(), write: FaultWrite::Nth(0), delay: 3 });
        let (mut tx, mut rx) = Signal::<u32>::with_name("s", 1, 1);
        tx.attach_faults(inj.signal_hook("s").unwrap());
        tx.write(0, 7).unwrap(); // arrives at 4 instead of 1
        assert_eq!(rx.try_read(1).unwrap(), None);
        assert_eq!(rx.try_read(4).unwrap(), Some(7));
    }

    #[test]
    fn negative_delay_surfaces_as_time_travel() {
        let mut inj = FaultInjector::new(1)
            .with(FaultPlan::Delay { signal: "s".into(), write: FaultWrite::Nth(1), delay: -5 });
        let (mut tx, _rx) = Signal::<u32>::with_name("s", 4, 1);
        tx.attach_faults(inj.signal_hook("s").unwrap());
        tx.write(10, 1).unwrap();
        let err = tx.write(10, 2).unwrap_err();
        assert!(matches!(err, SimError::TimeTravel { latest: 10, .. }), "{err}");
    }

    #[test]
    fn random_targets_are_seed_deterministic() {
        let build = |seed| {
            let mut inj = FaultInjector::new(seed).with(FaultPlan::Drop {
                signal: "s".into(),
                write: FaultWrite::Random { lo: 0, hi: 1000 },
            });
            let hook = inj.signal_hook("s").unwrap();
            let h = hook.borrow();
            h.actions.clone()
        };
        assert_eq!(build(7), build(7));
        assert_ne!(build(7), build(8));
    }

    #[test]
    fn mem_hook_compiles_stalls_and_flips() {
        let mut inj = FaultInjector::new(1)
            .with(FaultPlan::StallMemory { at: 10, cycles: 5 })
            .with(FaultPlan::FlipBits { reply: 0, bit: 3 });
        let hook = inj.mem_hook().unwrap();
        let mut m = hook.borrow_mut();
        assert!(!m.stalled(9));
        assert!(m.stalled(10));
        assert!(m.stalled(14));
        assert!(!m.stalled(15));
        assert_eq!(m.next_read_flip(), Some(3));
        assert_eq!(m.next_read_flip(), None);
        assert_eq!(m.stall_cycles_served(), 2);
        assert_eq!(m.bits_flipped(), 1);
    }

    #[test]
    fn unarmed_hooks_are_none() {
        let mut inj = FaultInjector::new(1);
        assert!(inj.signal_hook("s").is_none());
        assert!(inj.mem_hook().is_none());
    }

    #[test]
    fn hooks_are_cached() {
        let mut inj = FaultInjector::new(1)
            .with(FaultPlan::Drop { signal: "s".into(), write: FaultWrite::Nth(0) });
        let a = inj.signal_hook("s").unwrap();
        let b = inj.signal_hook("s").unwrap();
        assert!(Rc::ptr_eq(&a, &b));
    }
}
