//! Simulation error types.
//!
//! The ATTILA paper specifies that signals "perform verification checks that
//! may terminate the simulator, for example when bandwidth is exceeded or
//! data is lost". Those verification failures are represented by
//! [`SimError`]; the infallible signal APIs turn them into panics with a
//! precise message, the fallible (`try_*`) APIs return them.

use std::error::Error;
use std::fmt;

use crate::name::SignalName;

/// An error detected by the simulation framework's verification checks.
///
/// A `SimError` always indicates a *bug in the timing model* (a box writing
/// more data than the configured wire can carry, a box failing to drain a
/// wire, a name collision while wiring up the pipeline) rather than a
/// recoverable runtime condition. Simulators typically abort on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// More objects were written to a signal in one cycle than its
    /// configured bandwidth allows.
    BandwidthExceeded {
        /// Name of the offending signal (interned: cloning the error out
        /// of the wire's hot path does not allocate).
        signal: SignalName,
        /// Cycle at which the over-subscription happened.
        cycle: u64,
        /// The configured bandwidth in objects per cycle.
        bandwidth: usize,
    },
    /// Objects arrived at the output of a signal but were never read by the
    /// consuming box before newer data arrived behind them.
    DataLost {
        /// Name of the offending signal (interned).
        signal: SignalName,
        /// Cycle at which the loss was detected.
        cycle: u64,
        /// Number of objects lost.
        lost: usize,
    },
    /// A write was issued for a cycle earlier than a previous write
    /// (the global clock only moves forward).
    TimeTravel {
        /// Name of the offending signal (interned).
        signal: SignalName,
        /// The cycle of the offending write.
        cycle: u64,
        /// The latest cycle the signal had already observed.
        latest: u64,
    },
    /// Two signals were registered under the same name in a
    /// [`SignalBinder`](crate::SignalBinder).
    NameCollision(String),
    /// A lookup in a [`SignalBinder`](crate::SignalBinder) referenced a name
    /// that was never registered.
    UnknownSignal(String),
    /// A configuration was rejected before elaboration (degenerate
    /// parameter values that would otherwise surface as a mid-run panic).
    InvalidConfig(String),
    /// A checkpoint file was rejected on restore: bad magic, checksum
    /// failure, or a config/trace hash that does not match the simulator
    /// instance asked to resume from it.
    CheckpointMismatch {
        /// Human-readable description of the first mismatch found.
        reason: String,
    },
    /// A checkpoint file carries a format version this build cannot read.
    ///
    /// Unlike the free-form [`CheckpointMismatch`](Self::CheckpointMismatch)
    /// this variant is typed: callers (and tests) can match on the exact
    /// version found in the file instead of grepping a message string.
    CheckpointVersion {
        /// The format version recorded in the rejected file.
        found: u64,
        /// The format version this build reads.
        supported: u64,
    },
}

impl SimError {
    /// The name of the offending signal, when the error is tied to one —
    /// the key used by fault *isolation* to degrade exactly the wire that
    /// failed.
    pub fn signal(&self) -> Option<&str> {
        match self {
            SimError::BandwidthExceeded { signal, .. }
            | SimError::DataLost { signal, .. }
            | SimError::TimeTravel { signal, .. } => Some(signal.as_str()),
            SimError::NameCollision(name) | SimError::UnknownSignal(name) => Some(name),
            SimError::InvalidConfig(_)
            | SimError::CheckpointMismatch { .. }
            | SimError::CheckpointVersion { .. } => None,
        }
    }

    /// The cycle at which the error was detected, when known.
    pub fn cycle(&self) -> Option<u64> {
        match self {
            SimError::BandwidthExceeded { cycle, .. }
            | SimError::DataLost { cycle, .. }
            | SimError::TimeTravel { cycle, .. } => Some(*cycle),
            SimError::NameCollision(_)
            | SimError::UnknownSignal(_)
            | SimError::InvalidConfig(_)
            | SimError::CheckpointMismatch { .. }
            | SimError::CheckpointVersion { .. } => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BandwidthExceeded { signal, cycle, bandwidth } => write!(
                f,
                "signal `{signal}` exceeded its bandwidth of {bandwidth} objects/cycle at cycle {cycle}"
            ),
            SimError::DataLost { signal, cycle, lost } => write!(
                f,
                "{lost} object(s) on signal `{signal}` were never read and got lost at cycle {cycle}"
            ),
            SimError::TimeTravel { signal, cycle, latest } => write!(
                f,
                "signal `{signal}` was written at cycle {cycle} after already observing cycle {latest}"
            ),
            SimError::NameCollision(name) => {
                write!(f, "a signal named `{name}` is already registered")
            }
            SimError::UnknownSignal(name) => {
                write!(f, "no signal named `{name}` is registered")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::CheckpointMismatch { reason } => {
                write!(f, "checkpoint rejected: {reason}")
            }
            SimError::CheckpointVersion { found, supported } => write!(
                f,
                "checkpoint rejected: format version {found} is not supported, this build reads {supported}"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::BandwidthExceeded {
            signal: "setup->fraggen".into(),
            cycle: 42,
            bandwidth: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("setup->fraggen"));
        assert!(msg.contains("42"));
        assert!(msg.contains('2'));
    }

    #[test]
    fn errors_are_comparable() {
        let a = SimError::NameCollision("x".into());
        let b = SimError::NameCollision("x".into());
        assert_eq!(a, b);
        assert_ne!(a, SimError::UnknownSignal("x".into()));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(SimError::UnknownSignal("q".into()));
    }
}
