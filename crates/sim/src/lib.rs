//! # attila-sim — boxes-and-signals simulation framework
//!
//! Cycle-level simulation framework underlying the ATTILA GPU simulator
//! (Moya et al., *ATTILA: A Cycle-Level Execution-Driven Simulator for
//! Modern GPU Architectures*, ISPASS 2006, Section 3).
//!
//! The framework is structured on two fundamental abstractions:
//!
//! * **Boxes** ([`SimBox`]) model a "large enough" piece of a hardware
//!   pipeline — e.g. the Clipper or the Fragment Generator. A box may use
//!   local data (registers, queues) and data read from its input signals to
//!   update its state and drive its output signals, once per cycle.
//! * **Signals** ([`Signal`]) are the wires connecting boxes. All
//!   communication between boxes happens in a message-passing style by
//!   sending data through a signal. Every signal has an associated
//!   **latency** (in cycles) and **bandwidth** (in objects per cycle), and
//!   performs verification checks — exceeding the bandwidth or losing
//!   in-flight data terminates the simulation, which catches timing bugs in
//!   box implementations early.
//!
//! Supporting infrastructure mirrors the paper's simulator:
//!
//! * [`SignalBinder`] — a name server registering every signal with a unique
//!   name, direction, bandwidth and latency, used for introspection and for
//!   dumping **signal traces** consumed by the Signal Trace Visualizer
//!   ([`trace`] module).
//! * [`DynamicObject`] — identity attached to the objects that travel
//!   through signals (an id, a parent id forming a multilevel hierarchy —
//!   fragment → triangle → batch —, a colour and an info string).
//! * [`StatsRegistry`] — named statistics, sampled in configurable cycle
//!   windows and dumped as CSV (the paper's simulator supports ~300
//!   statistics).
//! * [`Horizon`] — the event-horizon contract behind idle-aware clocking:
//!   each box reports whether clocking it before some future cycle could
//!   change observable state, and a scheduler (see
//!   [`Scheduler::step_many`]) jumps the clock over stretches every unit
//!   and every in-flight wire agree are dead time. Results are
//!   bit-identical to per-cycle clocking; only wall-clock time changes.
//!
//! ## Example
//!
//! ```
//! use attila_sim::Signal;
//!
//! // A two-stage pipeline: a producer sends integers through a
//! // 3-cycle-latency signal to a consumer.
//! let (mut tx, mut rx) = Signal::<u32>::with_name("producer->consumer", 1, 3);
//! let mut received = Vec::new();
//! for cycle in 0..10 {
//!     if cycle < 5 {
//!         tx.write(cycle, cycle as u32).unwrap();
//!     }
//!     while let Some(v) = rx.read(cycle) {
//!         received.push((cycle, v));
//!     }
//! }
//! // Values written at cycle c arrive at cycle c + 3.
//! assert_eq!(received[0], (3, 0));
//! assert_eq!(received.len(), 5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binder;
pub mod boxes;
pub mod error;
pub mod fault;
pub mod lint;
pub mod name;
pub mod object;
pub mod partition;
pub mod rng;
pub mod signal;
pub mod stats;
pub mod trace;
pub mod viz;

pub use binder::{SignalBinder, SignalDirection, SignalInfo};
pub use lint::{
    BoxNode, LintFinding, LintReport, PortDecl, Severity, SignalEdge, Topology, TopologySummary,
};
pub use boxes::{Horizon, Scheduler, SimBox};
pub use error::SimError;
pub use fault::{
    FaultInjector, FaultInjectorState, FaultPlan, FaultWrite, MemFaultHandle, MemFaultsState,
    SignalFaultHandle, SignalFaultsState,
};
pub use name::SignalName;
pub use object::{DynamicObject, ObjectIdGen, Traceable};
pub use partition::partition_chain;
pub use rng::TinyRng;
pub use signal::{DrainStaged, Signal, SignalProbe, SignalReader, SignalStatus, SignalWriter};
pub use stats::{Counter, Gauge, StatSnapshotEntry, StatsRegistry, StatsSnapshot};
pub use trace::{SignalTrace, TraceEvent, TraceSink};
pub use viz::{render_html, VizOptions};

/// A simulation cycle number.
///
/// Cycles start at 0 and increase monotonically; the whole framework is
/// driven by a single global clock (the ATTILA paper models one clock
/// domain for the GPU core and expresses memory timing in core cycles).
pub type Cycle = u64;
