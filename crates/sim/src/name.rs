//! Interned signal names.
//!
//! Signal hot paths — verification errors, trace events, probe snapshots —
//! previously cloned a heap `String` every time they mentioned the signal.
//! A [`SignalName`] is a shared text handle (`Arc<str>`) plus a dense
//! numeric id: cloning one bumps a refcount, so the error/trace/probe
//! paths carry the name around without allocating.
//!
//! Ids are assigned by the [`SignalBinder`](crate::SignalBinder) in
//! registration order, which is deterministic for a given configuration
//! (the GPU wires its pipeline in a fixed sequence). Standalone signals
//! built directly from a string carry [`SignalName::UNREGISTERED`].
//! Equality, ordering and hashing use the text, never the id, so names
//! interned by different binders (or not at all) compare naturally.

use std::fmt;
use std::sync::Arc;

/// An interned signal name: shared text plus a binder-assigned dense id.
///
/// # Examples
///
/// ```
/// use attila_sim::SignalName;
/// let name = SignalName::interned("clipper->setup", 7);
/// assert_eq!(name, "clipper->setup");
/// assert_eq!(name.id(), 7);
/// let copy = name.clone(); // refcount bump, no allocation
/// assert_eq!(copy.as_str(), name.as_str());
/// ```
#[derive(Clone)]
pub struct SignalName {
    text: Arc<str>,
    id: u32,
}

impl SignalName {
    /// The id carried by names that were never registered with a binder.
    pub const UNREGISTERED: u32 = u32::MAX;

    /// Interns `text` under a binder-assigned dense `id`.
    pub fn interned(text: impl Into<Arc<str>>, id: u32) -> Self {
        SignalName { text: text.into(), id }
    }

    /// The interned text.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// A shared handle to the text (refcount bump, no copy).
    pub fn arc(&self) -> Arc<str> {
        Arc::clone(&self.text)
    }

    /// The dense id assigned at registration, or
    /// [`UNREGISTERED`](Self::UNREGISTERED) for standalone signals.
    pub fn id(&self) -> u32 {
        self.id
    }
}

impl From<&str> for SignalName {
    fn from(text: &str) -> Self {
        SignalName { text: text.into(), id: SignalName::UNREGISTERED }
    }
}

impl From<String> for SignalName {
    fn from(text: String) -> Self {
        SignalName { text: text.into(), id: SignalName::UNREGISTERED }
    }
}

impl From<Arc<str>> for SignalName {
    fn from(text: Arc<str>) -> Self {
        SignalName { text, id: SignalName::UNREGISTERED }
    }
}

impl From<SignalName> for String {
    fn from(name: SignalName) -> String {
        name.text.as_ref().to_string()
    }
}

impl PartialEq for SignalName {
    fn eq(&self, other: &Self) -> bool {
        self.text == other.text
    }
}

impl Eq for SignalName {}

impl PartialOrd for SignalName {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SignalName {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.text.cmp(&other.text)
    }
}

impl std::hash::Hash for SignalName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.text.hash(state);
    }
}

impl PartialEq<str> for SignalName {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for SignalName {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for SignalName {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<SignalName> for str {
    fn eq(&self, other: &SignalName) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<SignalName> for &str {
    fn eq(&self, other: &SignalName) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<SignalName> for String {
    fn eq(&self, other: &SignalName) -> bool {
        self.as_str() == other.as_str()
    }
}

impl fmt::Display for SignalName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl fmt::Debug for SignalName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_ignores_the_id() {
        let a = SignalName::interned("wire", 3);
        let b = SignalName::from("wire");
        assert_eq!(a, b);
        assert_eq!(b.id(), SignalName::UNREGISTERED);
    }

    #[test]
    fn compares_against_plain_strings() {
        let n = SignalName::interned("a->b", 0);
        assert_eq!(n, "a->b");
        assert_eq!(n, *"a->b");
        assert_eq!(n, String::from("a->b"));
        assert_eq!("a->b", n);
        assert!(n != "b->a");
    }

    #[test]
    fn clone_shares_the_text() {
        let n = SignalName::interned("shared", 1);
        let m = n.clone();
        assert!(Arc::ptr_eq(&n.arc(), &m.arc()));
    }

    #[test]
    fn orders_by_text() {
        let mut v = [SignalName::interned("b", 0), SignalName::interned("a", 1)];
        v.sort();
        assert_eq!(v[0], "a");
    }

    #[test]
    fn converts_into_string() {
        let s: String = SignalName::interned("x", 9).into();
        assert_eq!(s, "x");
    }
}
