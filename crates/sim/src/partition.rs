//! Clock-domain partitioning for the multi-threaded scheduler.
//!
//! The threaded clock loop shards a pipeline *chain* of boxes (a linear
//! slice of the topology, e.g. primitive assembly through the fragment
//! FIFO) into contiguous **clock domains**, one per worker thread. Cutting
//! the chain costs wall-clock time proportional to the signal bandwidth
//! crossing the cut — every crossing wire becomes a staged mailbox drained
//! at the barrier — so [`partition_chain`] picks the cut positions that
//! minimize total crossing bandwidth, derived from the same
//! [`SignalEdge`] list that feeds the topology
//! lint ([`crate::lint::Topology`]).
//!
//! The search is exact: a pipeline chain has at most a handful of gaps, so
//! enumerating every contiguous split is cheap and, crucially,
//! **deterministic** — the same topology always yields the same domains,
//! which the bit-identity contract of the threaded loop relies on.

use crate::lint::SignalEdge;

/// Splits `chain` (box names, in pipeline order) into `segments` contiguous
/// clock domains, returning the zero-based segment index of each chain
/// position.
///
/// The split minimizes the summed declared bandwidth of signal edges whose
/// endpoints land in different segments (each such edge becomes a staged
/// cross-thread mailbox). Ties are broken by the most even load split —
/// smallest maximum per-segment incident bandwidth — and then by first
/// enumeration order, so the result is a pure function of the inputs.
///
/// `segments` is clamped to `1..=chain.len()`. Edges touching boxes outside
/// the chain are ignored for the cut cost (they cross a thread boundary no
/// matter where the chain is split) but still count toward segment load.
pub fn partition_chain(chain: &[&str], segments: usize, edges: &[SignalEdge]) -> Vec<usize> {
    assert!(!chain.is_empty(), "cannot partition an empty chain");
    let want = segments.clamp(1, chain.len());
    let index_of = |name: &str| chain.iter().position(|&c| c == name);

    // Weight of cutting each gap g (between chain[g] and chain[g+1]):
    // total bandwidth of in-chain edges straddling the gap.
    let gaps = chain.len() - 1;
    let mut gap_weight = vec![0u64; gaps];
    // Total bandwidth incident to each chain box (in-chain + external),
    // used as the load model for tie-breaking.
    let mut load = vec![0u64; chain.len()];
    for edge in edges {
        let from = index_of(&edge.info.from_box);
        let to = index_of(&edge.info.to_box);
        let bw = edge.info.bandwidth as u64;
        if let Some(i) = from {
            load[i] += bw;
        }
        if let Some(j) = to {
            load[j] += bw;
        }
        if let (Some(i), Some(j)) = (from, to) {
            let (lo, hi) = (i.min(j), i.max(j));
            for w in &mut gap_weight[lo..hi] {
                *w += bw;
            }
        }
    }

    // Exact enumeration over cut masks: bit g set = cut after chain[g].
    let cuts_wanted = (want - 1) as u32;
    let mut best: Option<(u64, u64, u32)> = None; // (cut cost, max load, mask)
    for mask in 0u32..(1u32 << gaps) {
        if mask.count_ones() != cuts_wanted {
            continue;
        }
        let cost: u64 = (0..gaps).filter(|&g| mask & (1 << g) != 0).map(|g| gap_weight[g]).sum();
        let mut max_load = 0u64;
        let mut seg_load = 0u64;
        for (i, &l) in load.iter().enumerate() {
            seg_load += l;
            let cut_here = i < gaps && mask & (1 << i) != 0;
            if cut_here || i == chain.len() - 1 {
                max_load = max_load.max(seg_load);
                seg_load = 0;
            }
        }
        let candidate = (cost, max_load, mask);
        if best.is_none_or(|b| (candidate.0, candidate.1) < (b.0, b.1)) {
            best = Some(candidate);
        }
    }

    let mask = best.expect("at least one split exists").2;
    let mut assignment = Vec::with_capacity(chain.len());
    let mut seg = 0usize;
    for i in 0..chain.len() {
        assignment.push(seg);
        if i < gaps && mask & (1 << i) != 0 {
            seg += 1;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::SignalBinder;

    fn edges_for(wires: &[(&str, &str, usize)]) -> Vec<SignalEdge> {
        let mut binder = SignalBinder::new();
        for &(from, to, bw) in wires {
            let name = format!("{from}->{to}");
            let _ = binder.register::<u32>(&name, from, to, bw, 1).unwrap();
        }
        binder.edges()
    }

    #[test]
    fn single_segment_is_identity() {
        let edges = edges_for(&[("A", "B", 4)]);
        assert_eq!(partition_chain(&["A", "B", "C"], 1, &edges), vec![0, 0, 0]);
    }

    #[test]
    fn cuts_cheapest_gap() {
        // A=B expensive, B-C cheap, C=D expensive: the single cut lands
        // between B and C.
        let edges = edges_for(&[("A", "B", 8), ("B", "C", 1), ("C", "D", 8)]);
        assert_eq!(partition_chain(&["A", "B", "C", "D"], 2, &edges), vec![0, 0, 1, 1]);
    }

    #[test]
    fn skip_edges_count_toward_cuts() {
        // A->C skips over B, so cutting either gap severs it; the cheaper
        // total is still the gap avoiding the heavy adjacent wire.
        let edges = edges_for(&[("A", "B", 1), ("B", "C", 6), ("A", "C", 2)]);
        assert_eq!(partition_chain(&["A", "B", "C"], 2, &edges), vec![0, 1, 1]);
    }

    #[test]
    fn segment_count_clamps_to_chain_len() {
        let edges = edges_for(&[("A", "B", 1)]);
        assert_eq!(partition_chain(&["A", "B"], 9, &edges), vec![0, 1]);
    }

    #[test]
    fn tie_breaks_by_even_load() {
        // Uniform gap weights: any single cut costs the same, so the
        // load tie-break picks the most even split.
        let edges = edges_for(&[("A", "B", 2), ("B", "C", 2), ("C", "D", 2)]);
        assert_eq!(partition_chain(&["A", "B", "C", "D"], 2, &edges), vec![0, 0, 1, 1]);
    }

    #[test]
    fn deterministic_across_calls() {
        let edges = edges_for(&[("A", "B", 3), ("B", "C", 3), ("C", "D", 1), ("D", "E", 3)]);
        let chain = ["A", "B", "C", "D", "E"];
        let first = partition_chain(&chain, 3, &edges);
        for _ in 0..8 {
            assert_eq!(partition_chain(&chain, 3, &edges), first);
        }
    }
}
