//! Signal traces and the Signal Trace Visualizer (STV).
//!
//! The ATTILA simulator can dump, each cycle, the identity and debug
//! information of every object leaving every signal. The resulting *signal
//! trace file* is consumed by the **Signal Trace Visualizer** tool to debug
//! the performance of the simulated microarchitecture — e.g. to see a
//! bubble travel down the pipeline, or a unit saturating.
//!
//! This module provides the in-memory trace buffer ([`SignalTrace`]), the
//! shared sink handle attached to signals ([`TraceSink`]) and a text
//! renderer that draws a signals × cycles activity grid — a terminal
//! version of the visualizer.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::name::SignalName;
use crate::Cycle;

/// One recorded signal transfer: an object arriving at a signal's output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the object arrives at the consumer end.
    pub cycle: Cycle,
    /// Name of the signal that carried it (interned: recording an event
    /// shares the wire's name handle instead of cloning a `String`).
    pub signal: SignalName,
    /// Debug description of the object (truncated).
    pub info: String,
}

/// Shared handle cloned into every traced signal.
///
/// See [`SignalWriter::attach_trace`](crate::SignalWriter::attach_trace).
pub type TraceSink = Rc<RefCell<SignalTrace>>;

/// An in-memory signal trace.
///
/// # Examples
///
/// ```
/// use attila_sim::{Signal, SignalTrace};
///
/// let sink = SignalTrace::new_sink();
/// let (mut tx, mut rx) = Signal::<u32>::with_name("a->b", 1, 2);
/// tx.attach_trace(sink.clone());
/// tx.write(0, 42).unwrap();
/// rx.read(2);
/// let trace = sink.borrow();
/// assert_eq!(trace.len(), 1);
/// assert_eq!(trace.events()[0].cycle, 2);
/// ```
#[derive(Debug, Default)]
pub struct SignalTrace {
    events: Vec<TraceEvent>,
    /// Maximum number of retained events (0 = unbounded). Long simulations
    /// would otherwise exhaust memory; the real tool streams to disk.
    capacity: usize,
    dropped: u64,
}

impl SignalTrace {
    /// Creates an unbounded trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a trace retaining at most `capacity` most-recent events.
    pub fn with_capacity(capacity: usize) -> Self {
        SignalTrace { events: Vec::new(), capacity, dropped: 0 }
    }

    /// Convenience: a shareable, unbounded sink.
    pub fn new_sink() -> TraceSink {
        Rc::new(RefCell::new(SignalTrace::new()))
    }

    /// Appends an event (called by traced signals).
    pub fn push(&mut self, ev: TraceEvent) {
        if self.capacity != 0 && self.events.len() >= self.capacity {
            self.events.remove(0);
            self.dropped += 1;
        }
        self.events.push(ev);
    }

    /// All retained events in arrival order (stable for equal cycles).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted due to the capacity limit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Serializes the trace in the simulator's line-oriented dump format:
    /// `cycle<TAB>signal<TAB>info`.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            let _ = writeln!(out, "{}\t{}\t{}", ev.cycle, ev.signal, ev.info);
        }
        out
    }

    /// Parses a dump produced by [`dump`](Self::dump).
    pub fn parse(text: &str) -> SignalTrace {
        let mut trace = SignalTrace::new();
        for line in text.lines() {
            let mut parts = line.splitn(3, '\t');
            let (Some(cycle), Some(signal)) = (parts.next(), parts.next()) else { continue };
            let Ok(cycle) = cycle.parse() else { continue };
            trace.push(TraceEvent {
                cycle,
                signal: signal.into(),
                info: parts.next().unwrap_or("").to_string(),
            });
        }
        trace
    }

    /// Renders the terminal Signal Trace Visualizer view: one row per
    /// signal, one column per cycle in `[from, to)`; each cell shows the
    /// number of objects that arrived (`.` for none, `1`-`9`, `+` for >9).
    pub fn render(&self, from: Cycle, to: Cycle) -> String {
        let mut per_signal: BTreeMap<&str, BTreeMap<Cycle, usize>> = BTreeMap::new();
        for ev in &self.events {
            if ev.cycle >= from && ev.cycle < to {
                *per_signal
                    .entry(ev.signal.as_str())
                    .or_default()
                    .entry(ev.cycle)
                    .or_default() += 1;
            }
        }
        let name_w = per_signal.keys().map(|n| n.len()).max().unwrap_or(6).max(6);
        let mut out = String::new();
        let _ = writeln!(out, "{:>name_w$} | cycles {from}..{to}", "signal");
        for (name, cycles) in &per_signal {
            let _ = write!(out, "{name:>name_w$} | ");
            for c in from..to {
                let ch = match cycles.get(&c).copied().unwrap_or(0) {
                    0 => '.',
                    n @ 1..=9 => char::from_digit(n as u32, 10).unwrap(),
                    _ => '+',
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: Cycle, signal: &str, info: &str) -> TraceEvent {
        TraceEvent { cycle, signal: signal.into(), info: info.into() }
    }

    #[test]
    fn push_and_len() {
        let mut t = SignalTrace::new();
        t.push(ev(1, "a", "x"));
        t.push(ev(2, "b", "y"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t = SignalTrace::with_capacity(2);
        t.push(ev(1, "a", ""));
        t.push(ev(2, "a", ""));
        t.push(ev(3, "a", ""));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.events()[0].cycle, 2);
    }

    #[test]
    fn dump_parse_round_trip() {
        let mut t = SignalTrace::new();
        t.push(ev(5, "clip->setup", "#12<-#3 tri"));
        t.push(ev(6, "setup->fg", "#13"));
        let parsed = SignalTrace::parse(&t.dump());
        assert_eq!(parsed.events(), t.events());
    }

    #[test]
    fn render_grid_shows_activity() {
        let mut t = SignalTrace::new();
        t.push(ev(0, "sig", ""));
        t.push(ev(2, "sig", ""));
        t.push(ev(2, "sig", ""));
        let grid = t.render(0, 4);
        // header + one signal row
        let row = grid.lines().nth(1).unwrap();
        assert!(row.ends_with("1.2."), "got: {row}");
    }

    #[test]
    fn render_overflow_marker() {
        let mut t = SignalTrace::new();
        for _ in 0..12 {
            t.push(ev(0, "s", ""));
        }
        let grid = t.render(0, 1);
        assert!(grid.lines().nth(1).unwrap().ends_with('+'));
    }

    #[test]
    fn parse_skips_garbage_lines() {
        let parsed = SignalTrace::parse("not-a-cycle\tx\ty\n7\tok\tinfo\n");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed.events()[0].signal, "ok");
    }
}
