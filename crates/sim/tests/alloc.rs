//! Counting-allocator proof that the signal hot path is allocation-free
//! in steady state.
//!
//! The ring transport preallocates `(latency + 1) × bandwidth` slots at
//! bind time, so a healthy (un-faulted) wire never grows its backing
//! storage: every write and read after construction must touch only the
//! preallocated ring. This test swaps in a counting global allocator and
//! asserts that a saturated write/read workload performs **zero**
//! allocations once the wire is built.
//!
//! This file deliberately holds a single `#[test]`: the default harness
//! runs tests in one binary concurrently, and a neighbouring test's
//! allocations would race the counter. (`forbid(unsafe_code)` guards the
//! crate roots; integration tests are separate crates, and the counting
//! allocator is the one place `unsafe` is warranted — it only forwards
//! to the system allocator.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use attila_sim::Signal;

/// Forwards to the system allocator, counting every allocation and
/// reallocation (frees are uncounted: the property under test is "no new
/// memory", not "no memory traffic").
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn signal_hot_path_does_not_allocate_in_steady_state() {
    for &(bandwidth, latency) in &[(1usize, 1u64), (2, 4), (4, 0), (3, 9), (1, 100)] {
        let (mut tx, mut rx) = Signal::<u64>::with_name("hot", bandwidth, latency);

        // Warm-up: fill the wire to its steady-state occupancy.
        let mut value = 0u64;
        for cycle in 0..latency + 8 {
            for _ in 0..bandwidth {
                value += 1;
                tx.write(cycle, value).unwrap();
            }
            while rx.try_read(cycle).unwrap().is_some() {}
        }

        // Steady state: saturate the wire for thousands of cycles. Every
        // push lands in the preallocated ring, every pop frees a slot,
        // and the horizon queries are O(1) reads — zero allocations.
        let before = ALLOCS.load(Ordering::Relaxed);
        for cycle in latency + 8..latency + 8 + 10_000 {
            for _ in 0..bandwidth {
                value += 1;
                tx.write(cycle, value).unwrap();
            }
            while rx.try_read(cycle).unwrap().is_some() {}
            let _ = rx.next_arrival();
            let _ = rx.drain_cycle();
            let _ = tx.can_write(cycle);
        }
        let after = ALLOCS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "bw={bandwidth} lat={latency}: {} allocation(s) on the steady-state hot path",
            after - before
        );
    }
}
