//! Differential property test for the ring-buffer signal transport.
//!
//! The preallocated ring (`crates/sim/src/signal.rs`) must be
//! *semantically invisible*: every observable behaviour — delivered
//! values, delivery cycles, verification errors, loss counters, horizon
//! events — must match the plain growable-`VecDeque` transport it
//! replaced, under arbitrary latencies, bandwidths, lossy degradation and
//! injected fault schedules. This file retains that legacy transport as
//! an executable reference model and drives both implementations with
//! identical seeded traffic, comparing after every operation.

use std::collections::VecDeque;

use attila_sim::{
    FaultInjector, FaultPlan, FaultWrite, Signal, SignalFaultHandle, SignalName, SimError, TinyRng,
};

/// The legacy transport: a growable `VecDeque` with no preallocation and
/// no sortedness tracking — a line-for-line retention of the semantics
/// the ring replaced. Kept deliberately naive: min/max arrival always
/// scan, pushes always go through `VecDeque` growth rules.
struct RefWire {
    name: SignalName,
    bandwidth: usize,
    latency: u64,
    in_flight: VecDeque<(u64, u32)>,
    latest_cycle: u64,
    writes_this_cycle: usize,
    lossy: bool,
    total_written: u64,
    total_read: u64,
    total_lost: u64,
    faults: Option<SignalFaultHandle>,
}

impl RefWire {
    fn new(name: &str, bandwidth: usize, latency: u64) -> Self {
        RefWire {
            name: SignalName::from(name),
            bandwidth,
            latency,
            in_flight: VecDeque::new(),
            latest_cycle: 0,
            writes_this_cycle: 0,
            lossy: false,
            total_written: 0,
            total_read: 0,
            total_lost: 0,
            faults: None,
        }
    }

    fn observe_cycle(&mut self, cycle: u64) -> Result<(), SimError> {
        if cycle > self.latest_cycle {
            self.latest_cycle = cycle;
            self.writes_this_cycle = 0;
        }
        let mut lost = 0usize;
        while let Some((arrival, _)) = self.in_flight.front() {
            if *arrival < cycle {
                self.in_flight.pop_front();
                lost += 1;
            } else {
                break;
            }
        }
        if lost > 0 {
            self.total_lost += lost as u64;
            if !self.lossy {
                return Err(SimError::DataLost { signal: self.name.clone(), cycle, lost });
            }
        }
        Ok(())
    }

    fn write(&mut self, cycle: u64, obj: u32) -> Result<(), SimError> {
        let fault = match &self.faults {
            Some(hook) => hook.borrow_mut().next_write(),
            None => None,
        };
        let mut cycle = cycle;
        let mut extra_latency: u64 = 0;
        let mut dropped = false;
        let mut slots = 1;
        match fault {
            Some(attila_sim::fault::SignalFaultKind::Drop) => dropped = true,
            Some(attila_sim::fault::SignalFaultKind::Delay(d)) if d >= 0 => {
                extra_latency = d as u64;
            }
            Some(attila_sim::fault::SignalFaultKind::Delay(d)) => {
                cycle = cycle.saturating_sub(d.unsigned_abs());
            }
            Some(attila_sim::fault::SignalFaultKind::Duplicate) => slots = 2,
            None => {}
        }
        if cycle < self.latest_cycle {
            if self.lossy {
                self.total_lost += 1;
                return Ok(());
            }
            return Err(SimError::TimeTravel {
                signal: self.name.clone(),
                cycle,
                latest: self.latest_cycle,
            });
        }
        self.observe_cycle(cycle)?;
        if self.writes_this_cycle + slots > self.bandwidth {
            if self.lossy {
                self.writes_this_cycle = self.bandwidth;
                self.total_lost += 1;
                return Ok(());
            }
            return Err(SimError::BandwidthExceeded {
                signal: self.name.clone(),
                cycle,
                bandwidth: self.bandwidth,
            });
        }
        self.writes_this_cycle += slots;
        if dropped {
            self.total_lost += 1;
            return Ok(());
        }
        self.total_written += 1;
        self.in_flight.push_back((cycle + self.latency + extra_latency, obj));
        Ok(())
    }

    fn read(&mut self, cycle: u64) -> Result<Option<u32>, SimError> {
        if cycle >= self.latest_cycle {
            self.observe_cycle(cycle)?;
        }
        match self.in_flight.front() {
            Some((arrival, _)) if *arrival == cycle => match self.in_flight.pop_front() {
                Some((_, obj)) => {
                    self.total_read += 1;
                    Ok(Some(obj))
                }
                None => Ok(None),
            },
            _ => Ok(None),
        }
    }

    fn next_arrival(&self) -> Option<u64> {
        self.in_flight.iter().map(|(a, _)| *a).min()
    }

    fn drain_cycle(&self) -> Option<u64> {
        self.in_flight.iter().map(|(a, _)| *a).max()
    }
}

/// A random fault schedule targeting signal `p`, identical for any two
/// injectors built from the same seed.
fn random_plans(rng: &mut TinyRng) -> Vec<FaultPlan> {
    let n = rng.range_u32(0, 4);
    (0..n)
        .map(|_| {
            let write = FaultWrite::Nth(rng.range_u64(0, 40));
            match rng.range_u32(0, 4) {
                0 => FaultPlan::Drop { signal: "p".into(), write },
                1 => FaultPlan::Duplicate { signal: "p".into(), write },
                2 => FaultPlan::Delay { signal: "p".into(), write, delay: rng.range_u64(1, 6) as i64 },
                _ => FaultPlan::Delay {
                    signal: "p".into(),
                    write,
                    delay: -(rng.range_u64(1, 6) as i64),
                },
            }
        })
        .collect()
}

/// Drives the ring transport and the reference transport with identical
/// seeded traffic — random write bursts (sometimes over bandwidth),
/// random reader stalls (sometimes losing data), random lossy degradation
/// and random fault schedules — and asserts every observable matches:
/// write results, read results, loss/traffic counters, and the horizon
/// events (`next_arrival` / `drain_cycle`) the idle-skip scheduler
/// depends on.
#[test]
fn ring_transport_matches_vecdeque_reference() {
    for seed in 0..256u64 {
        let mut rng = TinyRng::new(seed);
        let latency = rng.range_u64(0, 10);
        let bandwidth = rng.range_u32(1, 5) as usize;
        let lossy = rng.chance(1, 2);
        let plans = random_plans(&mut rng);

        let (mut tx, mut rx) = Signal::<u32>::with_name("p", bandwidth, latency);
        let mut reference = RefWire::new("p", bandwidth, latency);
        tx.set_lossy(lossy);
        reference.lossy = lossy;
        if !plans.is_empty() {
            // Two injectors from one seed compile identical schedules.
            let mut inj_real = FaultInjector::new(seed);
            let mut inj_ref = FaultInjector::new(seed);
            for p in &plans {
                inj_real.add(p.clone());
                inj_ref.add(p.clone());
            }
            tx.attach_faults(inj_real.signal_hook("p").expect("plan targets p"));
            reference.faults = Some(inj_ref.signal_hook("p").expect("plan targets p"));
        }

        let mut value = 0u32;
        for cycle in 0..80u64 {
            // Write a burst; deliberately allowed to exceed bandwidth so
            // the `BandwidthExceeded` path is exercised too.
            let burst = rng.range_u32(0, bandwidth as u32 + 2);
            for _ in 0..burst {
                value += 1;
                let got = tx.write(cycle, value);
                let want = reference.write(cycle, value);
                assert_eq!(got, want, "seed {seed} cycle {cycle}: write result diverged");
            }
            // The reader sometimes sleeps through a cycle, stranding
            // arrivals (loss on strict wires, counters on lossy ones).
            if rng.chance(3, 4) {
                loop {
                    let got = rx.try_read(cycle);
                    let want = reference.read(cycle);
                    assert_eq!(got, want, "seed {seed} cycle {cycle}: read diverged");
                    match got {
                        Ok(Some(_)) => continue,
                        _ => break,
                    }
                }
            }
            assert_eq!(
                rx.next_arrival(),
                reference.next_arrival(),
                "seed {seed} cycle {cycle}: next_arrival diverged"
            );
            assert_eq!(
                rx.drain_cycle(),
                reference.drain_cycle(),
                "seed {seed} cycle {cycle}: drain_cycle diverged"
            );
            assert_eq!(rx.in_flight(), reference.in_flight.len(), "seed {seed} cycle {cycle}");
            assert_eq!(tx.total_written(), reference.total_written, "seed {seed} cycle {cycle}");
            assert_eq!(rx.total_read(), reference.total_read, "seed {seed} cycle {cycle}");
            assert_eq!(rx.total_lost(), reference.total_lost, "seed {seed} cycle {cycle}");
        }
    }
}

/// Sustained saturation: every cycle writes exactly `bandwidth` objects
/// and the reader drains them all on arrival for thousands of cycles. On
/// a healthy wire the ring must stay within its preallocated capacity
/// (this is the allocation-freedom scenario the counting-allocator test
/// in `tests/alloc.rs` measures) while remaining value-identical to the
/// reference.
#[test]
fn saturated_wire_stays_identical_over_long_runs() {
    for &(bandwidth, latency) in &[(1usize, 1u64), (2, 4), (4, 0), (3, 9)] {
        let (mut tx, mut rx) = Signal::<u32>::with_name("p", bandwidth, latency);
        let mut reference = RefWire::new("p", bandwidth, latency);
        let mut value = 0u32;
        for cycle in 0..5_000u64 {
            for _ in 0..bandwidth {
                value += 1;
                assert_eq!(tx.write(cycle, value), reference.write(cycle, value));
            }
            loop {
                let got = rx.try_read(cycle);
                assert_eq!(got, reference.read(cycle));
                match got {
                    Ok(Some(_)) => continue,
                    _ => break,
                }
            }
        }
        assert_eq!(tx.total_written(), reference.total_written);
        assert_eq!(rx.total_read(), reference.total_read);
        assert_eq!(rx.total_lost(), 0);
    }
}
