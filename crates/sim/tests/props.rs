//! Property tests for the simulation framework's core invariants.

use proptest::prelude::*;

use attila_sim::{Signal, SignalTrace, TraceEvent};

proptest! {
    /// Everything written to a signal arrives exactly `latency` cycles
    /// later, in FIFO order, when the reader drains every cycle.
    #[test]
    fn signal_preserves_order_and_latency(
        latency in 0u64..8,
        bandwidth in 1usize..4,
        // Per-cycle write counts for 32 cycles.
        plan in proptest::collection::vec(0usize..4, 32),
    ) {
        let (mut tx, mut rx) = Signal::<(u64, usize)>::with_name("p", bandwidth, latency);
        let mut sent: Vec<(u64, usize)> = Vec::new();
        let mut received: Vec<((u64, usize), u64)> = Vec::new();
        for (cycle, &n) in plan.iter().enumerate() {
            let cycle = cycle as u64;
            for i in 0..n.min(bandwidth) {
                tx.write(cycle, (cycle, i)).unwrap();
                sent.push((cycle, i));
            }
            while let Some(v) = rx.read(cycle) {
                received.push((v, cycle));
            }
        }
        // Drain the tail.
        for cycle in plan.len() as u64..plan.len() as u64 + latency + 1 {
            while let Some(v) = rx.read(cycle) {
                received.push((v, cycle));
            }
        }
        prop_assert_eq!(received.len(), sent.len());
        for (i, ((written_cycle, _), arrive_cycle)) in received.iter().enumerate() {
            prop_assert_eq!(&sent[i], &received[i].0, "FIFO order");
            prop_assert_eq!(written_cycle + latency, *arrive_cycle, "exact latency");
        }
    }

    /// Bandwidth can never be exceeded: the (bandwidth+1)-th write in a
    /// cycle always fails, regardless of history.
    #[test]
    fn signal_bandwidth_is_hard(bandwidth in 1usize..5, start in 0u64..100) {
        let (mut tx, _rx) = Signal::<u32>::with_name("p", bandwidth, 1);
        for i in 0..bandwidth {
            prop_assert!(tx.write(start, i as u32).is_ok());
        }
        prop_assert!(tx.write(start, 99).is_err());
        prop_assert!(tx.write(start + 1, 99).is_ok(), "budget resets next cycle");
    }

    /// Trace dump/parse round-trips arbitrary well-formed events.
    #[test]
    fn trace_round_trip(events in proptest::collection::vec((0u64..1000, "[a-z>-]{1,12}", "[ -~&&[^\t]]{0,20}"), 0..20)) {
        let mut t = SignalTrace::new();
        for (cycle, signal, info) in &events {
            t.push(TraceEvent { cycle: *cycle, signal: signal.clone(), info: info.clone() });
        }
        let parsed = SignalTrace::parse(&t.dump());
        prop_assert_eq!(parsed.events(), t.events());
    }
}
