//! Property tests for the simulation framework's core invariants, driven
//! by the crate's own seeded [`TinyRng`] so runs are reproducible offline.

use attila_sim::{Signal, SignalTrace, TinyRng, TraceEvent};

/// Everything written to a signal arrives exactly `latency` cycles later,
/// in FIFO order, when the reader drains every cycle.
#[test]
fn signal_preserves_order_and_latency() {
    for seed in 0..64u64 {
        let mut rng = TinyRng::new(seed);
        let latency = rng.range_u64(0, 8);
        let bandwidth = rng.range_u32(1, 4) as usize;
        let plan: Vec<usize> = (0..32).map(|_| rng.range_u32(0, 4) as usize).collect();

        let (mut tx, mut rx) = Signal::<(u64, usize)>::with_name("p", bandwidth, latency);
        let mut sent: Vec<(u64, usize)> = Vec::new();
        let mut received: Vec<((u64, usize), u64)> = Vec::new();
        for (cycle, &n) in plan.iter().enumerate() {
            let cycle = cycle as u64;
            for i in 0..n.min(bandwidth) {
                tx.write(cycle, (cycle, i)).unwrap();
                sent.push((cycle, i));
            }
            while let Some(v) = rx.read(cycle) {
                received.push((v, cycle));
            }
        }
        // Drain the tail.
        for cycle in plan.len() as u64..plan.len() as u64 + latency + 1 {
            while let Some(v) = rx.read(cycle) {
                received.push((v, cycle));
            }
        }
        assert_eq!(received.len(), sent.len(), "seed {seed}");
        for (i, ((written_cycle, _), arrive_cycle)) in received.iter().enumerate() {
            assert_eq!(&sent[i], &received[i].0, "FIFO order, seed {seed}");
            assert_eq!(written_cycle + latency, *arrive_cycle, "exact latency, seed {seed}");
        }
    }
}

/// Bandwidth can never be exceeded: the (bandwidth+1)-th write in a cycle
/// always fails, regardless of history.
#[test]
fn signal_bandwidth_is_hard() {
    for seed in 0..64u64 {
        let mut rng = TinyRng::new(seed);
        let bandwidth = rng.range_u32(1, 5) as usize;
        let start = rng.range_u64(0, 100);
        let (mut tx, _rx) = Signal::<u32>::with_name("p", bandwidth, 1);
        for i in 0..bandwidth {
            assert!(tx.write(start, i as u32).is_ok(), "seed {seed}");
        }
        assert!(tx.write(start, 99).is_err(), "seed {seed}");
        assert!(tx.write(start + 1, 99).is_ok(), "budget resets next cycle, seed {seed}");
    }
}

/// Trace dump/parse round-trips arbitrary well-formed events.
#[test]
fn trace_round_trip() {
    const SIGNAL_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz>-";
    for seed in 0..64u64 {
        let mut rng = TinyRng::new(seed);
        let count = rng.range_u32(0, 20);
        let mut t = SignalTrace::new();
        for _ in 0..count {
            let cycle = rng.range_u64(0, 1000);
            let signal: String = (0..rng.range_u32(1, 13))
                .map(|_| SIGNAL_CHARS[rng.range_u32(0, SIGNAL_CHARS.len() as u32) as usize] as char)
                .collect();
            // Printable ASCII except tab (the dump field separator).
            let info: String = (0..rng.range_u32(0, 21))
                .map(|_| char::from(rng.range_u32(0x20, 0x7f) as u8))
                .collect();
            t.push(TraceEvent { cycle, signal: signal.into(), info });
        }
        let parsed = SignalTrace::parse(&t.dump());
        assert_eq!(parsed.events(), t.events(), "seed {seed}");
    }
}
