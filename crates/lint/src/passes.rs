//! The lint passes, run over a [`SourceModel`].
//!
//! Rules fall into four groups:
//!
//! * whole-file scans (`hash-iter`, `wall-clock`, plus the structural
//!   parts of `phase-safety`/`phase-unsafe`),
//! * clock-reachability rules rooted at `clock`/`try_step`/`clock_pure`
//!   (`clock-unwrap`, `as-cast`, `hot-alloc`, `shared-mut`, and the
//!   lock-traffic part of `phase-safety`),
//! * horizon-reachability rules rooted at `work_horizon`
//!   (`horizon-purity`),
//! * checkpoint coverage over struct fields (`state-coverage`,
//!   `state-pair`, `state-annotation`).
//!
//! Every suppression consumed by a finding is recorded; the final
//! `unused-allow` pass warns about the rest.

use std::collections::BTreeSet;

use crate::model::{FnInfo, SourceModel};
use crate::{has_narrowing_cast, has_token, is_ident_char, Finding, ScannedFile, Severity, RULES};

/// Crates whose code is clocked per simulated cycle; the allocation rule
/// applies here.
const CLOCKED_CRATES: &[&str] = &["core", "mem", "sim"];

/// Crates holding the clocked boxes themselves. `crates/sim/` is absent:
/// it is the transport layer and owns the sanctioned shared lane (the
/// staged mailbox drained at the barrier).
const BOX_CRATES: &[&str] = &["core", "mem"];

/// The only files that may name `ShardCell`: its definition, the
/// phase-ownership coordinator, and the crate root that re-exports it.
const SHARD_FUNNELS: &[&str] =
    &["crates/core/src/shard.rs", "crates/core/src/gpu.rs", "crates/core/src/lib.rs"];

/// The coordinator file whose barrier machinery (worker failure slots,
/// parked-thread handoff) legitimately uses locks off the hot path.
const COORDINATOR: &str = "crates/core/src/gpu.rs";

/// `state:` annotation kinds that exempt a field from checkpoint
/// coverage: `derived` (rebuilt at elaboration or from other state),
/// `transient` (empty/meaningless at the quiescent checkpoint
/// boundary), `external` (serialized by a different component — the
/// annotation should say which).
const EXEMPT_KINDS: &[&str] = &["derived", "transient", "external"];

/// `state:` annotation kinds that end an exempt section and restore the
/// coverage requirement.
const RESET_KINDS: &[&str] = &["saved", "checkpointed"];

/// Mirror-struct name suffixes that mark a type as a checkpoint payload
/// even without a `save_state` method of its own.
const MIRROR_SUFFIXES: &[&str] = &["State", "Snapshot", "Body", "Dump"];

/// Field types that are wiring, not architectural state: ports, signal
/// endpoints, statistics and configuration are rebuilt at elaboration
/// and never checkpointed.
const WIRING_TYPES: &[&str] = &[
    "PortSender",
    "PortReceiver",
    "SignalWriter",
    "SignalReader",
    "Counter",
    "Gauge",
    "StatsRegistry",
    "TraceSink",
    "FaultInjector",
    "SignalName",
];

/// Method calls that mutate through `&self` (interior mutability,
/// atomics, statistics): forbidden on the horizon path.
const HORIZON_MUT_CALLS: &[&str] = &[
    ".borrow_mut(",
    ".get_mut(",
    ".set(",
    ".put(",
    ".inc(",
    ".store(",
    "fetch_add(",
    "fetch_sub(",
    ".record(",
    ".observe(",
    ".lock(",
];

fn in_crate(path: &str, krate: &str) -> bool {
    // Matched on the path tail so absolute roots work too.
    let needle = format!("crates/{krate}/");
    path.starts_with(&needle) || path.contains(&format!("/{needle}"))
}

fn in_crates(path: &str, crates: &[&str]) -> bool {
    crates.iter().any(|k| in_crate(path, k))
}

fn path_is(path: &str, tail: &str) -> bool {
    path == tail || (path.ends_with(tail) && path[..path.len() - tail.len()].ends_with('/'))
}

/// Emits findings, consuming suppressions and recording which were used.
struct Emitter<'m> {
    files: &'m [ScannedFile],
    findings: Vec<Finding>,
    /// (file index, 0-based allow line, rule) of every consumed allow.
    used: BTreeSet<(usize, usize, String)>,
}

impl Emitter<'_> {
    fn emit(
        &mut self,
        fi: usize,
        line: usize,
        rule: &'static str,
        severity: Severity,
        message: String,
    ) {
        let file = &self.files[fi];
        let mut suppressed = false;
        for l in [Some(line), line.checked_sub(1)].into_iter().flatten() {
            if file.allows.get(&l).is_some_and(|set| set.contains(rule)) {
                self.used.insert((fi, l, rule.to_string()));
                suppressed = true;
            }
        }
        if !suppressed {
            self.findings.push(Finding {
                file: file.path.clone(),
                line: line + 1,
                rule,
                severity,
                message,
            });
        }
    }
}

/// Runs every pass and returns the findings sorted by (file, line, rule).
pub fn run(model: &SourceModel<'_>) -> Vec<Finding> {
    let mut em = Emitter { files: model.files, findings: Vec::new(), used: BTreeSet::new() };

    whole_file_rules(model, &mut em);
    clock_rules(model, &mut em);
    horizon_rules(model, &mut em);
    state_rules(model, &mut em);
    unused_allow_rule(model, &mut em);

    let mut findings = em.findings;
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings.dedup();
    findings
}

fn whole_file_rules(model: &SourceModel<'_>, em: &mut Emitter<'_>) {
    for (fi, file) in model.files.iter().enumerate() {
        let shard_funnel = SHARD_FUNNELS.iter().any(|t| path_is(&file.path, t));
        for (li, line) in file.lines.iter().enumerate() {
            if has_token(line, "HashMap") || has_token(line, "HashSet") {
                em.emit(
                    fi,
                    li,
                    "hash-iter",
                    Severity::Deny,
                    "hash containers iterate in nondeterministic order; use \
                     BTreeMap/BTreeSet in simulator code"
                        .into(),
                );
            }
            if line.contains("Instant::now")
                || has_token(line, "SystemTime")
                || line.contains("std::time::")
            {
                em.emit(
                    fi,
                    li,
                    "wall-clock",
                    Severity::Deny,
                    "wall-clock reads make simulated timing depend on host speed".into(),
                );
            }
            if line.contains("static mut") {
                em.emit(
                    fi,
                    li,
                    "phase-safety",
                    Severity::Deny,
                    "mutable statics are unsynchronized shared state invisible to \
                     the phase-ownership discipline"
                        .into(),
                );
            }
            if !shard_funnel && has_token(line, "ShardCell") {
                em.emit(
                    fi,
                    li,
                    "phase-safety",
                    Severity::Deny,
                    "`ShardCell` may only be touched through its sanctioned \
                     funnels (shard.rs and the gpu.rs coordinator accessors); \
                     route chain-box access through those"
                        .into(),
                );
            }
            unsafe_rule(fi, li, line, &file.path, em);
        }
    }
}

/// `phase-unsafe`: an `unsafe` block or impl is only legal inside
/// `crates/core` and only with a `SAFETY` comment at most two lines
/// above. `unsafe fn` declarations are contracts, not uses — the caller
/// carries the obligation — so they pass.
fn unsafe_rule(fi: usize, li: usize, line: &str, path: &str, em: &mut Emitter<'_>) {
    let Some(pos) = find_token(line, "unsafe") else { return };
    let rest = line[pos + "unsafe".len()..].trim_start();
    if rest.starts_with("fn") && !rest[2..].starts_with(|c: char| is_ident_char(c)) {
        return;
    }
    if !in_crate(path, "core") {
        em.emit(
            fi,
            li,
            "phase-unsafe",
            Severity::Deny,
            "`unsafe` is only sanctioned in crates/core (the ShardCell \
             phase-ownership machinery); this crate must stay safe"
                .into(),
        );
        return;
    }
    if !em.files[fi].safety_nearby(li) {
        em.emit(
            fi,
            li,
            "phase-unsafe",
            Severity::Deny,
            "`unsafe` without a `// SAFETY:` comment directly above; document \
             which phase owns the touched state and why the access cannot race"
                .into(),
        );
    }
}

/// Byte offset of `needle` as a whole token in `hay`, if present.
fn find_token(hay: &str, needle: &str) -> Option<usize> {
    let mut offset = 0usize;
    while let Some(pos) = hay[offset..].find(needle) {
        let abs = offset + pos;
        let before_ok = abs == 0 || !hay[..abs].chars().next_back().is_some_and(is_ident_char);
        let after = abs + needle.len();
        let after_ok =
            after >= hay.len() || !hay[after..].chars().next().is_some_and(is_ident_char);
        if before_ok && after_ok {
            return Some(abs);
        }
        offset = abs + needle.len();
    }
    None
}

fn clock_rules(model: &SourceModel<'_>, em: &mut Emitter<'_>) {
    // `clock`/`try_step` are the serial-loop roots; `clock_pure` is the
    // per-domain step funnel every worker thread runs, which extends the
    // shared-state rules from a name list to a reachability argument
    // over the threaded path as well.
    let roots = model.fns_named(&["clock", "try_step", "clock_pure"]);
    for &idx in &model.reachable(&roots) {
        let info = &model.fns[idx];
        let file = &model.files[info.file];
        let f = &info.func;
        let fallible = f.signature.contains("Result<");
        for li in f.body_start..=f.body_end.min(file.lines.len().saturating_sub(1)) {
            let line = &file.lines[li];
            if fallible
                && (line.contains(".unwrap()")
                    || line.contains(".expect(")
                    || line.contains("panic!")
                    || line.contains("unreachable!"))
            {
                em.emit(
                    info.file,
                    li,
                    "clock-unwrap",
                    Severity::Warn,
                    format!(
                        "`{}` returns Result but this line panics instead of \
                         propagating the error",
                        f.name
                    ),
                );
            }
            if line.contains("addr") && has_narrowing_cast(line) {
                em.emit(
                    info.file,
                    li,
                    "as-cast",
                    Severity::Warn,
                    format!(
                        "narrowing `as` cast in address arithmetic in `{}` can \
                         silently truncate",
                        f.name
                    ),
                );
            }
            // Scoped to the clocked simulator crates: the name-matched
            // call graph over-approximates into trace-compilation code
            // (`attila-gl`, the shader assembler) that shares function
            // names with clock-path helpers but never runs per cycle.
            if in_crates(&file.path, CLOCKED_CRATES)
                && (line.contains("VecDeque::new(")
                    || line.contains("format!(")
                    || line.contains(".to_string()")
                    || line.contains("String::from(")
                    || line.contains(".to_owned()"))
            {
                em.emit(
                    info.file,
                    li,
                    "hot-alloc",
                    Severity::Deny,
                    format!(
                        "allocation on the clock path in `{}`: growable queues \
                         and string building belong at bind time (signal names \
                         are interned; wires preallocate their rings)",
                        f.name
                    ),
                );
            }
            if in_crates(&file.path, BOX_CRATES) {
                if line.contains(".borrow_mut(")
                    || line.contains(".borrow(")
                    || has_token(line, "RefCell")
                    || has_token(line, "Cell")
                {
                    em.emit(
                        info.file,
                        li,
                        "shared-mut",
                        Severity::Deny,
                        format!(
                            "shared interior mutability on the clock path in `{}`: \
                             `Rc<RefCell<..>>`/`Cell<..>` is invisible to the \
                             clock-domain partitioner and can race across domains; \
                             use registered signals or `ShardCell` with a \
                             documented phase owner",
                            f.name
                        ),
                    );
                }
                // Lock traffic on the clocked path deadlocks the cycle
                // barrier; only the gpu.rs coordinator (worker failure
                // slots, parked-thread handoff) may hold locks.
                if !path_is(&file.path, COORDINATOR)
                    && (has_token(line, "Mutex")
                        || has_token(line, "RwLock")
                        || has_token(line, "Condvar")
                        || line.contains(".lock("))
                {
                    em.emit(
                        info.file,
                        li,
                        "phase-safety",
                        Severity::Deny,
                        format!(
                            "lock traffic in clock-reachable `{}`: blocking \
                             inside a domain step can deadlock the cycle \
                             barrier; cross-domain data belongs in signals or \
                             the staged mailbox",
                            f.name
                        ),
                    );
                }
            }
        }
    }
}

/// `horizon-purity`: `work_horizon()` answers "when could you next have
/// work?" and the idle-skip fast-forward trusts it to be a pure read —
/// any side effect makes skipped and unskipped runs diverge.
fn horizon_rules(model: &SourceModel<'_>, em: &mut Emitter<'_>) {
    let roots = model.fns_named(&["work_horizon"]);
    for &idx in &roots {
        let info = &model.fns[idx];
        if info.func.signature.contains("&mut self") {
            em.emit(
                info.file,
                info.func.start_line,
                "horizon-purity",
                Severity::Deny,
                "`work_horizon` must take `&self`: the idle-skip probe may be \
                 called any number of times without changing the machine"
                    .into(),
            );
        }
    }
    for &idx in &model.reachable(&roots) {
        let info = &model.fns[idx];
        let file = &model.files[info.file];
        if !in_crates(&file.path, CLOCKED_CRATES) {
            continue;
        }
        let f = &info.func;
        for li in f.body_start..=f.body_end.min(file.lines.len().saturating_sub(1)) {
            let line = &file.lines[li];
            let trimmed = line.trim_start();
            let self_write = (trimmed.starts_with("self.") || trimmed.starts_with("*self"))
                && has_assignment(trimmed);
            let mut_call = HORIZON_MUT_CALLS.iter().any(|t| line.contains(t));
            if self_write || mut_call {
                em.emit(
                    info.file,
                    li,
                    "horizon-purity",
                    Severity::Deny,
                    format!(
                        "side effect in `{}`, reachable from `work_horizon()`: \
                         the horizon probe must not mutate fields, interior \
                         mutability, or statistics (idle-skip replays it \
                         freely)",
                        f.name
                    ),
                );
            }
        }
    }
}

/// Whether the line contains a (possibly compound) assignment operator.
/// `==`, `!=`, `<=`, `>=` and `=>` are not assignments; `<<=`/`>>=` are
/// missed (documented caveat — they read as `<=`/`>=` to this scan).
fn has_assignment(line: &str) -> bool {
    let chars: Vec<char> = line.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '=' {
            continue;
        }
        let prev = if i > 0 { chars[i - 1] } else { ' ' };
        let next = chars.get(i + 1).copied().unwrap_or(' ');
        if next == '=' || next == '>' {
            continue;
        }
        if matches!(prev, '=' | '!' | '<' | '>') {
            continue;
        }
        return true;
    }
    false
}

/// `state-coverage` / `state-pair` / `state-annotation`: every field of
/// a checkpoint participant must flow through every save and every
/// restore path, or carry a `state:` annotation saying why not.
fn state_rules(model: &SourceModel<'_>, em: &mut Emitter<'_>) {
    for s in &model.structs {
        let file = &model.files[s.file];
        if !in_crates(&file.path, BOX_CRATES) {
            continue;
        }
        let refs = |f: &FnInfo| {
            f.owner.as_deref() == Some(s.name.as_str()) || has_token(&f.func.signature, &s.name)
        };
        let savers: Vec<&FnInfo> = model
            .fns
            .iter()
            .filter(|f| {
                (f.func.name == "save_state"
                    || f.func.name == "to_json"
                    || f.func.name.ends_with("_to_json"))
                    && refs(f)
            })
            .collect();
        let loaders: Vec<&FnInfo> = model
            .fns
            .iter()
            .filter(|f| {
                (f.func.name == "load_state"
                    || f.func.name == "from_json"
                    || f.func.name.ends_with("_from_json"))
                    && refs(f)
            })
            .collect();
        let box_side = savers
            .iter()
            .any(|f| f.func.name == "save_state" && f.owner.as_deref() == Some(s.name.as_str()));
        let mirror = MIRROR_SUFFIXES.iter().any(|suf| s.name.ends_with(suf));
        if savers.is_empty() || loaders.is_empty() || !(box_side || mirror) {
            continue;
        }

        // Validate every `state:` annotation inside the struct span.
        let span_end = s.fields.last().map_or(s.line, |f| f.line);
        for (&nl, kind) in file.state_notes.range(s.line..=span_end) {
            if !EXEMPT_KINDS.contains(&kind.as_str()) && !RESET_KINDS.contains(&kind.as_str()) {
                em.emit(
                    s.file,
                    nl,
                    "state-annotation",
                    Severity::Warn,
                    format!(
                        "unknown state annotation kind `{kind}`; expected one of \
                         derived, transient, external, saved, checkpointed"
                    ),
                );
            }
        }

        for field in &s.fields {
            if box_side && is_wiring(&field.ty) {
                continue;
            }
            if let Some(kind) = field_note(file, s.line, field.line) {
                if EXEMPT_KINDS.contains(&kind) {
                    continue;
                }
            }
            let missing: Vec<String> = savers
                .iter()
                .chain(loaders.iter())
                .filter(|f| !has_token(&f.func.body, &field.name))
                .map(|f| match &f.owner {
                    Some(o) => format!("{o}::{}", f.func.name),
                    None => f.func.name.clone(),
                })
                .collect();
            if missing.is_empty() {
                continue;
            }
            if missing.len() == savers.len() + loaders.len() {
                em.emit(
                    s.file,
                    field.line,
                    "state-coverage",
                    Severity::Deny,
                    format!(
                        "field `{}` of `{}` is not checkpointed: serialize it on \
                         the save and restore paths, or annotate it `// state: \
                         transient` / `// state: derived` with a reason",
                        field.name, s.name
                    ),
                );
            } else {
                em.emit(
                    s.file,
                    field.line,
                    "state-pair",
                    Severity::Deny,
                    format!(
                        "field `{}` of `{}` is missing from {} but present on the \
                         other checkpoint paths — save and restore have drifted",
                        field.name,
                        s.name,
                        missing.join(", ")
                    ),
                );
            }
        }
    }
}

/// Token-splits a type text and reports whether any token is a wiring
/// type (ports, signals, stats, config): elaboration-time plumbing, not
/// architectural state.
fn is_wiring(ty: &str) -> bool {
    let mut rest = ty;
    while !rest.is_empty() {
        let start = rest.find(|c: char| is_ident_char(c));
        let Some(start) = start else { break };
        let end = rest[start..]
            .find(|c: char| !is_ident_char(c))
            .map_or(rest.len(), |e| start + e);
        let tok = &rest[start..end];
        if WIRING_TYPES.contains(&tok) || tok.ends_with("Config") {
            return true;
        }
        rest = &rest[end..];
    }
    false
}

/// Resolves the `state:` annotation governing a field: a trailing
/// annotation on the field's own line wins; otherwise the nearest
/// standalone (comment-only) `state:` line above it inside the struct
/// opens a section that covers every following field until the next
/// `state:` line.
fn field_note(file: &ScannedFile, struct_line: usize, field_line: usize) -> Option<&str> {
    if let Some(kind) = file.state_notes.get(&field_line) {
        return Some(kind);
    }
    let mut section: Option<&str> = None;
    for (&nl, kind) in file.state_notes.range(struct_line..field_line) {
        let standalone = file.lines.get(nl).is_none_or(|l| l.trim().is_empty());
        if standalone {
            section = Some(kind);
        }
    }
    section
}

/// `unused-allow`: every suppression must still be earning its keep.
fn unused_allow_rule(model: &SourceModel<'_>, em: &mut Emitter<'_>) {
    let mut stale: Vec<(usize, usize, String)> = Vec::new();
    for (fi, file) in model.files.iter().enumerate() {
        for (&line, rules) in &file.allows {
            for rule in rules {
                if !em.used.contains(&(fi, line, rule.clone())) {
                    stale.push((fi, line, rule.clone()));
                }
            }
        }
    }
    for (fi, line, rule) in stale {
        let message = if RULES.contains(&rule.as_str()) {
            format!("suppression `lint:allow({rule})` matches no finding; remove it")
        } else {
            format!("suppression names unknown rule `{rule}`")
        };
        em.emit(fi, line, "unused-allow", Severity::Warn, message);
    }
}
