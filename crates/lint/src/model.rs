//! A lightweight struct/impl-aware model of the workspace source.
//!
//! The same token-scanner philosophy as the rest of the linter — no full
//! parser, no type checking — but enough structure for whole-program
//! passes: which structs exist and what fields they declare, which
//! functions exist and which `impl` block owns them, and a name-matched
//! call graph with generic reachability queries.
//!
//! Soundness caveats (documented in DESIGN.md §21): calls are matched by
//! bare name, so reachability over-approximates across same-named
//! methods; field/serializer coverage is matched by token, so a local
//! variable shadowing a field name counts as coverage; macro-generated
//! items are invisible. The passes are tuned so over-approximation errs
//! toward false positives on safety rules (suppressible inline) and
//! false negatives on coverage rules (caught by the runtime
//! differentials the linter merely front-runs).

use std::collections::{BTreeMap, BTreeSet};

use crate::{callees, extract_functions, is_ident_char, Function, ScannedFile};

/// One function plus its location and owning `impl` type, if any.
#[derive(Debug)]
pub struct FnInfo {
    /// Index into the scanned-file slice.
    pub file: usize,
    /// The innermost `impl` block's type name containing this function
    /// (`impl Streamer` and `impl SimBox for Streamer` both own as
    /// `Streamer`), or `None` for free functions.
    pub owner: Option<String>,
    /// The extracted function.
    pub func: Function,
}

/// One declared field of a braced struct.
#[derive(Debug)]
pub struct FieldInfo {
    /// Field name.
    pub name: String,
    /// The field's type text (everything after the `:`), whitespace
    /// included — matched by token, never parsed.
    pub ty: String,
    /// 0-based line of the field name.
    pub line: usize,
}

/// One braced struct and its declared fields. Tuple and unit structs are
/// not modeled (no named fields to cover).
#[derive(Debug)]
pub struct StructInfo {
    /// Index into the scanned-file slice.
    pub file: usize,
    /// Struct name.
    pub name: String,
    /// 0-based line of the `struct` keyword.
    pub line: usize,
    /// Declared fields in source order.
    pub fields: Vec<FieldInfo>,
}

/// The whole-workspace source model: every function with its impl owner,
/// every braced struct with its fields, and a name index for call-graph
/// walks.
pub struct SourceModel<'a> {
    /// The scanned files the model was built from.
    pub files: &'a [ScannedFile],
    /// Every extracted function.
    pub fns: Vec<FnInfo>,
    /// Every braced struct.
    pub structs: Vec<StructInfo>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl<'a> SourceModel<'a> {
    /// Builds the model. Cost is one extra scan per file on top of what
    /// `lint()` already did — still milliseconds for the workspace.
    pub fn build(files: &'a [ScannedFile]) -> Self {
        let mut fns = Vec::new();
        let mut structs = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            let impls = extract_impls(&file.lines);
            for func in extract_functions(&file.lines) {
                let owner = impls
                    .iter()
                    .filter(|b| (b.start..=b.end).contains(&func.start_line))
                    .min_by_key(|b| b.end - b.start)
                    .map(|b| b.owner.clone());
                fns.push(FnInfo { file: fi, owner, func });
            }
            structs.extend(extract_structs(fi, &file.lines));
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            by_name.entry(f.func.name.clone()).or_default().push(idx);
        }
        SourceModel { files, fns, structs, by_name }
    }

    /// Indices of every function with one of the given bare names.
    pub fn fns_named(&self, names: &[&str]) -> Vec<usize> {
        let mut out: Vec<usize> = names
            .iter()
            .filter_map(|n| self.by_name.get(*n))
            .flatten()
            .copied()
            .collect();
        out.sort_unstable();
        out
    }

    /// The set of functions reachable from `roots` through the
    /// name-matched call graph (roots included).
    pub fn reachable(&self, roots: &[usize]) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue: Vec<usize> = roots.to_vec();
        while let Some(idx) = queue.pop() {
            if !seen.insert(idx) {
                continue;
            }
            for callee in callees(&self.fns[idx].func.body) {
                if let Some(targets) = self.by_name.get(&callee) {
                    for &t in targets {
                        if !seen.contains(&t) {
                            queue.push(t);
                        }
                    }
                }
            }
        }
        seen
    }
}

/// One `impl` block: the type it implements for and its 0-based line
/// span.
#[derive(Debug)]
struct ImplBlock {
    owner: String,
    start: usize,
    end: usize,
}

/// Builds the char-index → 0-based-line table used by all extractors.
fn line_table(chars: &[char]) -> Vec<usize> {
    let mut line_of = Vec::with_capacity(chars.len() + 1);
    let mut ln = 0usize;
    for &c in chars {
        line_of.push(ln);
        if c == '\n' {
            ln += 1;
        }
    }
    line_of.push(ln);
    line_of
}

/// Reads a type path at `i` (skipping `&`, `mut`, `dyn` and path
/// segments) and returns the last plain identifier plus the index after
/// the whole path (generics consumed). Returns `None` if no identifier
/// is found.
fn read_type_name(chars: &[char], mut i: usize) -> Option<(String, usize)> {
    let mut last = String::new();
    loop {
        while i < chars.len() && (chars[i].is_whitespace() || chars[i] == '&') {
            i += 1;
        }
        let start = i;
        while i < chars.len() && is_ident_char(chars[i]) {
            i += 1;
        }
        if i == start {
            return if last.is_empty() { None } else { Some((last, i)) };
        }
        let word: String = chars[start..i].iter().collect();
        if word == "mut" || word == "dyn" {
            continue;
        }
        last = word;
        // Swallow a generic argument list, tracking `->` so closure
        // types inside generics don't unbalance the count.
        if chars.get(i) == Some(&'<') {
            let mut depth = 0i64;
            while i < chars.len() {
                match chars[i] {
                    '<' => depth += 1,
                    '>' if i > 0 && chars[i - 1] == '-' => {}
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        if chars.get(i) == Some(&':') && chars.get(i + 1) == Some(&':') {
            i += 2;
            continue;
        }
        return Some((last, i));
    }
}

/// Extracts every `impl` block's owner type and line span from a
/// stripped file. `impl` in argument or return position (`impl Trait`)
/// is rejected by looking at what precedes the keyword: a block opener
/// may only follow `}`, `;`, `]`, `{`, the start of the file, or the
/// word `unsafe`.
fn extract_impls(lines: &[String]) -> Vec<ImplBlock> {
    let text: String = lines.join("\n");
    let chars: Vec<char> = text.chars().collect();
    let line_of = line_table(&chars);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 4 <= chars.len() {
        let boundary = (i == 0 || !is_ident_char(chars[i - 1]))
            && chars[i..].starts_with(&['i', 'm', 'p', 'l'])
            && !chars.get(i + 4).copied().is_some_and(is_ident_char);
        if !boundary {
            i += 1;
            continue;
        }
        if !impl_position_ok(&chars, i) {
            i += 4;
            continue;
        }
        let kw = i;
        let mut j = i + 4;
        // Generic parameters on the impl itself.
        if chars.get(j).copied().is_some_and(char::is_whitespace) || chars.get(j) == Some(&'<') {
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            if chars.get(j) == Some(&'<') {
                let mut depth = 0i64;
                while j < chars.len() {
                    match chars[j] {
                        '<' => depth += 1,
                        '>' if j > 0 && chars[j - 1] == '-' => {}
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
        }
        // First type: either the self type or a trait name.
        let Some((first, after)) = read_type_name(&chars, j) else {
            i = kw + 4;
            continue;
        };
        let mut owner = first;
        j = after;
        while j < chars.len() && chars[j].is_whitespace() {
            j += 1;
        }
        // `impl Trait for Type`: the owner is the type after `for`.
        if chars[j..].starts_with(&['f', 'o', 'r'])
            && !chars.get(j + 3).copied().is_some_and(is_ident_char)
        {
            if let Some((ty, after_ty)) = read_type_name(&chars, j + 3) {
                owner = ty;
                j = after_ty;
            }
        }
        // Skip the where clause (brace-free in impl headers) to the body.
        while j < chars.len() && chars[j] != '{' && chars[j] != ';' {
            j += 1;
        }
        if j >= chars.len() || chars[j] == ';' {
            i = j.max(kw + 4);
            continue;
        }
        let open = j;
        let mut depth = 0i64;
        while j < chars.len() {
            match chars[j] {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let close = j.min(chars.len() - 1);
        out.push(ImplBlock { owner, start: line_of[kw], end: line_of[close] });
        i = open + 1;
    }
    out
}

/// Whether an `impl` keyword at `i` is in item position (a block) rather
/// than type position (`fn f(x: impl Trait) -> impl Iterator`).
fn impl_position_ok(chars: &[char], i: usize) -> bool {
    let mut j = i;
    while j > 0 && chars[j - 1].is_whitespace() {
        j -= 1;
    }
    if j == 0 {
        return true;
    }
    let prev = chars[j - 1];
    if is_ident_char(prev) {
        // The only identifier that may precede an impl block is
        // `unsafe`; `mut impl`/`dyn impl` and the like are type uses.
        let mut k = j;
        while k > 0 && is_ident_char(chars[k - 1]) {
            k -= 1;
        }
        let word: String = chars[k..j].iter().collect();
        return word == "unsafe";
    }
    matches!(prev, '}' | ';' | ']' | '{')
}

/// Extracts every braced struct and its fields from a stripped file.
fn extract_structs(file: usize, lines: &[String]) -> Vec<StructInfo> {
    let text: String = lines.join("\n");
    let chars: Vec<char> = text.chars().collect();
    let line_of = line_table(&chars);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 6 <= chars.len() {
        let boundary = (i == 0 || !is_ident_char(chars[i - 1]))
            && chars[i..].starts_with(&['s', 't', 'r', 'u', 'c', 't'])
            && chars.get(i + 6).copied().is_some_and(char::is_whitespace);
        if !boundary {
            i += 1;
            continue;
        }
        let kw = i;
        let mut j = i + 6;
        while j < chars.len() && chars[j].is_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < chars.len() && is_ident_char(chars[j]) {
            j += 1;
        }
        if j == name_start {
            i = kw + 6;
            continue;
        }
        let name: String = chars[name_start..j].iter().collect();
        // Find the body opener, skipping generics and where clauses.
        // `(` or `;` first means a tuple/unit struct: skip it.
        let mut angle = 0i64;
        let mut opener = None;
        while j < chars.len() {
            match chars[j] {
                '<' => angle += 1,
                '>' if j > 0 && chars[j - 1] == '-' => {}
                '>' => angle -= 1,
                '{' if angle == 0 => {
                    opener = Some(j);
                    break;
                }
                '(' | ';' if angle == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = opener else {
            i = j.max(kw + 6);
            continue;
        };
        let (fields, close) = parse_fields(&chars, &line_of, open);
        out.push(StructInfo { file, name, line: line_of[kw], fields });
        i = close.max(open + 1);
    }
    out
}

/// Parses the `name: Type` fields between the braces starting at `open`.
/// Returns the fields and the index of the closing brace.
fn parse_fields(chars: &[char], line_of: &[usize], open: usize) -> (Vec<FieldInfo>, usize) {
    let mut fields = Vec::new();
    let mut depth_brace = 0i64;
    let mut depth_paren = 0i64;
    let mut depth_bracket = 0i64;
    let mut depth_angle = 0i64;
    let mut span_start = open + 1;
    let mut j = open;
    let mut close = chars.len().saturating_sub(1);
    while j < chars.len() {
        let at_field_level =
            depth_brace == 1 && depth_paren == 0 && depth_bracket == 0 && depth_angle == 0;
        match chars[j] {
            '{' => {
                depth_brace += 1;
            }
            '}' => {
                depth_brace -= 1;
                if depth_brace == 0 {
                    if let Some(f) = parse_one_field(chars, line_of, span_start, j) {
                        fields.push(f);
                    }
                    close = j;
                    break;
                }
            }
            '(' => depth_paren += 1,
            ')' => depth_paren -= 1,
            '[' => depth_bracket += 1,
            ']' => depth_bracket -= 1,
            '<' if depth_paren == 0 && depth_bracket == 0 => depth_angle += 1,
            '>' if j > 0 && chars[j - 1] == '-' => {}
            '>' if depth_paren == 0 && depth_bracket == 0 && depth_angle > 0 => depth_angle -= 1,
            ',' if at_field_level => {
                if let Some(f) = parse_one_field(chars, line_of, span_start, j) {
                    fields.push(f);
                }
                span_start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    (fields, close)
}

/// Parses one comma-separated field span: optional attributes, optional
/// `pub(...)`, then `name: Type`. Spans that don't look like a field
/// (trailing whitespace after the last comma) yield `None`.
fn parse_one_field(
    chars: &[char],
    line_of: &[usize],
    start: usize,
    end: usize,
) -> Option<FieldInfo> {
    let mut i = start;
    loop {
        while i < end && chars[i].is_whitespace() {
            i += 1;
        }
        if chars.get(i) == Some(&'#') {
            // Attribute: `#[...]` with balanced brackets.
            i += 1;
            if chars.get(i) == Some(&'[') {
                let mut depth = 0i64;
                while i < end {
                    match chars[i] {
                        '[' => depth += 1,
                        ']' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            continue;
        }
        break;
    }
    let word_start = i;
    while i < end && is_ident_char(chars[i]) {
        i += 1;
    }
    let mut name: String = chars[word_start..i].iter().collect();
    let mut name_at = word_start;
    if name == "pub" {
        if chars.get(i) == Some(&'(') {
            let mut depth = 0i64;
            while i < end {
                match chars[i] {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        while i < end && chars[i].is_whitespace() {
            i += 1;
        }
        name_at = i;
        let start2 = i;
        while i < end && is_ident_char(chars[i]) {
            i += 1;
        }
        name = chars[start2..i].iter().collect();
    }
    if name.is_empty() {
        return None;
    }
    while i < end && chars[i].is_whitespace() {
        i += 1;
    }
    if chars.get(i) != Some(&':') {
        return None;
    }
    let ty: String = chars[i + 1..end].iter().collect();
    Some(FieldInfo { name, ty: ty.trim().to_string(), line: line_of[name_at] })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> ScannedFile {
        ScannedFile::new("crates/core/src/test.rs", src)
    }

    #[test]
    fn impl_owner_is_resolved_including_trait_impls() {
        let f = file(
            "struct Foo { x: u8 }\n\
             impl Foo {\n    fn a(&self) {}\n}\n\
             impl Bar for Foo {\n    fn b(&self) {}\n}\n\
             impl<T: Clone> Baz<T> for Foo {\n    fn c(&self) {}\n}\n\
             fn free() {}\n",
        );
        let m = SourceModel::build(std::slice::from_ref(&f));
        let owner_of = |name: &str| {
            m.fns
                .iter()
                .find(|fi| fi.func.name == name)
                .and_then(|fi| fi.owner.clone())
        };
        assert_eq!(owner_of("a").as_deref(), Some("Foo"));
        assert_eq!(owner_of("b").as_deref(), Some("Foo"));
        assert_eq!(owner_of("c").as_deref(), Some("Foo"));
        assert_eq!(owner_of("free"), None);
    }

    #[test]
    fn impl_trait_in_signatures_is_not_a_block() {
        let f = file(
            "impl Foo {\n\
                 fn iter(&self) -> impl Iterator<Item = u8> + '_ {\n\
                     self.xs.iter().copied()\n\
                 }\n\
                 fn take(x: impl Into<String>) {}\n\
                 fn after(&self) {}\n\
             }\n",
        );
        let m = SourceModel::build(std::slice::from_ref(&f));
        for name in ["iter", "take", "after"] {
            let fi = m.fns.iter().find(|fi| fi.func.name == name).unwrap();
            assert_eq!(fi.owner.as_deref(), Some("Foo"), "{name}");
        }
    }

    #[test]
    fn struct_fields_are_extracted_with_types_and_lines() {
        let f = file(
            "pub struct Streamer {\n\
                 pub(crate) config: StreamerConfig,\n\
                 active: Option<ActiveBatch>,\n\
                 table: [Entry; 16],\n\
                 cb: Box<dyn Fn(u8) -> u8>,\n\
             }\n\
             struct Unit;\n\
             struct Tuple(u8, u16);\n",
        );
        let m = SourceModel::build(std::slice::from_ref(&f));
        assert_eq!(m.structs.len(), 1, "{:?}", m.structs);
        let s = &m.structs[0];
        assert_eq!(s.name, "Streamer");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["config", "active", "table", "cb"]);
        assert_eq!(s.fields[0].ty, "StreamerConfig");
        assert_eq!(s.fields[1].line, 2);
    }

    #[test]
    fn generic_struct_with_where_clause_parses() {
        let f = file(
            "struct Ring<T: Clone>\n\
             where\n    T: Default,\n\
             {\n    slots: Vec<T>,\n    head: usize,\n}\n",
        );
        let m = SourceModel::build(std::slice::from_ref(&f));
        assert_eq!(m.structs.len(), 1);
        let names: Vec<&str> = m.structs[0].fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["slots", "head"]);
    }

    #[test]
    fn reachability_walks_the_call_graph() {
        let f = file(
            "fn clock_pure() { step_one(); }\n\
             fn step_one() { leaf(); }\n\
             fn leaf() {}\n\
             fn unrelated() { leaf(); }\n",
        );
        let m = SourceModel::build(std::slice::from_ref(&f));
        let roots = m.fns_named(&["clock_pure"]);
        let reach = m.reachable(&roots);
        let names: Vec<&str> =
            reach.iter().map(|&i| m.fns[i].func.name.as_str()).collect();
        assert_eq!(names, ["clock_pure", "step_one", "leaf"]);
    }
}
