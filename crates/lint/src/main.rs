//! `attila-lint` — run the source determinism linter over the workspace.
//!
//! ```sh
//! cargo run -p attila-lint                    # lint the current tree
//! cargo run -p attila-lint -- --deny-warnings # CI mode
//! cargo run -p attila-lint -- path/to/repo
//! ```
//!
//! Exits 1 when any deny-severity finding survives suppression (or any
//! finding at all under `--deny-warnings`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use attila_lint::{lint, Finding, ScannedFile, Severity};

/// Directories that hold non-simulated code: tests and benches may use
/// hash containers and wall clocks freely, and `crates/bench` *is* the
/// wall-clock harness.
const SKIP_DIRS: &[&str] = &["target", ".git", "tests", "benches", "examples", "bench"];

/// Collects every `.rs` file under `root` in sorted (deterministic)
/// order, skipping non-simulated directories.
fn collect_files(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(root)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn run() -> Result<(Vec<Finding>, usize), String> {
    let mut deny_warnings = false;
    let mut root = PathBuf::from(".");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => {
                println!("usage: attila-lint [--deny-warnings] [root]");
                std::process::exit(0);
            }
            other if !other.starts_with("--") => root = PathBuf::from(other),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    let mut paths = Vec::new();
    collect_files(&root, &mut paths).map_err(|e| format!("{}: {e}", root.display()))?;
    let mut files = Vec::new();
    for path in &paths {
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path.strip_prefix(&root).unwrap_or(path);
        files.push(ScannedFile::new(&rel.display().to_string(), &source));
    }

    let findings = lint(&files);
    for f in &findings {
        println!("{f}");
    }
    let denies = findings.iter().filter(|f| f.severity == Severity::Deny).count();
    let warns = findings.len() - denies;
    println!(
        "attila-lint: {} file(s), {denies} deny, {warns} warn{}",
        files.len(),
        if deny_warnings { " (--deny-warnings)" } else { "" }
    );
    let failures = denies + if deny_warnings { warns } else { 0 };
    Ok((findings, failures))
}

fn main() -> ExitCode {
    match run() {
        Ok((_, 0)) => ExitCode::SUCCESS,
        Ok((_, _)) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
