//! `attila-lint` — run the source determinism linter over the workspace.
//!
//! ```sh
//! cargo run -p attila-lint                    # lint the current tree
//! cargo run -p attila-lint -- --deny-warnings # CI mode
//! cargo run -p attila-lint -- --report out.txt path/to/repo
//! ```
//!
//! Exits 1 when any deny-severity finding survives suppression (or any
//! finding at all under `--deny-warnings`). The same passes are also
//! reachable as `attila lint --source` from the main binary.

use std::path::PathBuf;
use std::process::ExitCode;

use attila_lint::{lint, render_report, scan_workspace, Severity};

fn run() -> Result<usize, String> {
    let mut deny_warnings = false;
    let mut report: Option<PathBuf> = None;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--report" => {
                let path = args.next().ok_or("--report needs a file path")?;
                report = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!("usage: attila-lint [--deny-warnings] [--report <path>] [root]");
                std::process::exit(0);
            }
            other if !other.starts_with("--") => root = PathBuf::from(other),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    let files =
        scan_workspace(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let findings = lint(&files);
    let text = render_report(&findings, files.len(), deny_warnings);
    print!("{text}");
    if let Some(path) = &report {
        std::fs::write(path, &text).map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    let denies = findings.iter().filter(|f| f.severity == Severity::Deny).count();
    let warns = findings.len() - denies;
    Ok(denies + if deny_warnings { warns } else { 0 })
}

fn main() -> ExitCode {
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
