//! Source determinism linter for the ATTILA workspace.
//!
//! The architecture verifier in `attila-sim` checks the *elaborated*
//! design; this crate checks the *source* for the bug classes that have
//! actually bitten the simulator — most famously the PR-2 texture-fill
//! nondeterminism, where iterating a `HashSet` issued memory requests in
//! hash order and made cycle counts vary run to run.
//!
//! It is deliberately not a compiler plugin: a dependency-free line and
//! token scanner that strips comments and strings, skips `#[cfg(test)]`
//! blocks, extracts functions, and walks a name-based call graph rooted
//! at the `clock`/`try_step` methods to decide which code is on the
//! simulated path. That keeps it fast (whole workspace in milliseconds)
//! and buildable with zero external crates, at the cost of being a
//! heuristic: it over-approximates reachability and matches callees by
//! name. False positives are expected and handled by inline
//! suppressions:
//!
//! ```text
//! // lint:allow(clock-unwrap) invariant: slots reserved above
//! mem.submit(req).expect("slots reserved");
//! ```
//!
//! A suppression applies to its own line and the line directly below it.
//! Suppressions are themselves linted: an allow that never matches a
//! finding is reported as `unused-allow` so stale escapes cannot rot.
//!
//! # Rules
//!
//! | rule             | severity | fires on |
//! |------------------|----------|----------|
//! | `hash-iter`      | deny     | `HashMap`/`HashSet` tokens in non-test simulator code |
//! | `wall-clock`     | deny     | `Instant::now` / `SystemTime` / `std::time::` tokens |
//! | `clock-unwrap`   | warn     | `.unwrap()` / `.expect(` / `panic!` in clock-reachable functions that return `Result` |
//! | `as-cast`        | warn     | narrowing `as` casts on lines doing address arithmetic in clock-reachable functions |
//! | `hot-alloc`      | deny     | growable-container construction (`VecDeque::new`) and `String` building (`format!`, `.to_string()`, `String::from`, `.to_owned()`) in clock-reachable functions |
//! | `shared-mut`     | deny     | `RefCell`/`Cell` tokens or `.borrow()`/`.borrow_mut()` calls in clock- or domain-step-reachable functions of the clocked box crates |
//! | `state-coverage` | deny     | a field of a checkpoint-participating struct that is neither serialized nor annotated `// state: derived` / `// state: transient` |
//! | `state-pair`     | deny     | a field covered by *some* but not *all* of its save/restore paths (checkpoint drift) |
//! | `state-annotation`| warn    | a `// state:` annotation whose kind is not `derived` or `transient` |
//! | `phase-safety`   | deny     | `static mut`, `ShardCell` dereferenced outside its sanctioned funnels, or lock traffic reachable from the threaded domain-step entry points |
//! | `phase-unsafe`   | deny     | an `unsafe` block or impl outside `crates/core`, or inside it without a `// SAFETY:` comment directly above |
//! | `horizon-purity` | deny     | field mutation, interior mutability or statistic writes reachable from any `work_horizon()` |
//! | `unused-allow`   | warn     | a `lint:allow(...)` suppression that no longer matches any finding |
//!
//! The three v2 passes (`state-*`, `phase-*`, `horizon-purity`) run on a
//! lightweight struct/impl-aware model of the workspace ([`model`]) and
//! are documented in detail in `DESIGN.md` §21.
//!
//! The `hot-alloc` rule guards the zero-allocation signal transport: the
//! per-cycle path must never build strings (signal names are interned
//! handles) or spin up growable queues (wires preallocate their rings at
//! bind time). Construction-time code (`new`, `with_name`, binders) is
//! not clock-reachable and stays free to allocate.
//!
//! The `shared-mut` rule guards the clock-domain scheduler: a box whose
//! `clock()` reaches an `Rc<RefCell<…>>` or `Cell<…>` has hidden shared
//! state that the min-cut partitioner cannot see, so two domains could
//! race through it. Boxes must communicate through registered signals
//! (which the partitioner counts) or `ShardCell` (whose phase-ownership
//! discipline is documented at each access). The rule is scoped to
//! `crates/core/` and `crates/mem/` — `crates/sim/` is the sanctioned
//! transport layer and owns the one legitimate shared lane (the staged
//! mailbox, drained single-threaded at the cycle barrier).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

pub mod model;
pub mod passes;

/// Every rule identifier the linter can emit. `lint:allow(...)` of a
/// name outside this list is reported as an unknown-rule suppression.
pub const RULES: &[&str] = &[
    "hash-iter",
    "wall-clock",
    "clock-unwrap",
    "as-cast",
    "hot-alloc",
    "shared-mut",
    "state-coverage",
    "state-pair",
    "state-annotation",
    "phase-safety",
    "phase-unsafe",
    "horizon-purity",
    "unused-allow",
];

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Must be fixed (or explicitly suppressed): the linter exits nonzero.
    Deny,
    /// Suspicious; fails the run only under `--deny-warnings`.
    Warn,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Deny => write!(f, "deny"),
            Severity::Warn => write!(f, "warn"),
        }
    }
}

/// One lint finding, pointing at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier, usable in `lint:allow(...)`.
    pub rule: &'static str,
    /// Deny or warn.
    pub severity: Severity,
    /// Why the line was flagged.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}: {}",
            self.severity, self.rule, self.file, self.line, self.message
        )
    }
}

/// A source file ready for linting: comments and string contents blanked,
/// test modules removed, suppression annotations collected.
#[derive(Debug)]
pub struct ScannedFile {
    /// Repo-relative path.
    pub path: String,
    /// The stripped source, one entry per physical line.
    pub lines: Vec<String>,
    /// `lint:allow(rule)` annotations by 0-based line number.
    pub allows: BTreeMap<usize, BTreeSet<String>>,
    /// `state: <kind>` field annotations by 0-based line number. The kind
    /// is the first word after the colon (`derived`, `transient`, ...).
    pub state_notes: BTreeMap<usize, String>,
    /// 0-based lines whose comment text contains `SAFETY` — the
    /// obligation-discharge markers required next to `unsafe` blocks.
    pub safety_lines: BTreeSet<usize>,
}

impl ScannedFile {
    /// Strips `source` and removes `#[cfg(test)]` items.
    pub fn new(path: &str, source: &str) -> Self {
        let mut s = strip(source);
        blank_test_items(&mut s.lines);
        ScannedFile {
            path: path.to_string(),
            lines: s.lines,
            allows: s.allows,
            state_notes: s.state_notes,
            safety_lines: s.safety_lines,
        }
    }

    /// Whether `rule` is suppressed on 0-based line `line` (annotation on
    /// the same line or the one above).
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        let hit = |l: usize| self.allows.get(&l).is_some_and(|set| set.contains(rule));
        hit(line) || (line > 0 && hit(line - 1))
    }

    /// The `// state: <kind>` annotation covering 0-based line `line`
    /// (on the same line or the one above), if any.
    pub fn state_note(&self, line: usize) -> Option<&str> {
        self.state_notes
            .get(&line)
            .or_else(|| line.checked_sub(1).and_then(|l| self.state_notes.get(&l)))
            .map(String::as_str)
    }

    /// Whether a `SAFETY` comment covers `line`: on the line itself
    /// (trailing) or anywhere in the contiguous run of comment/blank
    /// lines directly above it — multi-line `// SAFETY:` blocks carry
    /// the marker only on their first line.
    pub fn safety_nearby(&self, line: usize) -> bool {
        if self.safety_lines.contains(&line) {
            return true;
        }
        let mut l = line;
        while l > 0 {
            l -= 1;
            if self.safety_lines.contains(&l) {
                return true;
            }
            // Stop at the first line that holds actual code: stripped
            // comment-only lines are empty.
            if !self.lines.get(l).is_some_and(|s| s.trim().is_empty()) {
                return false;
            }
        }
        false
    }
}

/// Collector for the stripped view of one source file.
struct Stripped {
    lines: Vec<String>,
    allows: BTreeMap<usize, BTreeSet<String>>,
    state_notes: BTreeMap<usize, String>,
    safety_lines: BTreeSet<usize>,
}

/// Records every `lint:allow(a, b)` occurrence in a comment's text.
fn record_allows(text: &str, line: usize, allows: &mut BTreeMap<usize, BTreeSet<String>>) {
    let mut rest = text;
    while let Some(pos) = rest.find("lint:allow(") {
        let after = &rest[pos + "lint:allow(".len()..];
        let Some(end) = after.find(')') else { break };
        for rule in after[..end].split(',') {
            allows.entry(line).or_default().insert(rule.trim().to_string());
        }
        rest = &after[end + 1..];
    }
}

/// Processes one comment's text: suppressions, `state:` annotations and
/// `SAFETY` markers. Doc comments (`///`, `//!`) are documentation, not
/// annotations — a rendered example like `lint:allow(rule)` in rustdoc
/// must not suppress anything. `state:` must lead the comment (after
/// `/`, `*`, `!` decoration) so prose like "machine state: all of it"
/// is not an annotation; the kind is the first word after the colon.
fn record_comment(text: &str, line: usize, s: &mut Stripped) {
    if text.starts_with("///") || text.starts_with("//!") {
        return;
    }
    record_allows(text, line, &mut s.allows);
    let lead = text.trim_start_matches(['/', '*', '!', ' ', '\t']);
    if let Some(rest) = lead.strip_prefix("state:") {
        let kind: String = rest.trim_start().chars().take_while(|&c| is_ident_char(c)).collect();
        if !kind.is_empty() {
            s.state_notes.insert(line, kind);
        }
    }
    if text.contains("SAFETY") {
        s.safety_lines.insert(line);
    }
}

/// Blanks comments and string/char-literal contents, preserving the line
/// structure, and collects suppression/state/SAFETY annotations from
/// comment text.
fn strip(source: &str) -> Stripped {
    let chars: Vec<char> = source.chars().collect();
    let mut s = Stripped {
        lines: Vec::new(),
        allows: BTreeMap::new(),
        state_notes: BTreeMap::new(),
        safety_lines: BTreeSet::new(),
    };
    let mut cur = String::new();
    let mut line = 0usize;
    let mut i = 0usize;
    let newline = |s: &mut Stripped, cur: &mut String, line: &mut usize| {
        s.lines.push(std::mem::take(cur));
        *line += 1;
    };
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '/' if next == Some('/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                record_comment(&text, line, &mut s);
            }
            '/' if next == Some('*') => {
                let mut depth = 1usize;
                let mut text = String::new();
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else if chars[i] == '\n' {
                        record_comment(&text, line, &mut s);
                        text.clear();
                        newline(&mut s, &mut cur, &mut line);
                        i += 1;
                    } else {
                        text.push(chars[i]);
                        i += 1;
                    }
                }
                record_comment(&text, line, &mut s);
            }
            '"' => {
                // Ordinary string literal: keep the quotes, blank the rest.
                cur.push('"');
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            cur.push('"');
                            i += 1;
                            break;
                        }
                        '\n' => {
                            newline(&mut s, &mut cur, &mut line);
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            'r' if matches!(next, Some('"') | Some('#')) && {
                // Raw string: `r` + zero or more `#` + `"`. Anything else
                // (e.g. the raw identifier `r#fn`) is left alone.
                let mut j = i + 1;
                while chars.get(j) == Some(&'#') {
                    j += 1;
                }
                chars.get(j) == Some(&'"')
            } =>
            {
                let mut hashes = 0usize;
                let mut j = i + 1;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                cur.push('"');
                i = j + 1; // past the opening quote
                'raw: while i < chars.len() {
                    if chars[i] == '"' {
                        let mut k = 0;
                        while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            cur.push('"');
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    if chars[i] == '\n' {
                        newline(&mut s, &mut cur, &mut line);
                    }
                    i += 1;
                }
            }
            '\'' => {
                // Char literal or lifetime. `'\x'`/`'x'` are literals;
                // `'ident` (no closing quote right after) is a lifetime.
                if next == Some('\\') {
                    cur.push('\'');
                    i += 2; // consume the backslash
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                    cur.push('\'');
                    i += 1;
                } else if chars.get(i + 2) == Some(&'\'') {
                    cur.push_str("''");
                    i += 3;
                } else {
                    cur.push('\'');
                    i += 1;
                }
            }
            '\n' => {
                newline(&mut s, &mut cur, &mut line);
                i += 1;
            }
            _ => {
                cur.push(c);
                i += 1;
            }
        }
    }
    if !cur.is_empty() {
        s.lines.push(cur);
    }
    s
}

/// Blanks every item annotated `#[cfg(test)]` — in practice the test
/// modules at the bottom of each file — so test-only code is exempt from
/// every rule without needing suppressions.
fn blank_test_items(lines: &mut [String]) {
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].trim_start().starts_with("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Blank from the attribute through the end of the item: either
        // the matching close brace of the first block, or a bare `;`
        // (e.g. `#[cfg(test)] use ...;`) before any brace opens.
        let mut depth = 0i64;
        let mut opened = false;
        let mut j = i;
        while j < lines.len() {
            let mut done = false;
            for ch in lines[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth <= 0 {
                            done = true;
                        }
                    }
                    ';' if !opened && depth == 0 => done = true,
                    _ => {}
                }
            }
            lines[j].clear();
            j += 1;
            if done {
                break;
            }
        }
        i = j;
    }
}

/// One extracted function: name, signature text, and 0-based body line
/// range (inclusive).
#[derive(Debug)]
pub struct Function {
    /// The function's bare name (no path, no generics).
    pub name: String,
    /// Everything from the `fn` keyword to the opening brace.
    pub signature: String,
    /// 0-based line of the `fn` keyword.
    pub start_line: usize,
    /// 0-based line of the body's opening brace.
    pub body_start: usize,
    /// 0-based line of the body's closing brace.
    pub body_end: usize,
    /// The stripped body text.
    pub body: String,
}

pub(crate) fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Extracts every function (with a body) from a stripped file.
pub fn extract_functions(lines: &[String]) -> Vec<Function> {
    let text: String = lines.join("\n");
    let chars: Vec<char> = text.chars().collect();
    let mut line_of = Vec::with_capacity(chars.len() + 1);
    let mut ln = 0usize;
    for &c in &chars {
        line_of.push(ln);
        if c == '\n' {
            ln += 1;
        }
    }
    line_of.push(ln);

    let mut fns = Vec::new();
    let mut i = 0usize;
    while i + 1 < chars.len() {
        let boundary_before = i == 0 || !is_ident_char(chars[i - 1]);
        if !(boundary_before
            && chars[i] == 'f'
            && chars[i + 1] == 'n'
            && chars.get(i + 2).is_some_and(|c| c.is_whitespace()))
        {
            i += 1;
            continue;
        }
        let kw = i;
        i += 2;
        while i < chars.len() && chars[i].is_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < chars.len() && is_ident_char(chars[i]) {
            i += 1;
        }
        if i == name_start {
            continue; // `fn` not followed by a name (e.g. fn-pointer type)
        }
        let name: String = chars[name_start..i].iter().collect();
        // Parameter list: skip to the first `(` and match its parens.
        while i < chars.len() && chars[i] != '(' {
            i += 1;
        }
        let mut paren = 0i64;
        while i < chars.len() {
            match chars[i] {
                '(' => paren += 1,
                ')' => {
                    paren -= 1;
                    if paren == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // Body or trait-declaration semicolon.
        while i < chars.len() && chars[i] != '{' && chars[i] != ';' {
            i += 1;
        }
        if i >= chars.len() || chars[i] == ';' {
            continue;
        }
        let body_open = i;
        let mut brace = 0i64;
        let mut j = body_open;
        while j < chars.len() {
            match chars[j] {
                '{' => brace += 1,
                '}' => {
                    brace -= 1;
                    if brace == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let body_close = j.min(chars.len() - 1);
        fns.push(Function {
            name,
            signature: chars[kw..body_open].iter().collect(),
            start_line: line_of[kw],
            body_start: line_of[body_open],
            body_end: line_of[body_close],
            body: chars[body_open..=body_close].iter().collect(),
        });
        // Continue inside the body so nested functions are found too.
        i = body_open + 1;
    }
    fns
}

/// Method and function names too ubiquitous to carry call-graph signal:
/// following them would mark the whole workspace clock-reachable.
const CALLEE_STOPLIST: &[&str] = &[
    "new", "default", "len", "is_empty", "clone", "push", "pop", "get", "get_mut", "insert",
    "remove", "contains", "contains_key", "iter", "iter_mut", "into_iter", "next", "collect",
    "map", "filter", "and_then", "or_else", "unwrap", "unwrap_or", "unwrap_or_else",
    "unwrap_or_default", "expect", "ok", "err", "min", "max", "abs", "from", "into", "to_string",
    "format", "write", "writeln", "push_back", "push_front", "pop_front", "pop_back", "front",
    "back", "entry", "or_insert", "or_default", "drain", "extend", "sort", "sort_unstable",
    "sort_by", "sort_by_key", "cmp", "eq", "ne", "value", "inc", "add", "take", "replace",
    "as_ref", "as_mut", "borrow", "borrow_mut", "to_vec", "chars", "split", "trim",
    "starts_with", "ends_with", "enumerate", "zip", "rev", "any", "all", "count", "sum", "fold",
    "last", "first", "saturating_sub", "saturating_add", "wrapping_add", "wrapping_sub",
    "checked_sub", "checked_add", "div_ceil", "clamp", "floor", "ceil", "round", "sqrt", "powi",
    "is_some", "is_none", "as_str", "as_slice", "as_bytes", "parse", "join", "find", "position",
    "retain", "truncate", "resize", "fill", "copy_from_slice", "flat_map", "chunks", "windows",
    "some", "vec", "assert", "assert_eq", "assert_ne", "debug_assert", "matches", "drop", "set",
];

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "move", "unsafe", "let", "in",
    "as", "impl", "where", "pub", "use", "mod", "struct", "enum", "trait", "type", "const",
    "static", "ref", "mut", "break", "continue", "crate", "super", "self", "Self", "dyn",
    "async", "await", "box",
];

/// Names of functions called from `body`: identifiers directly followed
/// by `(`, minus keywords, macros and the stoplist.
pub fn callees(body: &str) -> BTreeSet<String> {
    let chars: Vec<char> = body.chars().collect();
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    while i < chars.len() {
        if !is_ident_char(chars[i]) || chars[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        let start = i;
        while i < chars.len() && is_ident_char(chars[i]) {
            i += 1;
        }
        let name: String = chars[start..i].iter().collect();
        let direct_call = chars.get(i) == Some(&'(');
        if direct_call
            && !KEYWORDS.contains(&name.as_str())
            && !CALLEE_STOPLIST.contains(&name.as_str())
        {
            out.insert(name);
        }
    }
    out
}

/// Whether `needle` occurs in `hay` as a whole token (not as a fragment
/// of a longer identifier).
pub fn has_token(hay: &str, needle: &str) -> bool {
    let mut rest = hay;
    let mut offset = 0usize;
    while let Some(pos) = rest.find(needle) {
        let abs = offset + pos;
        let before_ok = abs == 0
            || !hay[..abs].chars().next_back().is_some_and(is_ident_char);
        let after = abs + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..].chars().next().is_some_and(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        offset = abs + needle.len();
        rest = &hay[offset..];
    }
    false
}

/// Whether the line performs a narrowing integer `as` cast.
pub(crate) fn has_narrowing_cast(line: &str) -> bool {
    ["u8", "u16", "u32", "i8", "i16", "i32"]
        .iter()
        .any(|ty| {
            let pat = format!("as {ty}");
            let mut rest = line;
            let mut offset = 0usize;
            while let Some(pos) = rest.find(&pat) {
                let abs = offset + pos;
                let before_ok = abs == 0
                    || !line[..abs].chars().next_back().is_some_and(is_ident_char);
                let after = abs + pat.len();
                let after_ok = after >= line.len()
                    || !line[after..].chars().next().is_some_and(is_ident_char);
                if before_ok && after_ok {
                    return true;
                }
                offset = abs + pat.len();
                rest = &line[offset..];
            }
            false
        })
}

/// Lints a set of scanned files as one unit (the call graph crosses file
/// and crate boundaries). Findings come back sorted by (file, line).
///
/// This is a facade over [`model::SourceModel::build`] plus
/// [`passes::run`]; callers that want the model itself (e.g. for tests
/// asserting on reachability) can invoke those directly.
pub fn lint(files: &[ScannedFile]) -> Vec<Finding> {
    passes::run(&model::SourceModel::build(files))
}

/// Directories that hold non-simulated code: tests and benches may use
/// hash containers and wall clocks freely, and `crates/bench` *is* the
/// wall-clock harness.
pub const SKIP_DIRS: &[&str] = &["target", ".git", "tests", "benches", "examples", "bench"];

fn collect_files(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(root)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Reads and strips every `.rs` file under `root` (skipping
/// [`SKIP_DIRS`]) in sorted, deterministic order. Paths in the returned
/// files are relative to `root`.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<ScannedFile>> {
    let mut paths = Vec::new();
    collect_files(root, &mut paths)?;
    let mut files = Vec::new();
    for path in &paths {
        let source = std::fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path);
        files.push(ScannedFile::new(&rel.display().to_string(), &source));
    }
    Ok(files)
}

/// Renders findings plus a one-line summary, identically on stdout and
/// in `--report` files so CI artifacts match the log. Shared by the
/// `attila-lint` binary and `attila lint --source`.
pub fn render_report(findings: &[Finding], files: usize, deny_warnings: bool) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    let denies = findings.iter().filter(|f| f.severity == Severity::Deny).count();
    let warns = findings.len() - denies;
    out.push_str(&format!(
        "attila-lint: {files} file(s), {denies} deny, {warns} warn{}\n",
        if deny_warnings { " (--deny-warnings)" } else { "" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::new("test.rs", src)
    }

    fn lint_src(src: &str) -> Vec<Finding> {
        lint(&[scan(src)])
    }

    #[test]
    fn strip_blanks_comments_and_strings() {
        let f = scan("let a = \"HashMap\"; // HashMap here\nlet b = 1;\n");
        assert_eq!(f.lines.len(), 2);
        assert!(!f.lines[0].contains("HashMap"), "{:?}", f.lines[0]);
        assert!(f.lines[0].contains("let a = \"\";"), "{:?}", f.lines[0]);
    }

    #[test]
    fn strip_handles_block_comments_and_raw_strings() {
        let f = scan("/* HashMap\n spans lines */ let x = r#\"HashSet\"#;\n");
        assert!(!f.lines.concat().contains("HashMap"));
        assert!(!f.lines.concat().contains("HashSet"));
        assert_eq!(f.lines.len(), 2);
    }

    #[test]
    fn strip_distinguishes_lifetimes_from_char_literals() {
        let f = scan("fn f<'a>(x: &'a str) -> char { 'x' }\nlet nl = '\\n';\n");
        assert!(f.lines[0].contains("<'a>"), "{:?}", f.lines[0]);
        assert!(!f.lines[0].contains('x') || f.lines[0].contains("x:"), "{:?}", f.lines[0]);
    }

    #[test]
    fn allows_are_recorded_and_apply_to_next_line() {
        let f = scan("// lint:allow(hash-iter, wall-clock)\nlet x = 1;\n");
        assert!(f.allowed(0, "hash-iter"));
        assert!(f.allowed(1, "hash-iter"));
        assert!(f.allowed(1, "wall-clock"));
        assert!(!f.allowed(2, "hash-iter"));
    }

    #[test]
    fn cfg_test_items_are_blanked() {
        let src = "use std::collections::BTreeMap;\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       use std::collections::HashMap;\n\
                       fn helper() { let m: HashMap<u8, u8> = HashMap::new(); }\n\
                   }\n";
        let f = scan(src);
        assert!(!f.lines.concat().contains("HashMap"));
        assert!(f.lines[0].contains("BTreeMap"));
    }

    #[test]
    fn cfg_test_use_line_only_blanks_itself() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let f = scan(src);
        assert!(f.lines[2].contains("live"));
    }

    #[test]
    fn functions_are_extracted_with_bodies() {
        let f = scan("fn alpha(x: u8) -> u8 {\n    beta(x)\n}\nfn beta(x: u8) -> u8 { x }\n");
        let fns = extract_functions(&f.lines);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "alpha");
        assert_eq!(fns[0].body_start, 0);
        assert_eq!(fns[0].body_end, 2);
        assert!(callees(&fns[0].body).contains("beta"));
    }

    #[test]
    fn hash_iter_fires_and_suppression_silences_it() {
        let hits = lint_src("use std::collections::HashMap;\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "hash-iter");
        assert_eq!(hits[0].severity, Severity::Deny);
        assert_eq!(hits[0].line, 1);

        let ok = lint_src("// lint:allow(hash-iter)\nuse std::collections::HashMap;\n");
        assert!(ok.is_empty(), "{ok:?}");
        let ok2 = lint_src("use std::collections::HashMap; // lint:allow(hash-iter)\n");
        assert!(ok2.is_empty(), "{ok2:?}");
    }

    #[test]
    fn wall_clock_fires() {
        let hits = lint_src("fn t() { let s = std::time::Instant::now(); }\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "wall-clock");
    }

    #[test]
    fn clock_unwrap_fires_only_on_reachable_fallible_fns() {
        // Reachable via clock() and returns Result: flagged.
        let src = "fn clock(&mut self) -> Result<(), E> { helper()?; Ok(()) }\n\
                   fn helper() -> Result<(), E> {\n\
                       let v = risky().unwrap();\n\
                       Ok(())\n\
                   }\n";
        let hits = lint_src(src);
        assert_eq!(hits.iter().filter(|h| h.rule == "clock-unwrap").count(), 1);
        assert_eq!(hits[0].line, 3);

        // Not reachable from clock(): clean.
        let src2 = "fn lonely() -> Result<(), E> { risky().unwrap(); Ok(()) }\n";
        assert!(lint_src(src2).is_empty());

        // Reachable but infallible signature: the panic is the error
        // path, not a swallowed one.
        let src3 = "fn clock(&mut self) { infallible(); }\n\
                    fn infallible() { risky().unwrap(); }\n";
        assert!(lint_src(src3).is_empty());
    }

    #[test]
    fn as_cast_fires_on_address_lines_in_clock_path() {
        let src = "fn clock(&mut self) { let a = tile_addr(1) as u32; }\n\
                   fn tile_addr(x: u64) -> u64 { x }\n";
        let hits = lint_src(src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "as-cast");
        assert_eq!(hits[0].severity, Severity::Warn);

        // Widening casts and non-address lines are fine.
        let src2 = "fn clock(&mut self) {\n\
                        let a = addr as u64;\n\
                        let b = x as u32;\n\
                    }\n";
        assert!(lint_src(src2).is_empty());
    }

    #[test]
    fn hot_alloc_fires_in_clock_path_only() {
        let sim = |src: &str| lint(&[ScannedFile::new("crates/sim/src/signal.rs", src)]);

        // Clock-reachable allocation in simulator code: flagged, deny.
        let src = "fn clock(&mut self) { helper(); }\n\
                   fn helper() {\n\
                       let q: VecDeque<u32> = VecDeque::new();\n\
                       let s = format!(\"{q:?}\");\n\
                   }\n";
        let hits = sim(src);
        let alloc: Vec<_> = hits.iter().filter(|h| h.rule == "hot-alloc").collect();
        assert_eq!(alloc.len(), 2, "{hits:?}");
        assert!(alloc.iter().all(|h| h.severity == Severity::Deny));

        // Same code off the clock path: clean.
        assert!(sim("fn bind() { let q: VecDeque<u32> = VecDeque::new(); }\n")
            .iter()
            .all(|h| h.rule != "hot-alloc"));

        // Outside the simulator crates (trace compilation): clean.
        assert!(lint_src(src).iter().all(|h| h.rule != "hot-alloc"));

        // The escape hatch still works.
        let src3 = "fn clock(&mut self) {\n\
                        // lint:allow(hot-alloc) cold error path\n\
                        let s = name.to_string();\n\
                    }\n";
        assert!(sim(src3).iter().all(|h| h.rule != "hot-alloc"));
    }

    #[test]
    fn shared_mut_fires_in_clocked_box_crates_only() {
        let core = |src: &str| lint(&[ScannedFile::new("crates/core/src/gpu.rs", src)]);

        // Clock-reachable RefCell traffic in a box crate: flagged, deny.
        let src = "fn clock(&mut self) { helper(); }\n\
                   fn helper() {\n\
                       let q = shared.borrow_mut();\n\
                       let c: Cell<u64> = Cell::default();\n\
                   }\n";
        let hits = core(src);
        let shared: Vec<_> = hits.iter().filter(|h| h.rule == "shared-mut").collect();
        assert_eq!(shared.len(), 2, "{hits:?}");
        assert!(shared.iter().all(|h| h.severity == Severity::Deny));

        // Identifier boundaries: ShardCell/UnsafeCell are not `Cell`.
        let src2 = "fn clock(&mut self) { let s: &ShardCell<u8> = cells; }\n";
        assert!(core(src2).iter().all(|h| h.rule != "shared-mut"));

        // Same code off the clock path (bind time): clean.
        assert!(core("fn bind() { let q = shared.borrow_mut(); }\n")
            .iter()
            .all(|h| h.rule != "shared-mut"));

        // The transport crate is the sanctioned owner of shared lanes.
        let sim = lint(&[ScannedFile::new(
            "crates/sim/src/signal.rs",
            "fn clock(&mut self) { let q = lane.borrow_mut(); }\n",
        )]);
        assert!(sim.iter().all(|h| h.rule != "shared-mut"));

        // The escape hatch still works.
        let src3 = "fn clock(&mut self) {\n\
                        // lint:allow(shared-mut) drained single-threaded at the barrier\n\
                        let q = lane.borrow_mut();\n\
                    }\n";
        assert!(core(src3).iter().all(|h| h.rule != "shared-mut"));
    }

    #[test]
    fn call_graph_crosses_files() {
        let a = ScannedFile::new(
            "a.rs",
            "fn clock() -> Result<(), E> { remote_helper(); Ok(()) }\n",
        );
        let b = ScannedFile::new(
            "b.rs",
            "fn remote_helper() -> Result<(), E> { x.expect(\"boom\"); Ok(()) }\n",
        );
        let hits = lint(&[a, b]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].file, "b.rs");
        assert_eq!(hits[0].rule, "clock-unwrap");
    }

    #[test]
    fn findings_are_sorted_and_deduped() {
        let src = "use std::collections::{HashMap, HashSet};\n\
                   fn t() { let x = std::time::Instant::now(); }\n";
        let hits = lint_src(src);
        assert_eq!(hits.len(), 2);
        assert!(hits[0].line <= hits[1].line);
    }

    #[test]
    fn display_formats_like_a_compiler() {
        let f = Finding {
            file: "crates/core/src/texunit.rs".into(),
            line: 16,
            rule: "hash-iter",
            severity: Severity::Deny,
            message: "nope".into(),
        };
        assert_eq!(f.to_string(), "deny[hash-iter] crates/core/src/texunit.rs:16: nope");
    }
}
