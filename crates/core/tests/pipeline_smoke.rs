//! End-to-end smoke tests: drive the full cycle-level GPU with hand-built
//! command traces and validate the rendered output against the golden
//! model (the Figure 10 methodology at test scale).

#![allow(clippy::field_reassign_with_default)]
use std::sync::Arc;

use attila_core::commands::{DrawCall, GpuCommand, Primitive};
use attila_core::config::GpuConfig;
use attila_core::golden::GoldenRenderer;
use attila_core::gpu::Gpu;
use attila_core::state::{AttributeBinding, RenderState};
use attila_emu::asm;
use attila_emu::fragops::{CompareFunc, DepthState};
use attila_emu::raster::Viewport;
use attila_emu::vector::Vec4;

const W: u32 = 64;
const H: u32 = 64;
const COLOR_BASE: u64 = 0x10000;
const Z_BASE: u64 = 0x20000;
const VB_BASE: u64 = 0x40000;

fn small_config() -> GpuConfig {
    let mut c = GpuConfig::baseline();
    c.display.width = W;
    c.display.height = H;
    c.stats.window_cycles = 1000;
    c
}

fn base_state() -> RenderState {
    let mut st = RenderState::default();
    st.viewport = Viewport::new(W, H);
    st.target_width = W;
    st.target_height = H;
    st.color_buffer = COLOR_BASE;
    st.z_buffer = Z_BASE;
    st.vertex_program = Arc::new(
        asm::assemble("!!ATTILAvp1.0\nMOV o0, i0;\nMOV o1, i1;\nEND;").unwrap(),
    );
    st.fragment_program =
        Arc::new(asm::assemble("!!ATTILAfp1.0\nMOV o0, i0;\nEND;").unwrap());
    st.varying_count = 1;
    let mut attrs = vec![None; 16];
    attrs[0] = Some(AttributeBinding {
        address: VB_BASE,
        stride: 32,
        components: 4,
        default_w: 1.0,
    });
    attrs[1] = Some(AttributeBinding {
        address: VB_BASE + 16,
        stride: 32,
        components: 4,
        default_w: 1.0,
    });
    st.attributes = Arc::new(attrs);
    st
}

/// Interleaves position+colour vertices into a buffer image.
fn vertex_bytes(verts: &[(Vec4, Vec4)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (pos, col) in verts {
        for v in [pos.x, pos.y, pos.z, pos.w, col.x, col.y, col.z, col.w] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

fn trace_for(verts: &[(Vec4, Vec4)], state: RenderState, clear_z: bool) -> Vec<GpuCommand> {
    let mut cmds = vec![GpuCommand::SetState(Box::new(state))];
    cmds.push(GpuCommand::WriteBuffer {
        address: VB_BASE,
        data: Arc::new(vertex_bytes(verts)),
    });
    cmds.push(GpuCommand::FastClearColor(0xff000000)); // opaque black (ABGR bytes R,G,B,A = 0,0,0,255)
    if clear_z {
        cmds.push(GpuCommand::FastClearZStencil(0x00ff_ffff));
    }
    cmds.push(GpuCommand::Draw(DrawCall {
        primitive: Primitive::Triangles,
        vertex_count: verts.len() as u32,
        index_buffer: None,
    }));
    cmds.push(GpuCommand::Swap);
    cmds
}

fn run_both(cmds: &[GpuCommand]) -> (attila_core::gpu::FrameDump, attila_core::gpu::FrameDump) {
    let mut gpu = Gpu::new(small_config());
    gpu.max_cycles = 3_000_000;
    let result = gpu.run_trace(cmds).expect("simulation drains");
    assert_eq!(result.frames, 1);
    let mut golden = GoldenRenderer::new(64 * 1024 * 1024);
    let golden_frames = golden.run_trace(cmds);
    (result.framebuffers.into_iter().next().unwrap(), golden_frames.into_iter().next().unwrap())
}

fn diff_count(a: &attila_core::gpu::FrameDump, b: &attila_core::gpu::FrameDump) -> usize {
    a.rgba.chunks(4).zip(b.rgba.chunks(4)).filter(|(x, y)| x != y).count()
}

#[test]
fn flat_triangle_matches_golden_exactly() {
    let verts = [
        (Vec4::new(-0.8, -0.8, 0.0, 1.0), Vec4::new(1.0, 0.0, 0.0, 1.0)),
        (Vec4::new(0.8, -0.8, 0.0, 1.0), Vec4::new(0.0, 1.0, 0.0, 1.0)),
        (Vec4::new(0.0, 0.8, 0.0, 1.0), Vec4::new(0.0, 0.0, 1.0, 1.0)),
    ];
    let cmds = trace_for(&verts, base_state(), false);
    let (sim, gold) = run_both(&cmds);
    assert_eq!(diff_count(&sim, &gold), 0, "cycle sim must match the golden model");
    // And the triangle actually rendered something non-black.
    let covered = sim.rgba.chunks(4).filter(|px| px[0] > 0 || px[1] > 0 || px[2] > 0).count();
    assert!(covered > 500, "triangle covers a lot of a 64x64 target: {covered}");
}

#[test]
fn depth_test_resolves_occlusion() {
    // Two overlapping triangles; the near one must win where they overlap.
    let verts = [
        // Far triangle (z = 0.5), red.
        (Vec4::new(-0.9, -0.9, 0.5, 1.0), Vec4::new(1.0, 0.0, 0.0, 1.0)),
        (Vec4::new(0.9, -0.9, 0.5, 1.0), Vec4::new(1.0, 0.0, 0.0, 1.0)),
        (Vec4::new(0.0, 0.9, 0.5, 1.0), Vec4::new(1.0, 0.0, 0.0, 1.0)),
        // Near triangle (z = -0.5), green, drawn second but also passes.
        (Vec4::new(-0.5, -0.5, -0.5, 1.0), Vec4::new(0.0, 1.0, 0.0, 1.0)),
        (Vec4::new(0.5, -0.5, -0.5, 1.0), Vec4::new(0.0, 1.0, 0.0, 1.0)),
        (Vec4::new(0.0, 0.5, -0.5, 1.0), Vec4::new(0.0, 1.0, 0.0, 1.0)),
    ];
    let mut state = base_state();
    state.depth = DepthState { enabled: true, func: CompareFunc::Less, write: true };
    let cmds = trace_for(&verts, state, true);
    let (sim, gold) = run_both(&cmds);
    assert_eq!(diff_count(&sim, &gold), 0);
    // Centre pixel is covered by both: must be green.
    let px = sim.pixel(W / 2, H / 2).expect("in bounds");
    assert!(px[1] > 200 && px[0] < 50, "near green triangle wins: {px:?}");
}

#[test]
fn reversed_draw_order_with_z() {
    // Near triangle drawn FIRST; far drawn second must lose.
    let verts = [
        (Vec4::new(-0.5, -0.5, -0.5, 1.0), Vec4::new(0.0, 1.0, 0.0, 1.0)),
        (Vec4::new(0.5, -0.5, -0.5, 1.0), Vec4::new(0.0, 1.0, 0.0, 1.0)),
        (Vec4::new(0.0, 0.5, -0.5, 1.0), Vec4::new(0.0, 1.0, 0.0, 1.0)),
        (Vec4::new(-0.9, -0.9, 0.5, 1.0), Vec4::new(1.0, 0.0, 0.0, 1.0)),
        (Vec4::new(0.9, -0.9, 0.5, 1.0), Vec4::new(1.0, 0.0, 0.0, 1.0)),
        (Vec4::new(0.0, 0.9, 0.5, 1.0), Vec4::new(1.0, 0.0, 0.0, 1.0)),
    ];
    let mut state = base_state();
    state.depth = DepthState { enabled: true, func: CompareFunc::Less, write: true };
    let cmds = trace_for(&verts, state, true);
    let (sim, gold) = run_both(&cmds);
    assert_eq!(diff_count(&sim, &gold), 0);
    let px = sim.pixel(W / 2, H / 2).expect("in bounds");
    assert!(px[1] > 200 && px[0] < 50, "occluded red must not overwrite green: {px:?}");
}
