//! Box-level unit tests driving individual pipeline units through
//! hand-made ports — the granularity the paper's box/signal interfaces
//! are designed for ("a box can be replaced by another box ... registering
//! the same signals and supporting the same input and output objects").

#![allow(clippy::field_reassign_with_default)]
use std::sync::Arc;

use attila_core::commands::{DrawCall, GpuCommand, Primitive};
use attila_core::command_processor::{CommandProcessor, CpAction};
use attila_core::config::GpuConfig;
use attila_core::hz::HzUpdate;
use attila_core::port::unbound_port;
use attila_core::state::RenderState;
use attila_core::types::{Batch, FragQuad, QuadFrag, TriangleData};
use attila_core::zstencil::ZStencilUnit;
use attila_emu::fragops::{pack_depth_stencil, CompareFunc, DepthState};
use attila_emu::isa::limits;
use attila_emu::raster::{setup_triangle, Viewport};
use attila_emu::vector::Vec4;
use attila_mem::{MemControllerConfig, MemoryController};
use attila_sim::StatsRegistry;

fn make_state() -> RenderState {
    let mut st = RenderState::default();
    st.viewport = Viewport::new(64, 64);
    st.target_width = 64;
    st.target_height = 64;
    st.color_buffer = 0x10000;
    st.z_buffer = 0x20000;
    st.depth = DepthState { enabled: true, func: CompareFunc::Less, write: true };
    st
}

fn make_quad(state: RenderState, x: u32, y: u32, depth: f32) -> FragQuad {
    let batch = Arc::new(Batch {
        id: 0,
        state: Arc::new(state),
        draw: DrawCall { primitive: Primitive::Triangles, vertex_count: 3, index_buffer: None },
    });
    let setup = setup_triangle(
        &[
            Vec4::new(-1.0, -1.0, 0.0, 1.0),
            Vec4::new(3.0, -1.0, 0.0, 1.0),
            Vec4::new(-1.0, 3.0, 0.0, 1.0),
        ],
        Viewport::new(64, 64),
    )
    .unwrap();
    let tri = Arc::new(TriangleData {
        batch,
        setup,
        outputs: [
            Arc::new([Vec4::ZERO; limits::OUTPUTS]),
            Arc::new([Vec4::ZERO; limits::OUTPUTS]),
            Arc::new([Vec4::ZERO; limits::OUTPUTS]),
        ],
    });
    let frag = |alive| QuadFrag {
        alive,
        edges: [1.0, 1.0, 1.0],
        depth,
        inputs: Vec::new(),
        color: Vec4::ONE,
    };
    FragQuad {
        obj: attila_sim::DynamicObject::new(1),
        tri,
        x,
        y,
        frags: [frag(true), frag(true), frag(true), frag(true)],
    }
}

/// Drives one ZStencil unit: quads against a cleared buffer must pass,
/// a second quad behind them must fail, and cleared-block fills must cost
/// no memory traffic.
#[test]
fn zstencil_unit_tests_and_culls() {
    let mut stats = StatsRegistry::new(0);
    let config = GpuConfig::baseline().zstencil;
    let (mut early_tx, early_rx) = unbound_port::<FragQuad>("hz->zst", 2, 1, 16);
    let (_late_tx, late_rx) = unbound_port::<FragQuad>("ff->zst", 1, 1, 16);
    let (out_early_tx, mut out_early_rx) = unbound_port::<FragQuad>("zst->interp", 1, 1, 16);
    let (out_late_tx, _out_late_rx) = unbound_port::<FragQuad>("zst->cw", 1, 1, 16);
    let (hz_tx, mut hz_rx) = unbound_port::<HzUpdate>("zst->hz", 4, 1, 32);
    let mut zst = ZStencilUnit::new(
        0,
        config,
        early_rx,
        late_rx,
        out_early_tx,
        out_late_tx,
        hz_tx,
        &mut stats,
    );
    let mut mem = MemoryController::new(MemControllerConfig::default(), 1 << 22);

    // Fast clear to the far plane.
    let st = make_state();
    let len = attila_core::address::surface_bytes(64, 64);
    zst.fast_clear(&mut mem, st.z_buffer, len, pack_depth_stencil(0x00ff_ffff, 0));
    let base_reads = mem.bytes_read();

    // A near quad passes.
    early_tx.update(0);
    early_tx.send(0, make_quad(make_state(), 8, 8, 0.25));
    let mut passed = None;
    for cycle in 0..200 {
        early_tx.update(cycle);
        zst.clock(cycle, &mut mem).expect("no faults");
        mem.clock(cycle);
        out_early_rx.update(cycle);
        hz_rx.update(cycle);
        while hz_rx.pop(cycle).is_some() {}
        if let Some(q) = out_early_rx.pop(cycle) {
            passed = Some((cycle, q));
            break;
        }
    }
    let (c1, q) = passed.expect("near quad must pass");
    assert_eq!(q.live_count(), 4);
    assert_eq!(
        mem.bytes_read(),
        base_reads,
        "cleared-block fill must cost no memory reads"
    );

    // A farther quad at the same pixels now fails entirely (removed).
    early_tx.update(c1 + 1);
    early_tx.send(c1 + 1, make_quad(make_state(), 8, 8, 0.75));
    for cycle in c1 + 1..c1 + 200 {
        early_tx.update(cycle);
        zst.clock(cycle, &mut mem).expect("no faults");
        mem.clock(cycle);
        out_early_rx.update(cycle);
        hz_rx.update(cycle);
        while hz_rx.pop(cycle).is_some() {}
        assert!(out_early_rx.pop(cycle).is_none(), "occluded quad must be culled");
        if !zst.busy() && cycle > c1 + 50 {
            break;
        }
    }
    assert_eq!(zst.fragments_tested(), 8);
    assert_eq!(zst.fragments_passed(), 4);
}

/// The Command Processor: draws wait for outstanding uploads; clears wait
/// for pipeline idle; state changes cost cycles.
#[test]
fn command_processor_ordering_rules() {
    let mut stats = StatsRegistry::new(0);
    let (draw_tx, mut draw_rx) = unbound_port::<Arc<Batch>>("cp->streamer", 1, 1, 2);
    let mut cp = CommandProcessor::new(draw_tx, &mut stats);
    let mut mem = MemoryController::new(MemControllerConfig::default(), 1 << 22);

    cp.enqueue([
        GpuCommand::SetState(Box::new(make_state())),
        GpuCommand::WriteBuffer { address: 0x40000, data: Arc::new(vec![7u8; 512]) },
        GpuCommand::Draw(DrawCall {
            primitive: Primitive::Triangles,
            vertex_count: 3,
            index_buffer: None,
        }),
        GpuCommand::FastClearColor(0),
    ]);

    let mut draw_seen_at = None;
    let mut clear_seen_at = None;
    for cycle in 0..2000 {
        // Pretend the pipeline is busy until cycle 600 (after the draw).
        let idle = cycle > 600;
        cp.clock(cycle, &mut mem, idle).expect("no faults");
        for a in cp.actions.drain(..) {
            if matches!(a, CpAction::ClearColor { .. }) {
                clear_seen_at = Some(cycle);
            }
        }
        mem.clock(cycle);
        draw_rx.update(cycle);
        if draw_rx.pop(cycle).is_some() && draw_seen_at.is_none() {
            draw_seen_at = Some(cycle);
        }
    }
    let draw_at = draw_seen_at.expect("draw issued");
    let clear_at = clear_seen_at.expect("clear issued");
    // The 512-byte upload takes >= system_bus_latency (100) cycles; the
    // draw must not be issued before it lands.
    assert!(draw_at > 100, "draw must wait for the upload: {draw_at}");
    assert!(clear_at > 600, "clear must wait for pipeline idle: {clear_at}");
    assert!(cp.done());
    assert_eq!(cp.draws_issued(), 1);
}

/// State changes carry a cost but pipeline ahead of the draw that uses
/// them (snapshots travel with batches).
#[test]
fn state_snapshots_travel_with_batches() {
    let mut stats = StatsRegistry::new(0);
    let (draw_tx, mut draw_rx) = unbound_port::<Arc<Batch>>("cp->streamer", 1, 1, 2);
    let mut cp = CommandProcessor::new(draw_tx, &mut stats);
    let mut mem = MemoryController::new(MemControllerConfig::default(), 1 << 22);
    let mut state_a = make_state();
    state_a.depth.enabled = false;
    let mut state_b = make_state();
    state_b.depth.enabled = true;
    cp.enqueue([
        GpuCommand::SetState(Box::new(state_a)),
        GpuCommand::Draw(DrawCall {
            primitive: Primitive::Triangles,
            vertex_count: 3,
            index_buffer: None,
        }),
        GpuCommand::SetState(Box::new(state_b)),
        GpuCommand::Draw(DrawCall {
            primitive: Primitive::Triangles,
            vertex_count: 6,
            index_buffer: None,
        }),
    ]);
    let mut batches = Vec::new();
    for cycle in 0..200 {
        cp.clock(cycle, &mut mem, false).expect("no faults");
        mem.clock(cycle);
        draw_rx.update(cycle);
        while let Some(b) = draw_rx.pop(cycle) {
            batches.push(b);
        }
    }
    assert_eq!(batches.len(), 2);
    assert!(!batches[0].state.depth.enabled);
    assert!(batches[1].state.depth.enabled);
    assert_eq!(batches[1].draw.vertex_count, 6);
}

/// The GPU watchdog reports instead of hanging.
#[test]
fn watchdog_fires_on_tiny_budget() {
    let mut config = GpuConfig::baseline();
    config.display.width = 64;
    config.display.height = 64;
    let mut gpu = attila_core::gpu::Gpu::new(config);
    gpu.max_cycles = 10; // absurdly small
    let commands = vec![
        GpuCommand::SetState(Box::new(make_state())),
        GpuCommand::WriteBuffer { address: 0x40000, data: Arc::new(vec![0u8; 4096]) },
        GpuCommand::Swap,
    ];
    let err = gpu.run_trace(&commands).unwrap_err();
    assert!(matches!(err, attila_core::gpu::GpuError::Watchdog { .. }));
}

/// Batch pipelining: rendering two batches back to back costs much less
/// than twice one batch (geometry/fragment phases overlap).
#[test]
fn consecutive_batches_overlap() {
    let run = |draws: usize| {
        let mut config = GpuConfig::baseline();
        config.display.width = 64;
        config.display.height = 64;
        let mut gpu = attila_core::gpu::Gpu::new(config);
        gpu.max_cycles = 50_000_000;
        let mut cmds = vec![
            GpuCommand::SetState(Box::new(make_state())),
            GpuCommand::WriteBuffer {
                address: 0x40000,
                data: Arc::new(
                    [
                        [-0.9f32, -0.9, 0.5, 1.0],
                        [0.9, -0.9, 0.5, 1.0],
                        [0.0, 0.9, 0.5, 1.0],
                    ]
                    .iter()
                    .flat_map(|v| v.iter().flat_map(|f| f.to_le_bytes()))
                    .collect(),
                ),
            },
            GpuCommand::FastClearColor(0),
            GpuCommand::FastClearZStencil(0x00ff_ffff),
        ];
        let mut st = make_state();
        let mut attrs = vec![None; 16];
        attrs[0] = Some(attila_core::state::AttributeBinding {
            address: 0x40000,
            stride: 16,
            components: 4,
            default_w: 1.0,
        });
        st.attributes = Arc::new(attrs);
        cmds[0] = GpuCommand::SetState(Box::new(st));
        for _ in 0..draws {
            cmds.push(GpuCommand::Draw(DrawCall {
                primitive: Primitive::Triangles,
                vertex_count: 3,
                index_buffer: None,
            }));
        }
        cmds.push(GpuCommand::Swap);
        gpu.run_trace(&cmds).expect("drains").cycles
    };
    let one = run(1);
    let four = run(4);
    assert!(
        four < 3 * one,
        "4 batches must overlap substantially: {four} vs 4x{one}"
    );
}
