//! Box-level tests for the Streamer's post-shading vertex cache and the
//! Texture Unit's cache/throughput behaviour.

#![allow(clippy::field_reassign_with_default)]
use std::sync::Arc;

use attila_core::commands::{DrawCall, GpuCommand, Primitive};
use attila_core::config::GpuConfig;
use attila_core::gpu::Gpu;
use attila_core::port::unbound_port;
use attila_core::state::{AttributeBinding, RenderState};
use attila_core::texunit::TextureUnit;
use attila_core::types::{Batch, QuadTexReply, QuadTexRequest};
use attila_emu::raster::Viewport;
use attila_emu::texture::{encode_tiled, TexFormat, TextureDesc};
use attila_emu::vector::Vec4;
use attila_mem::{MemControllerConfig, MemoryController};
use attila_sim::StatsRegistry;

/// An indexed grid reuses vertices across triangles: the post-shading
/// vertex cache must cut shader work substantially.
#[test]
fn vertex_cache_reuses_shaded_vertices() {
    const W: u32 = 64;
    let n = 8u32; // (n+1)^2 = 81 vertices, n*n*2 = 128 triangles
    let mut vertex_bytes = Vec::new();
    for j in 0..=n {
        for i in 0..=n {
            let x = -0.9 + 1.8 * i as f32 / n as f32;
            let y = -0.9 + 1.8 * j as f32 / n as f32;
            for f in [x, y, 0.5f32, 1.0] {
                vertex_bytes.extend_from_slice(&f.to_le_bytes());
            }
        }
    }
    let mut index_bytes: Vec<u8> = Vec::new();
    let mut index_count = 0u32;
    for j in 0..n {
        for i in 0..n {
            let v = |a: u32, b: u32| b * (n + 1) + a;
            for idx in
                [v(i, j), v(i + 1, j), v(i + 1, j + 1), v(i, j), v(i + 1, j + 1), v(i, j + 1)]
            {
                index_bytes.extend_from_slice(&idx.to_le_bytes());
                index_count += 1;
            }
        }
    }

    let mut st = RenderState::default();
    st.viewport = Viewport::new(W, W);
    st.target_width = W;
    st.target_height = W;
    st.color_buffer = 0x10000;
    st.z_buffer = 0x20000;
    let mut attrs = vec![None; 16];
    attrs[0] =
        Some(AttributeBinding { address: 0x40000, stride: 16, components: 4, default_w: 1.0 });
    st.attributes = Arc::new(attrs);

    let cmds = vec![
        GpuCommand::SetState(Box::new(st)),
        GpuCommand::WriteBuffer { address: 0x40000, data: Arc::new(vertex_bytes) },
        GpuCommand::WriteBuffer { address: 0x80000, data: Arc::new(index_bytes) },
        GpuCommand::FastClearColor(0),
        GpuCommand::Draw(DrawCall {
            primitive: Primitive::Triangles,
            vertex_count: index_count,
            index_buffer: Some(0x80000),
        }),
        GpuCommand::Swap,
    ];

    let mut config = GpuConfig::baseline();
    config.display.width = W;
    config.display.height = W;
    let mut gpu = Gpu::new(config);
    gpu.max_cycles = 50_000_000;
    gpu.run_trace(&cmds).expect("drains");
    let issued = gpu.stats().total("Streamer.vertices").unwrap();
    let hits = gpu.stats().total("Streamer.vertex_cache_hits").unwrap();
    let shaded = gpu.stats().total("Streamer.shaded_received").unwrap();
    assert_eq!(issued, index_count as f64);
    assert!(
        hits > issued * 0.4,
        "adjacent-triangle reuse should hit the vertex cache a lot: {hits}/{issued}"
    );
    assert!(
        shaded < issued * 0.6,
        "most vertices must skip re-shading: shaded {shaded} of {issued}"
    );
}

fn tiny_batch(texture: TextureDesc) -> Arc<Batch> {
    let mut st = RenderState::default();
    let mut textures = vec![None; 16];
    textures[0] = Some(texture);
    st.textures = Arc::new(textures);
    Arc::new(Batch {
        id: 0,
        state: Arc::new(st),
        draw: DrawCall { primitive: Primitive::Triangles, vertex_count: 3, index_buffer: None },
    })
}

/// Drives one Texture Unit directly: first access misses and fetches the
/// line, a repeat access hits and replies faster; throughput charges one
/// bilinear per cycle.
#[test]
fn texture_unit_cache_and_throughput() {
    let mut stats = StatsRegistry::new(0);
    let config = GpuConfig::baseline().texture;
    let (mut req_tx, req_rx) = unbound_port::<QuadTexRequest>("ff->tu", 1, 1, 8);
    let (rep_tx, mut rep_rx) = unbound_port::<QuadTexReply>("tu->ff", 1, 1, 8);
    let mut tu = TextureUnit::new(0, config, req_rx, rep_tx, &mut stats);
    let mut mem = MemoryController::new(MemControllerConfig::default(), 1 << 22);

    // A 16x16 solid texture at address 0x1000.
    let pixels = vec![Vec4::new(0.0, 1.0, 0.0, 1.0); 256];
    let bytes = encode_tiled(TexFormat::Rgba8, 16, 16, &pixels);
    mem.gpu_mem_mut().write(0x1000, &bytes);
    let desc = TextureDesc::new_2d(16, 16, TexFormat::Rgba8, 0x1000);
    let batch = tiny_batch(desc);

    let quad = |id: u64| QuadTexRequest {
        id,
        shader_unit: 0,
        sampler: 0,
        coords: [
            Vec4::new(0.50, 0.50, 0.0, 1.0),
            Vec4::new(0.53, 0.50, 0.0, 1.0),
            Vec4::new(0.50, 0.53, 0.0, 1.0),
            Vec4::new(0.53, 0.53, 0.0, 1.0),
        ],
        lod_bias: 0.0,
        projective: false,
        batch: Arc::clone(&batch),
    };

    let mut latencies = Vec::new();
    let mut cycle = 0u64;
    for id in 0..2 {
        req_tx.update(cycle);
        req_tx.send(cycle, quad(id));
        let sent_at = cycle;
        loop {
            cycle += 1;
            req_tx.update(cycle);
            tu.clock(cycle, &mut mem).expect("no faults");
            mem.clock(cycle);
            rep_rx.update(cycle);
            if let Some(rep) = rep_rx.pop(cycle) {
                assert_eq!(rep.id, id);
                assert!(rep.texels[0].y > 0.9, "green texel: {:?}", rep.texels[0]);
                latencies.push(cycle - sent_at);
                break;
            }
            assert!(cycle < 10_000, "texture unit wedged");
        }
    }
    assert!(
        latencies[1] < latencies[0],
        "second (cached) request must be faster: {latencies:?}"
    );
    // 4 bilinear samples at 1/cycle => at least 4 cycles even when hot.
    assert!(latencies[1] >= 4, "throughput floor: {latencies:?}");
    assert_eq!(tu.requests_serviced(), 2);
    assert!(tu.cache().hits() > 0);
    assert!(tu.bytes_read() >= 256, "one line fill");
}

/// An unbound sampler replies opaque black without touching memory.
#[test]
fn texture_unit_unbound_sampler_is_black() {
    let mut stats = StatsRegistry::new(0);
    let config = GpuConfig::baseline().texture;
    let (mut req_tx, req_rx) = unbound_port::<QuadTexRequest>("ff->tu", 1, 1, 8);
    let (rep_tx, mut rep_rx) = unbound_port::<QuadTexReply>("tu->ff", 1, 1, 8);
    let mut tu = TextureUnit::new(0, config, req_rx, rep_tx, &mut stats);
    let mut mem = MemoryController::new(MemControllerConfig::default(), 1 << 20);
    let batch = Arc::new(Batch {
        id: 0,
        state: Arc::new(RenderState::default()),
        draw: DrawCall { primitive: Primitive::Triangles, vertex_count: 3, index_buffer: None },
    });
    req_tx.update(0);
    req_tx.send(
        0,
        QuadTexRequest {
            id: 9,
            shader_unit: 0,
            sampler: 5,
            coords: [Vec4::ZERO; 4],
            lod_bias: 0.0,
            projective: false,
            batch,
        },
    );
    for cycle in 0..100 {
        req_tx.update(cycle);
        tu.clock(cycle, &mut mem).expect("no faults");
        mem.clock(cycle);
        rep_rx.update(cycle);
        if let Some(rep) = rep_rx.pop(cycle) {
            assert_eq!(rep.texels[0], Vec4::new(0.0, 0.0, 0.0, 1.0));
            assert_eq!(tu.bytes_read(), 0);
            return;
        }
    }
    panic!("no reply");
}
