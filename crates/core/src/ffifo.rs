//! The Fragment FIFO: shader-input crossbar and scheduler, plus the
//! shader units it feeds.
//!
//! Per the paper (§3): "The Fragment FIFO box (a legacy name) corresponds
//! to a crossbar and scheduler that receives input vertices and fragments
//! from producing boxes [...], feeds those inputs into the unified shader
//! boxes, receives the shaded outputs [...] and sends the outputs to the
//! consuming boxes (Streamer Commit for vertices, Z Stencil Test or Color
//! Write for fragments). The FragmentFIFO box also implements the two
//! datapaths required to perform the Z and Stencil test before and after
//! fragment shading."
//!
//! The shader model (§2.3): multithreaded in-order units working on
//! **groups of four inputs** (one fragment quad, or four vertices) as a
//! single thread; a texture access blocks the thread until the Texture
//! Unit answers; thread availability is limited by the physical register
//! file and the thread-window/input-queue size. The Section 5 case study
//! compares two schedulers:
//!
//! * **thread window** — any ready thread may issue (out-of-order among
//!   threads), hiding texture latency;
//! * **in-order input queue** — each unit runs one thread to completion
//!   before starting the next, so texture latency stalls the unit.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use attila_emu::isa::{limits, Bank, Opcode, Program, ShaderTarget};
use attila_emu::shader::{ShaderEmulator, StepResult, ThreadId};
use attila_emu::vector::Vec4;
use attila_sim::{Counter, Cycle, DynamicObject, ObjectIdGen, SimError};

use crate::config::{ShaderConfig, ShaderScheduling};
use crate::hz::route_rop;
use crate::port::{PortReceiver, PortSender};
use crate::types::{
    FragQuad, QuadTexReply, QuadTexRequest, ShadedVertex, VertexOutputs, VertexWork,
};

/// Execution state of a thread group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupState {
    /// May issue an instruction.
    Ready,
    /// Waiting for a texture reply.
    TexBlocked,
    /// All threads reached END; output awaits delivery.
    Finished,
}

/// What a group computes.
///
/// `Quad` dwarfs `Vertices` byte-wise, but it is also the overwhelmingly
/// common case — boxing it would buy nothing except an allocation per
/// fragment quad.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum GroupPayload {
    /// Up to four vertices of one batch.
    Vertices(Vec<VertexWork>),
    /// One fragment quad.
    Quad(FragQuad),
}

/// A shader thread group (1 thread = 1 fragment quad or 4 vertices).
#[derive(Debug)]
struct Group {
    id: u64,
    /// Global age for oldest-first policies.
    order: u64,
    unit: usize,
    batch_id: u64,
    target: ShaderTarget,
    program: Arc<Program>,
    payload: GroupPayload,
    threads: Vec<ThreadId>,
    finished: Vec<bool>,
    killed: Vec<bool>,
    state: GroupState,
    /// Mirror of the (lockstep) program counter for dependency checks.
    pc: usize,
    /// Cycle at which each temp register's last producer completes.
    reg_ready: [Cycle; limits::TEMPS],
    inputs_reserved: usize,
    regs_reserved: usize,
    /// Pending texture request id (while `TexBlocked`).
    tex_id: Option<u64>,
}

/// Per-shader-unit state.
struct UnitState {
    /// Dedicated vertex unit (non-unified mode)?
    vertex_unit: bool,
    /// Groups resident on this unit.
    resident: Vec<u64>,
    /// The single running group (in-order queue mode).
    current: Option<u64>,
    /// One functional emulator per (batch, target) with constants loaded.
    /// A unit rarely hosts more than a couple of pairs, so a linear scan
    /// over a `Vec` beats a map on the per-issue lookup path.
    emulators: Vec<((u64, ShaderTarget), ShaderEmulator)>,
    stat_busy: Counter,
    stat_instructions: Counter,
}

impl UnitState {
    fn emu(&self, batch_id: u64, target: ShaderTarget) -> Option<&ShaderEmulator> {
        self.emulators.iter().find(|(k, _)| *k == (batch_id, target)).map(|(_, e)| e)
    }

    fn emu_mut(&mut self, batch_id: u64, target: ShaderTarget) -> Option<&mut ShaderEmulator> {
        self.emulators.iter_mut().find(|(k, _)| *k == (batch_id, target)).map(|(_, e)| e)
    }
}

/// The Fragment FIFO box (crossbar + scheduler + shader pool).
pub struct FragmentFifo {
    config: ShaderConfig,
    /// Unshaded vertices from the Streamer.
    pub in_vertices: PortReceiver<VertexWork>,
    /// Interpolated quads from the Interpolator.
    pub in_quads: PortReceiver<FragQuad>,
    /// Shaded vertices to Streamer Commit.
    pub out_shaded: PortSender<ShadedVertex>,
    /// Shaded quads to the Colour Write units (early-Z path).
    pub out_color: Vec<PortSender<FragQuad>>,
    /// Shaded quads to the Z/stencil units (late-Z path).
    pub out_zstencil: Vec<PortSender<FragQuad>>,
    /// Texture requests to each texture unit.
    pub tex_requests: Vec<PortSender<QuadTexRequest>>,
    /// Texture replies from each texture unit.
    pub tex_replies: Vec<PortReceiver<QuadTexReply>>,

    // state: transient — scheduler occupancy below is drained at the
    // quiescent checkpoint boundary (no live groups, empty queues,
    // zeroed pool usage)
    units: Vec<UnitState>,
    /// Thread groups, stored in a slab: a group's id IS its slot index,
    /// so every scheduler lookup on the per-cycle issue path is an array
    /// load instead of a map walk. Slots recycle through `free_slots`
    /// after release, bounding the slab to the peak concurrent-group
    /// count (itself bounded by the shader input window).
    groups: Vec<Option<Group>>,
    /// Recycled slab slots.
    free_slots: Vec<u32>,
    /// Occupied slab slots.
    live_groups: usize,
    /// Waiting groups (in-order queue mode). In non-unified mode this
    /// holds fragment groups; vertex groups queue in `vqueue`.
    queue: VecDeque<u64>,
    /// Waiting vertex groups (in-order queue mode, non-unified only).
    vqueue: VecDeque<u64>,
    /// Completed vertex groups awaiting delivery (any order — the
    /// Streamer's commit stage reorders vertices itself).
    vertex_outbox: VecDeque<u64>,
    /// Fragment groups in admission order — the reorder buffer: shaded
    /// quads are delivered to the ROPs strictly in rasterization order,
    /// whatever order shading completes in (API blending order).
    frag_order: VecDeque<u64>,
    /// Texture requests awaiting a TU port slot.
    tex_outbox: VecDeque<QuadTexRequest>,
    /// Vertices being collected into a group.
    vertex_staging: Vec<VertexWork>,
    /// Cycle the oldest staged vertex arrived (partial-group timeout).
    staging_since: Cycle,
    /// Fragment-pool occupancy.
    inputs_used: usize,
    regs_used: usize,
    /// Vertex-pool occupancy (non-unified mode).
    v_inputs_used: usize,
    v_regs_used: usize,
    // state: checkpointed
    next_order: u64,
    next_tex_id: u64,
    /// Pending texture request id → blocked group id.
    tex_waiters: BTreeMap<u64, u64>, // state: transient — empty once in-flight texture requests drain
    next_tu: usize,
    ids: ObjectIdGen,

    stat_vertex_groups: Counter,
    stat_fragment_groups: Counter,
    stat_tex_requests: Counter,
    stat_frags_shaded: Counter,
    stat_killed: Counter,
    /// Dense per-opcode latency overrides, indexed by `Opcode as usize` —
    /// the configured `instruction_latencies` map flattened once at
    /// construction so the per-thread issue path is an array load instead
    /// of a `BTreeMap<String, _>` search on the mnemonic.
    latency_table: [Option<Cycle>; Opcode::COUNT], // state: derived — flattened from config at construction
}

impl FragmentFifo {
    /// Builds the scheduler.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: ShaderConfig,
        in_vertices: PortReceiver<VertexWork>,
        in_quads: PortReceiver<FragQuad>,
        out_shaded: PortSender<ShadedVertex>,
        out_color: Vec<PortSender<FragQuad>>,
        out_zstencil: Vec<PortSender<FragQuad>>,
        tex_requests: Vec<PortSender<QuadTexRequest>>,
        tex_replies: Vec<PortReceiver<QuadTexReply>>,
        stats: &mut attila_sim::StatsRegistry,
    ) -> Self {
        let mut latency_table = [None; Opcode::COUNT];
        for (mnemonic, &latency) in &config.instruction_latencies {
            if let Some(op) = Opcode::from_mnemonic(mnemonic) {
                latency_table[op as usize] = Some(latency);
            }
        }
        let mut units = Vec::new();
        for u in 0..config.fragment_units {
            units.push(UnitState {
                vertex_unit: false,
                resident: Vec::new(),
                current: None,
                emulators: Vec::new(),
                stat_busy: stats.counter(&format!("Shader{u}.busy_cycles")),
                stat_instructions: stats.counter(&format!("Shader{u}.instructions")),
            });
        }
        if !config.unified {
            for u in 0..config.vertex_units {
                units.push(UnitState {
                    vertex_unit: true,
                    resident: Vec::new(),
                    current: None,
                    emulators: Vec::new(),
                    stat_busy: stats.counter(&format!("VertexShader{u}.busy_cycles")),
                    stat_instructions: stats.counter(&format!("VertexShader{u}.instructions")),
                });
            }
        }
        FragmentFifo {
            config,
            in_vertices,
            in_quads,
            out_shaded,
            out_color,
            out_zstencil,
            tex_requests,
            tex_replies,
            units,
            groups: Vec::new(),
            free_slots: Vec::new(),
            live_groups: 0,
            queue: VecDeque::new(),
            vqueue: VecDeque::new(),
            vertex_outbox: VecDeque::new(),
            frag_order: VecDeque::new(),
            tex_outbox: VecDeque::new(),
            vertex_staging: Vec::new(),
            staging_since: 0,
            inputs_used: 0,
            regs_used: 0,
            v_inputs_used: 0,
            v_regs_used: 0,
            next_order: 0,
            next_tex_id: 0,
            tex_waiters: BTreeMap::new(),
            next_tu: 0,
            ids: ObjectIdGen::new(),
            stat_vertex_groups: stats.counter("FFIFO.vertex_groups"),
            stat_fragment_groups: stats.counter("FFIFO.fragment_groups"),
            stat_tex_requests: stats.counter("FFIFO.texture_requests"),
            stat_frags_shaded: stats.counter("FFIFO.fragments_shaded"),
            stat_killed: stats.counter("FFIFO.fragments_killed"),
            latency_table,
        }
    }

    /// Advances the scheduler and every shader unit one cycle.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised by the box's signals.
    pub fn clock(&mut self, cycle: Cycle) -> Result<(), SimError> {
        self.in_vertices.try_update(cycle)?;
        self.in_quads.try_update(cycle)?;
        self.out_shaded.try_update(cycle)?;
        for p in self.out_color.iter_mut().chain(self.out_zstencil.iter_mut()) {
            p.try_update(cycle)?;
        }
        for p in &mut self.tex_requests {
            p.try_update(cycle)?;
        }
        for p in &mut self.tex_replies {
            p.try_update(cycle)?;
        }
        self.receive_tex_replies(cycle)?;
        self.admit_work(cycle)?;
        self.issue(cycle);
        self.drain_tex_outbox(cycle)?;
        self.deliver_outputs(cycle)
    }

    // --- admission -------------------------------------------------------

    fn admit_work(&mut self, cycle: Cycle) -> Result<(), SimError> {
        // Vertices first: geometry starvation stalls the whole pipeline.
        let group_size = self.config.group_size.max(1) as usize;
        let mut new_vertex = false;
        loop {
            // Flush the staging group when full or the batch changes.
            let flush = !self.vertex_staging.is_empty()
                && (self.vertex_staging.len() >= group_size
                    || self
                        .in_vertices
                        .peek()
                        .map(|v| v.batch.id != self.vertex_staging[0].batch.id)
                        .unwrap_or(false));
            if flush && self.try_spawn_vertex_group(cycle) {
                continue;
            }
            let Some(v) = self.in_vertices.peek() else { break };
            // Admission control: will the staged group (this vertex
            // included) fit? Vertices reserve per-input resources.
            let temps = v.batch.state.vertex_program.temps_used().max(1);
            let fits = if self.config.unified {
                self.inputs_used < self.config.max_inputs
                    && self.regs_used + temps <= self.config.temp_registers
            } else {
                self.v_inputs_used < self.config.vertex_units * self.config.vertex_threads
                    && self.v_regs_used + temps
                        <= self.config.vertex_units * self.config.vertex_registers
            };
            if !fits {
                break;
            }
            let v = self.in_vertices.try_pop(cycle)?.expect("peeked"); // lint:allow(clock-unwrap) head existence checked via peek above
            if self.config.unified {
                self.inputs_used += 1;
                self.regs_used += temps;
            } else {
                self.v_inputs_used += 1;
                self.v_regs_used += temps;
            }
            if self.vertex_staging.is_empty() {
                self.staging_since = cycle;
            }
            self.vertex_staging.push(v);
            new_vertex = true;
        }
        // Partial-group timeout: don't launch an underfilled group the
        // instant the vertex stream hiccups — wait a few cycles for the
        // rest of the quad-group, then flush (bounds the tail latency of
        // a batch without wasting thread slots on 1-vertex groups).
        const STAGING_PATIENCE: Cycle = 8;
        if !new_vertex
            && !self.vertex_staging.is_empty()
            && cycle.saturating_sub(self.staging_since) >= STAGING_PATIENCE
        {
            self.try_spawn_vertex_group(cycle);
        }

        // Fragments.
        while let Some(q) = self.in_quads.peek() {
            let temps = q.tri.batch.state.fragment_program.temps_used().max(1);
            let need_regs = 4 * temps;
            if self.inputs_used + 4 > self.config.max_inputs
                || self.regs_used + need_regs > self.config.temp_registers
            {
                break;
            }
            let quad = self.in_quads.try_pop(cycle)?.expect("peeked"); // lint:allow(clock-unwrap) head existence checked via peek above
            self.inputs_used += 4;
            self.regs_used += need_regs;
            self.spawn_fragment_group(quad);
        }
        Ok(())
    }

    fn try_spawn_vertex_group(&mut self, _cycle: Cycle) -> bool {
        if self.vertex_staging.is_empty() {
            return false;
        }
        let batch = Arc::clone(&self.vertex_staging[0].batch);
        let program = Arc::clone(&batch.state.vertex_program);
        // In non-unified mode each vertex is its own thread (paper §2.3);
        // grouping only happens on unified hardware.
        let take = if self.config.unified {
            self.vertex_staging.len().min(self.config.group_size.max(1) as usize)
        } else {
            1
        };
        let vertices: Vec<VertexWork> = self.vertex_staging.drain(..take).collect();
        let queued = self.config.scheduling == ShaderScheduling::InOrderQueue;
        // Thread-window groups are placed on a unit immediately; queued
        // groups are materialized on whichever unit frees up first.
        let (unit, threads) = if queued {
            (usize::MAX, Vec::new())
        } else {
            let unit = self.pick_unit(true).expect("an eligible unit always exists");
            let emu = Self::emulator_for(
                &mut self.units[unit],
                batch.id,
                ShaderTarget::Vertex,
                &program,
                &batch.state.vertex_constants,
            );
            (unit, vertices.iter().map(|v| emu.spawn(&v.inputs)).collect())
        };
        let n = vertices.len();
        let temps = program.temps_used().max(1);
        let gid = self.alloc_group(Group {
            id: 0,
            order: 0,
            unit,
            batch_id: batch.id,
            target: ShaderTarget::Vertex,
            program,
            payload: GroupPayload::Vertices(vertices),
            finished: vec![false; n],
            killed: vec![false; n],
            threads,
            state: GroupState::Ready,
            pc: 0,
            reg_ready: [0; limits::TEMPS],
            inputs_reserved: n,
            regs_reserved: n * temps,
            tex_id: None,
        });
        self.attach(gid, unit);
        self.stat_vertex_groups.inc();
        true
    }

    fn spawn_fragment_group(&mut self, quad: FragQuad) {
        let batch = Arc::clone(&quad.tri.batch);
        let program = Arc::clone(&batch.state.fragment_program);
        let queued = self.config.scheduling == ShaderScheduling::InOrderQueue;
        let (unit, threads) = if queued {
            (usize::MAX, Vec::new())
        } else {
            let unit = self.pick_unit(false).expect("fragment units always exist");
            let emu = Self::emulator_for(
                &mut self.units[unit],
                batch.id,
                ShaderTarget::Fragment,
                &program,
                &batch.state.fragment_constants,
            );
            // All four fragments run — dead ones as helper pixels.
            (unit, quad.frags.iter().map(|f| emu.spawn(&f.inputs)).collect::<Vec<ThreadId>>())
        };
        let temps = program.temps_used().max(1);
        let gid = self.alloc_group(Group {
            id: 0,
            order: 0,
            unit,
            batch_id: batch.id,
            target: ShaderTarget::Fragment,
            program,
            payload: GroupPayload::Quad(quad),
            finished: vec![false; 4],
            killed: vec![false; 4],
            threads,
            state: GroupState::Ready,
            pc: 0,
            reg_ready: [0; limits::TEMPS],
            inputs_reserved: 4,
            regs_reserved: 4 * temps,
            tex_id: None,
        });
        self.attach(gid, unit);
        self.frag_order.push_back(gid);
        self.stat_fragment_groups.inc();
    }

    fn alloc_group(&mut self, mut g: Group) -> u64 {
        g.order = self.next_order;
        self.next_order += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => s as usize,
            None => {
                self.groups.push(None);
                self.groups.len() - 1
            }
        };
        g.id = slot as u64;
        self.groups[slot] = Some(g);
        self.live_groups += 1;
        slot as u64
    }

    fn attach(&mut self, gid: u64, unit: usize) {
        if self.config.scheduling == ShaderScheduling::InOrderQueue {
            // Queue mode: the group waits in the shader input queue until
            // a unit of the right kind frees up.
            let vertex = self.groups[gid as usize].as_ref().expect("group exists").target
                == ShaderTarget::Vertex;
            if vertex && !self.config.unified {
                self.vqueue.push_back(gid);
            } else {
                self.queue.push_back(gid);
            }
        } else {
            self.units[unit].resident.push(gid);
        }
    }

    /// Queue mode: places a waiting group onto `unit`, spawning its
    /// threads in that unit's emulator.
    fn materialize(&mut self, gid: u64, unit_idx: usize) {
        let g = self.groups[gid as usize].as_mut().expect("queued group exists");
        debug_assert!(g.threads.is_empty());
        g.unit = unit_idx;
        let (program, constants): (Arc<Program>, Arc<Vec<Vec4>>) = match &g.payload {
            GroupPayload::Vertices(vs) => (
                Arc::clone(&vs[0].batch.state.vertex_program),
                Arc::clone(&vs[0].batch.state.vertex_constants),
            ),
            GroupPayload::Quad(q) => (
                Arc::clone(&q.tri.batch.state.fragment_program),
                Arc::clone(&q.tri.batch.state.fragment_constants),
            ),
        };
        let emu =
            Self::emulator_for(&mut self.units[unit_idx], g.batch_id, g.target, &program, &constants);
        g.threads = match &g.payload {
            GroupPayload::Vertices(vs) => vs.iter().map(|v| emu.spawn(&v.inputs)).collect(),
            GroupPayload::Quad(q) => q.frags.iter().map(|f| emu.spawn(&f.inputs)).collect(),
        };
        self.units[unit_idx].resident.push(gid);
        self.units[unit_idx].current = Some(gid);
    }

    /// Chooses the least-loaded eligible unit, or `None` if dedicated
    /// vertex units are saturated.
    fn pick_unit(&self, vertex: bool) -> Option<usize> {
        let want_vertex_unit = vertex && !self.config.unified;
        let candidates = self
            .units
            .iter()
            .enumerate()
            .filter(|(_, u)| u.vertex_unit == want_vertex_unit);
        candidates.min_by_key(|(_, u)| u.resident.len()).map(|(i, _)| i)
    }

    fn emulator_for<'a>(
        unit: &'a mut UnitState,
        batch_id: u64,
        target: ShaderTarget,
        program: &Arc<Program>,
        constants: &Arc<Vec<Vec4>>,
    ) -> &'a mut ShaderEmulator {
        match unit.emulators.iter().position(|(k, _)| *k == (batch_id, target)) {
            Some(i) => &mut unit.emulators[i].1,
            None => {
                let mut emu = ShaderEmulator::new(Arc::clone(program));
                for (i, c) in constants.iter().take(limits::PARAMS).enumerate() {
                    emu.set_constant(i, *c);
                }
                unit.emulators.push(((batch_id, target), emu));
                &mut unit.emulators.last_mut().expect("just pushed").1
            }
        }
    }

    // --- execution -------------------------------------------------------

    fn issue(&mut self, cycle: Cycle) {
        for unit_idx in 0..self.units.len() {
            let mut issued_any = false;
            for _ in 0..self.config.issue_per_cycle.max(1) {
                let Some(gid) = self.select_group(unit_idx, cycle) else { break };
                if self.issue_group(cycle, gid) {
                    issued_any = true;
                } else {
                    break;
                }
            }
            if issued_any {
                self.units[unit_idx].stat_busy.inc();
            }
        }
    }

    /// Picks the group to issue on `unit` this cycle.
    fn select_group(&mut self, unit: usize, cycle: Cycle) -> Option<u64> {
        match self.config.scheduling {
            ShaderScheduling::ThreadWindow => {
                // Oldest ready group whose next instruction's operands are
                // available. Groups attach in allocation order and `order`
                // is assigned monotonically, so `resident` is sorted by
                // age and the first ready group is the oldest.
                self.units[unit]
                    .resident
                    .iter()
                    .filter_map(|gid| self.groups[*gid as usize].as_ref())
                    .find(|g| g.state == GroupState::Ready && self.deps_ready(g, cycle))
                    .map(|g| g.id)
            }
            ShaderScheduling::InOrderQueue => {
                // Each unit runs one thread group to completion; groups
                // START in shader-input-queue order, taken by whichever
                // eligible unit frees up first. A texture stall on the
                // running group stalls its whole unit — the behaviour the
                // Section 5 case study measures.
                if self.units[unit].current.is_none() {
                    let q = if self.units[unit].vertex_unit {
                        &mut self.vqueue
                    } else {
                        &mut self.queue
                    };
                    match q.pop_front() {
                        Some(gid) => self.materialize(gid, unit),
                        None => return None,
                    }
                }
                let gid = self.units[unit].current?;
                let g = self.groups[gid as usize].as_ref()?;
                if g.state == GroupState::Ready && self.deps_ready(g, cycle) {
                    Some(gid)
                } else {
                    None
                }
            }
        }
    }

    fn deps_ready(&self, g: &Group, cycle: Cycle) -> bool {
        let inst = g.program.instructions()[g.pc];
        for src in inst.srcs.iter().flatten() {
            if src.reg.bank == Bank::Temp && g.reg_ready[src.reg.index as usize] > cycle {
                return false;
            }
        }
        if let Some(dst) = inst.dst {
            if dst.reg.bank == Bank::Temp && g.reg_ready[dst.reg.index as usize] > cycle {
                return false;
            }
        }
        true
    }

    /// Issues one instruction for every live thread of `gid` in lockstep.
    /// Returns `false` if nothing was issued.
    fn issue_group(&mut self, cycle: Cycle, gid: u64) -> bool {
        let g = self.groups[gid as usize].as_mut().expect("group exists");
        let unit = &mut self.units[g.unit];
        let emu = unit.emu_mut(g.batch_id, g.target).expect("emulator created at spawn");
        let inst = g.program.instructions()[g.pc];

        let mut tex_coords: [Option<Vec4>; 4] = [None; 4];
        let mut tex_meta: Option<(u8, f32, bool)> = None;
        let mut advanced = false;
        for (i, &tid) in g.threads.iter().enumerate() {
            if g.finished[i] {
                continue;
            }
            match emu.step(tid) {
                StepResult::Executed { latency } => {
                    advanced = true;
                    // The configurable per-opcode latency table (paper:
                    // execution stages range from 1 to 9 cycles).
                    let latency = self.latency_table[inst.op as usize].unwrap_or(latency);
                    if let Some(dst) = inst.dst {
                        if dst.reg.bank == Bank::Temp {
                            let r = &mut g.reg_ready[dst.reg.index as usize];
                            *r = (*r).max(cycle + latency);
                        }
                    }
                }
                StepResult::Texture(req) => {
                    tex_coords[i] = Some(req.coords);
                    tex_meta = Some((req.sampler, req.lod_bias, req.projective));
                }
                StepResult::Finished { killed } => {
                    g.finished[i] = true;
                    g.killed[i] = killed;
                    if killed {
                        self.stat_killed.inc();
                    }
                }
            }
        }
        unit.stat_instructions.inc();

        if let Some((sampler, lod_bias, projective)) = tex_meta {
            // Build the quad texture request; killed/finished helper slots
            // reuse a live thread's coordinates for derivatives.
            let fallback = tex_coords.iter().flatten().next().copied().unwrap_or(Vec4::ZERO);
            let coords = [
                tex_coords[0].unwrap_or(fallback),
                tex_coords[1].unwrap_or(fallback),
                tex_coords[2].unwrap_or(fallback),
                tex_coords[3].unwrap_or(fallback),
            ];
            let batch = match &g.payload {
                GroupPayload::Quad(q) => Arc::clone(&q.tri.batch),
                GroupPayload::Vertices(v) => Arc::clone(&v[0].batch),
            };
            let id = self.next_tex_id;
            self.next_tex_id += 1;
            g.tex_id = Some(id);
            let gid_for_reply = g.id;
            g.state = GroupState::TexBlocked;
            self.tex_waiters.insert(id, gid_for_reply);
            self.stat_tex_requests.inc();
            let unit_idx = g.unit;
            self.tex_outbox.push_back(QuadTexRequest {
                id,
                shader_unit: unit_idx,
                sampler,
                coords,
                lod_bias,
                projective,
                batch,
            });
            return true;
        }

        if advanced {
            g.pc += 1;
        }
        if g.finished.iter().all(|f| *f) {
            g.state = GroupState::Finished;
            if g.target == ShaderTarget::Vertex {
                self.vertex_outbox.push_back(gid);
            }
            if self.config.scheduling == ShaderScheduling::InOrderQueue {
                self.units[g.unit].current = None;
            }
        }
        true
    }

    fn drain_tex_outbox(&mut self, cycle: Cycle) -> Result<(), SimError> {
        while !self.tex_outbox.is_empty() {
            // Round-robin distribution over the TU pool (the paper notes
            // its distribution algorithm is "not properly optimized" —
            // neither is round robin, deliberately).
            let n = self.tex_requests.len();
            let mut sent = false;
            for off in 0..n {
                let tu = (self.next_tu + off) % n;
                if self.tex_requests[tu].can_send(cycle) {
                    let req = self.tex_outbox.pop_front().expect("front exists"); // lint:allow(clock-unwrap) emptiness checked above
                    self.tex_requests[tu].try_send(cycle, req)?;
                    self.next_tu = (tu + 1) % n;
                    sent = true;
                    break;
                }
            }
            if !sent {
                break;
            }
        }
        Ok(())
    }

    fn receive_tex_replies(&mut self, cycle: Cycle) -> Result<(), SimError> {
        for tu in 0..self.tex_replies.len() {
            while let Some(reply) = self.tex_replies[tu].try_pop(cycle)? {
                let Some(gid) = self.tex_waiters.remove(&reply.id) else { continue };
                let Some(g) = self.groups.get_mut(gid as usize).and_then(|s| s.as_mut()) else {
                    continue;
                };
                let unit = &mut self.units[g.unit];
                let emu = unit
                    .emu_mut(g.batch_id, g.target)
                    .expect("emulator alive while group blocked"); // lint:allow(clock-unwrap) emulators outlive their blocked groups
                for (i, &tid) in g.threads.iter().enumerate() {
                    if !g.finished[i] {
                        emu.complete_texture(tid, reply.texels[i]);
                    }
                }
                // The TEX destination register becomes ready now.
                let inst = g.program.instructions()[g.pc];
                if let Some(dst) = inst.dst {
                    if dst.reg.bank == Bank::Temp {
                        g.reg_ready[dst.reg.index as usize] = cycle + 1;
                    }
                }
                g.pc += 1;
                g.tex_id = None;
                g.state = GroupState::Ready;
            }
        }
        Ok(())
    }

    // --- completion ------------------------------------------------------

    fn deliver_outputs(&mut self, cycle: Cycle) -> Result<(), SimError> {
        while let Some(&gid) = self.vertex_outbox.front() {
            if !self.try_deliver(cycle, gid)? {
                break;
            }
            self.vertex_outbox.pop_front();
            self.release_group(gid);
        }
        // Fragment reorder buffer: only the oldest quad may leave, and
        // only once its shading has finished.
        while let Some(&gid) = self.frag_order.front() {
            let finished = self.groups[gid as usize]
                .as_ref()
                .map(|g| g.state == GroupState::Finished)
                .unwrap_or(false);
            if !finished || !self.try_deliver(cycle, gid)? {
                break;
            }
            self.frag_order.pop_front();
            self.release_group(gid);
        }
        Ok(())
    }

    fn try_deliver(&mut self, cycle: Cycle, gid: u64) -> Result<bool, SimError> {
        let g = self.groups[gid as usize].as_ref().expect("group in outbox"); // lint:allow(clock-unwrap) outbox ids always reference live groups
        let unit = &self.units[g.unit];
        let emu = unit.emu(g.batch_id, g.target).expect("emulator alive"); // lint:allow(clock-unwrap) emulators outlive their groups
        match &g.payload {
            GroupPayload::Vertices(vs) => {
                if self.out_shaded.sendable(cycle) < vs.len() {
                    return Ok(false);
                }
                for (i, v) in vs.iter().enumerate() {
                    let outputs: Arc<VertexOutputs> = Arc::new(emu.outputs(g.threads[i]));
                    let sv = ShadedVertex {
                        obj: DynamicObject::child_of(self.ids.next_id(), &v.obj),
                        batch: Arc::clone(&v.batch),
                        seq: v.seq,
                        index: v.index,
                        outputs,
                    };
                    // (borrow rules: collect first, send after)
                    self.out_shaded.try_send(cycle, sv)?;
                }
                Ok(true)
            }
            GroupPayload::Quad(q) => {
                let early = q.tri.batch.state.early_z();
                let (ports, unit_idx) = if early {
                    let u = route_rop(q.x, q.y, self.out_color.len());
                    (&self.out_color, u)
                } else {
                    let u = route_rop(q.x, q.y, self.out_zstencil.len());
                    (&self.out_zstencil, u)
                };
                if !ports[unit_idx].can_send(cycle) {
                    return Ok(false);
                }
                // Move the quad out without cloning its per-fragment
                // input vectors (the group is released right after this).
                let g = self.groups[gid as usize].as_mut().expect("group in outbox"); // lint:allow(clock-unwrap) outbox ids always reference live groups
                let payload =
                    std::mem::replace(&mut g.payload, GroupPayload::Vertices(Vec::new()));
                let mut quad = match payload {
                    GroupPayload::Quad(q) => q,
                    _ => unreachable!(), // lint:allow(clock-unwrap) variant excluded by the surrounding match
                };
                let g = self.groups[gid as usize].as_ref().expect("group in outbox"); // lint:allow(clock-unwrap) outbox ids always reference live groups
                let unit = &self.units[g.unit];
                let emu = unit.emu(g.batch_id, g.target).expect("alive"); // lint:allow(clock-unwrap) emulators outlive their groups
                let mut any_alive = false;
                for i in 0..4 {
                    quad.frags[i].color = emu.output(g.threads[i], 0);
                    if g.killed[i] {
                        quad.frags[i].alive = false;
                    }
                    if quad.frags[i].alive {
                        any_alive = true;
                        self.stat_frags_shaded.inc();
                    }
                    quad.frags[i].inputs = Vec::new();
                }
                if any_alive {
                    let send_early = quad.tri.batch.state.early_z();
                    if send_early {
                        let u = route_rop(quad.x, quad.y, self.out_color.len());
                        self.out_color[u].try_send(cycle, quad)?;
                    } else {
                        let u = route_rop(quad.x, quad.y, self.out_zstencil.len());
                        self.out_zstencil[u].try_send(cycle, quad)?;
                    }
                }
                Ok(true)
            }
        }
    }

    fn release_group(&mut self, gid: u64) {
        let g = self.groups[gid as usize].take().expect("group exists");
        self.free_slots.push(gid as u32);
        self.live_groups -= 1;
        let unit = &mut self.units[g.unit];
        unit.resident.retain(|x| *x != gid);
        let emu = unit.emu_mut(g.batch_id, g.target).expect("alive");
        for &tid in &g.threads {
            emu.retire(tid);
        }
        // Prune idle emulators of other batches to bound memory.
        if unit.emulators.len() > 8 {
            let batch = g.batch_id;
            unit.emulators.retain(|((b, _), e)| *b == batch || e.live_threads() > 0);
        }
        let vertex = g.target == ShaderTarget::Vertex && !self.config.unified;
        if vertex {
            self.v_inputs_used -= g.inputs_reserved;
            self.v_regs_used -= g.regs_reserved;
        } else {
            self.inputs_used -= g.inputs_reserved;
            self.regs_used -= g.regs_reserved;
        }
    }

    /// Whether work is in flight.
    pub fn busy(&self) -> bool {
        self.live_groups > 0
            || !self.vertex_staging.is_empty()
            || !self.in_vertices.idle()
            || !self.in_quads.idle()
            || !self.tex_outbox.is_empty()
            || !self.vertex_outbox.is_empty()
            || !self.frag_order.is_empty()
    }

    /// The box's event horizon: busy while shader groups, staging buffers
    /// or reorder queues hold work, otherwise the earliest arrival across
    /// the vertex wire, the quad wire, and every texture-reply wire (see
    /// [`attila_sim::Horizon`]).
    pub fn work_horizon(&self) -> attila_sim::Horizon {
        if self.live_groups > 0
            || !self.vertex_staging.is_empty()
            || !self.tex_outbox.is_empty()
            || !self.vertex_outbox.is_empty()
            || !self.frag_order.is_empty()
        {
            return attila_sim::Horizon::Busy;
        }
        let mut h = self.in_vertices.work_horizon().meet(self.in_quads.work_horizon());
        for p in &self.tex_replies {
            h = h.meet(p.work_horizon());
        }
        h
    }

    /// The box's declared interface for the architecture verifier.
    pub fn declared_ports(&self) -> Vec<attila_sim::PortDecl> {
        let mut ports = vec![
            self.in_vertices.decl(),
            self.in_quads.decl(),
            self.out_shaded.decl(),
        ];
        ports.extend(self.out_color.iter().map(|p| p.decl()));
        ports.extend(self.out_zstencil.iter().map(|p| p.decl()));
        ports.extend(self.tex_requests.iter().map(|p| p.decl()));
        ports.extend(self.tex_replies.iter().map(|p| p.decl()));
        ports
    }

    /// Objects waiting in the box's queues and reorder buffers.
    pub fn queued(&self) -> usize {
        self.in_vertices.len()
            + self.in_quads.len()
            + self.vertex_staging.len()
            + self.tex_outbox.len()
            + self.vertex_outbox.len()
            + self.frag_order.len()
    }

    /// Live shader inputs (window occupancy — Figure 9's shader metric).
    pub fn inputs_in_flight(&self) -> usize {
        self.inputs_used + self.v_inputs_used
    }

    /// Fragments shaded so far.
    pub fn fragments_shaded(&self) -> u64 {
        self.stat_frags_shaded.value()
    }

    /// Quad texture requests issued so far.
    pub fn texture_requests(&self) -> u64 {
        self.stat_tex_requests.value()
    }

    /// Per-unit busy-cycle counters, fragment/unified units first.
    pub fn unit_busy_cycles(&self) -> Vec<u64> {
        self.units.iter().map(|u| u.stat_busy.value()).collect()
    }

    /// Captures the scheduler's persistent state for checkpointing. Only
    /// valid at a quiescent point: with no live groups the slab, queues,
    /// occupancy counters and per-unit emulators (recreated on demand,
    /// keyed by batch id) are all empty or cold-rebuildable, leaving the
    /// four monotonic cursors below.
    pub fn save_state(&self) -> FragmentFifoState {
        FragmentFifoState {
            next_order: self.next_order,
            next_tex_id: self.next_tex_id,
            next_tu: self.next_tu,
            ids_issued: self.ids.issued(),
        }
    }

    /// Restores a snapshot taken by [`save_state`](Self::save_state).
    pub fn load_state(&mut self, state: &FragmentFifoState) {
        self.next_order = state.next_order;
        self.next_tex_id = state.next_tex_id;
        self.next_tu = state.next_tu;
        self.ids.restore_issued(state.ids_issued);
    }
}

/// Plain-data snapshot of the Fragment FIFO's persistent state, for
/// checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentFifoState {
    /// Next group admission-order stamp.
    pub next_order: u64,
    /// Next texture-request id.
    pub next_tex_id: u64,
    /// Round-robin texture-unit cursor.
    pub next_tu: usize,
    /// Dynamic-object ids issued so far.
    pub ids_issued: u64,
}

impl std::fmt::Debug for FragmentFifo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FragmentFifo")
            .field("units", &self.units.len())
            .field("groups", &self.live_groups)
            .field("inputs_used", &self.inputs_used)
            .field("regs_used", &self.regs_used)
            .finish()
    }
}
