//! # attila-core — the ATTILA GPU pipeline
//!
//! A cycle-level, execution-driven model of the generic GPU
//! microarchitecture described in Moya et al., *ATTILA: A Cycle-Level
//! Execution-Driven Simulator for Modern GPU Architectures* (ISPASS
//! 2006), built on the boxes-and-signals framework of `attila-sim`, the
//! functional emulators of `attila-emu` and the memory models of
//! `attila-mem`.
//!
//! Every unit of the paper's pipeline (Figures 1/2/5) is a module here:
//!
//! | Paper unit | Module |
//! |---|---|
//! | Command Processor | [`command_processor`] |
//! | Streamer (fetch / loader / commit, vertex cache) | [`streamer`] |
//! | Primitive Assembly | [`primitive_assembly`] |
//! | Clipper | [`clipper`] |
//! | Triangle Setup | [`setup`] |
//! | Fragment Generator | [`fraggen`] |
//! | Hierarchical Z | [`hz`] |
//! | Z & Stencil Test (ROPz) | [`zstencil`] |
//! | Interpolator | [`interpolator`] |
//! | Fragment FIFO + shader units | [`ffifo`] |
//! | Texture Unit | [`texunit`] |
//! | Color Write (ROPc) | [`colorwrite`] |
//! | DAC | inside [`gpu`] |
//! | Memory Controller | `attila-mem` |
//!
//! The top-level [`Gpu`] wires them per [`GpuConfig`] — over 100
//! parameters with presets for the paper's baseline (Tables 1–2), the
//! Section 5 case study, a non-unified variant, an embedded part and a
//! high-end part. The [`golden`] module is the pure-functional reference
//! renderer used (as the paper uses a real GeForce) to validate rendered
//! output.
//!
//! The clock loop is idle-aware: every box reports an event horizon
//! (`work_horizon`, see [`attila_sim::Horizon`]) and
//! [`Gpu::run_trace`](gpu::Gpu::run_trace) jumps the cycle counter over
//! stretches the whole machine — boxes, memory controller and every
//! in-flight signal — agrees are dead time. Cycle counts, statistics and
//! framebuffers are bit-identical with skipping on or off
//! ([`Gpu::skip_idle`](gpu::Gpu::skip_idle)); upload-bound workloads run
//! several times faster in wall-clock.

#![warn(missing_docs)]
// `deny` rather than `forbid`: the one sanctioned exception is
// [`shard::ShardCell`], the audited phase-disjoint cell behind the
// multi-threaded clock loop, which opts in with a scoped `allow`.
#![deny(unsafe_code)]

pub mod address;
pub mod checkpoint;
pub mod clipper;
pub mod colorwrite;
pub mod command_processor;
pub mod commands;
pub mod config;
pub mod ffifo;
pub mod fraggen;
pub mod golden;
pub mod gpu;
pub mod hz;
pub mod interpolator;
pub mod port;
pub mod primitive_assembly;
pub mod report;
pub mod serve;
pub mod setup;
pub mod shard;
pub mod state;
pub mod streamer;
pub mod sweep;
pub mod texunit;
pub mod types;
pub mod zstencil;

pub use checkpoint::{config_hash, trace_hash, Checkpoint, CheckpointBody};
pub use commands::{DrawCall, GpuCommand, Primitive};
pub use config::{GpuConfig, ShaderScheduling};
pub use golden::GoldenRenderer;
pub use gpu::{FrameDump, Gpu, GpuError, RunResult};
pub use report::{BoxStatus, FailureReport};
pub use serve::{JobResult, JobSpec, JobStatus, ServeConfig, ServeReport};
pub use state::{AttributeBinding, CullMode, RenderState, ScissorState};
pub use sweep::{run_sweep, sweep_csv, sweep_json, SweepJob, SweepOutcome};
