//! Parallel design-space sweeps.
//!
//! The ATTILA paper's evaluation (Figures 7–9) is a *design-space sweep*:
//! the same trace simulated across a grid of configurations (texture-unit
//! counts, schedulers). A single simulation is inherently serial — the
//! boxes share one clock — but distinct configurations are embarrassingly
//! parallel: each worker owns an independent [`Gpu`] built from its own
//! [`GpuConfig`], so nothing is shared but the (immutable) command trace.
//!
//! [`run_sweep`] fans a job list across `std::thread` workers pulling from
//! a shared queue and merges the results back **in job order**, making the
//! report byte-identical no matter how many workers ran or how the OS
//! scheduled them. Each job's simulation is the ordinary single-threaded,
//! deterministic clock loop, so per-config results are also identical to a
//! serial run of the same config.

use std::sync::{Arc, Mutex};

use crate::commands::GpuCommand;
use crate::config::GpuConfig;
use crate::gpu::{Gpu, GpuError};

/// One configuration to simulate in a sweep.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Label identifying the configuration in the report (e.g. `tus=2`).
    pub label: String,
    /// The full GPU configuration for this run.
    pub config: GpuConfig,
    /// Clock-loop threads for this job's machine (1 = the serial loop;
    /// see [`Gpu::with_threads`]). Results are bit-identical at every
    /// count, so this only trades per-job wall-clock against the number
    /// of sweep workers sharing the host.
    pub threads: usize,
}

/// The outcome of one sweep job.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The job's label.
    pub label: String,
    /// Simulated cycles (deterministic per config).
    pub cycles: u64,
    /// Frames rendered.
    pub frames: u64,
    /// Frames per second at the configured core clock.
    pub fps: f64,
    /// Aggregate texture-cache hit rate.
    pub tex_hit_rate: f64,
    /// Total DRAM bytes moved.
    pub mem_bytes: u64,
    /// DRAM row-buffer hits across all channels and banks.
    pub row_hits: u64,
    /// DRAM row-buffer misses (bank idle, one ACTIVATE).
    pub row_misses: u64,
    /// DRAM row-buffer conflicts (PRECHARGE + ACTIVATE).
    pub row_conflicts: u64,
    /// End-of-run statistic totals, in name order (`name,value` rows).
    pub stat_totals: Vec<(String, f64)>,
    /// Wall-clock seconds this job took (machine-dependent; excluded from
    /// the deterministic CSV/JSON fields above).
    pub wall_secs: f64,
    /// The error, if the run aborted instead of draining.
    pub error: Option<String>,
}

/// How many end-of-run statistics to keep per job (the full ~300-stat
/// dump times the grid size gets large; sweeps keep the totals).
fn collect_outcome(
    label: String,
    config: GpuConfig,
    commands: &[GpuCommand],
    threads: usize,
) -> SweepOutcome {
    let clock = config.display.clock_mhz;
    // lint:allow(wall-clock) host-side harness timing; excluded from the deterministic report fields
    let start = std::time::Instant::now();
    let mut gpu = Gpu::with_threads(config, threads.max(1));
    gpu.keep_frames = false;
    gpu.max_cycles = 2_000_000_000;
    match gpu.run_trace(commands) {
        Ok(result) => {
            let (_, _, tex_hit_rate) = gpu.texture_cache_stats();
            let stat_totals = gpu
                .stats()
                .names()
                .iter()
                .filter_map(|n| gpu.stats().total(n).map(|v| (n.to_string(), v)))
                .collect();
            SweepOutcome {
                label,
                cycles: result.cycles,
                frames: result.frames,
                fps: result.fps(clock),
                tex_hit_rate,
                mem_bytes: gpu.memory().bytes_read() + gpu.memory().bytes_written(),
                row_hits: gpu.memory().row_hits(),
                row_misses: gpu.memory().row_misses(),
                row_conflicts: gpu.memory().row_conflicts(),
                stat_totals,
                wall_secs: start.elapsed().as_secs_f64(),
                error: None,
            }
        }
        Err(e) => SweepOutcome {
            label,
            cycles: gpu.cycle(),
            frames: 0,
            fps: 0.0,
            tex_hit_rate: 0.0,
            mem_bytes: 0,
            row_hits: 0,
            row_misses: 0,
            row_conflicts: 0,
            stat_totals: Vec::new(),
            wall_secs: start.elapsed().as_secs_f64(),
            error: Some(describe_error(&e)),
        },
    }
}

fn describe_error(e: &GpuError) -> String {
    e.to_string()
}

/// [`collect_outcome`] with a panic fence: a config cell whose
/// elaboration or run panics (e.g. a constraint [`Gpu::new`] refuses)
/// becomes a failed row in the merged report instead of poisoning the
/// worker and losing the whole sweep.
fn collect_outcome_caught(
    label: String,
    config: GpuConfig,
    commands: &[GpuCommand],
    threads: usize,
) -> SweepOutcome {
    let keep = label.clone();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        collect_outcome(label, config, commands, threads)
    }));
    caught.unwrap_or_else(|payload| failed_outcome(keep, panic_text(payload.as_ref())))
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn failed_outcome(label: String, message: String) -> SweepOutcome {
    SweepOutcome {
        label,
        cycles: 0,
        frames: 0,
        fps: 0.0,
        tex_hit_rate: 0.0,
        mem_bytes: 0,
        row_hits: 0,
        row_misses: 0,
        row_conflicts: 0,
        stat_totals: Vec::new(),
        wall_secs: 0.0,
        error: Some(format!("worker panic: {message}")),
    }
}

/// Runs `jobs` over `commands` on up to `workers` threads and returns the
/// outcomes **in job order** (deterministic merge).
///
/// `workers == 0` or `1` runs serially on the calling thread — useful as
/// the baseline when measuring sweep scaling. Each worker builds its own
/// [`Gpu`]; nothing is shared across jobs except the immutable command
/// slice, so per-config results are bit-identical to a serial run.
pub fn run_sweep(
    jobs: Vec<SweepJob>,
    commands: Arc<Vec<GpuCommand>>,
    workers: usize,
) -> Vec<SweepOutcome> {
    let n_jobs = jobs.len();
    if workers <= 1 || n_jobs <= 1 {
        return jobs
            .into_iter()
            .map(|j| collect_outcome_caught(j.label, j.config, &commands, j.threads))
            .collect();
    }
    let labels: Vec<String> = jobs.iter().map(|j| j.label.clone()).collect();
    let workers = workers.min(n_jobs);
    // A shared pull queue: indexes keep the merge order independent of
    // which worker finishes first.
    let queue: Arc<Mutex<Vec<(usize, SweepJob)>>> =
        Arc::new(Mutex::new(jobs.into_iter().enumerate().rev().collect()));
    let results: Arc<Mutex<Vec<Option<SweepOutcome>>>> =
        Arc::new(Mutex::new((0..n_jobs).map(|_| None).collect()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let results = Arc::clone(&results);
            let commands = Arc::clone(&commands);
            scope.spawn(move || loop {
                let job = queue.lock().expect("queue lock").pop();
                let Some((idx, job)) = job else { break };
                let outcome =
                    collect_outcome_caught(job.label, job.config, &commands, job.threads);
                results.lock().expect("results lock")[idx] = Some(outcome);
            });
        }
    });
    // Belt and braces: `collect_outcome_caught` already fences panics, so
    // every slot should be filled — but if a worker nonetheless died
    // between claiming a job and reporting, mark that cell failed instead
    // of panicking the merge and losing the healthy rows.
    Arc::try_unwrap(results)
        .expect("workers joined")
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        .enumerate()
        .map(|(idx, r)| {
            r.unwrap_or_else(|| {
                failed_outcome(labels[idx].clone(), "worker died before reporting".into())
            })
        })
        .collect()
}

/// Renders sweep outcomes as a CSV table (one row per job, job order).
pub fn sweep_csv(outcomes: &[SweepOutcome]) -> String {
    let mut out = String::from(
        "config,cycles,frames,fps,tex_hit_rate,mem_bytes,row_hits,row_misses,row_conflicts,error\n",
    );
    for o in outcomes {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "{},{},{},{:.4},{:.6},{},{},{},{},{}",
            o.label,
            o.cycles,
            o.frames,
            o.fps,
            o.tex_hit_rate,
            o.mem_bytes,
            o.row_hits,
            o.row_misses,
            o.row_conflicts,
            o.error.as_deref().unwrap_or("")
        );
    }
    out
}

/// Renders sweep outcomes as a JSON report (job order, deterministic).
pub fn sweep_json(outcomes: &[SweepOutcome]) -> attila_json::Json {
    use attila_json::Json;
    Json::Obj(vec![(
        "sweep".into(),
        Json::Arr(
            outcomes
                .iter()
                .map(|o| {
                    let mut fields = vec![
                        ("config".into(), Json::Str(o.label.clone())),
                        ("cycles".into(), Json::Num(o.cycles as f64)),
                        ("frames".into(), Json::Num(o.frames as f64)),
                        ("fps".into(), Json::Num(o.fps)),
                        ("tex_hit_rate".into(), Json::Num(o.tex_hit_rate)),
                        ("mem_bytes".into(), Json::Num(o.mem_bytes as f64)),
                        ("row_hits".into(), Json::Num(o.row_hits as f64)),
                        ("row_misses".into(), Json::Num(o.row_misses as f64)),
                        ("row_conflicts".into(), Json::Num(o.row_conflicts as f64)),
                    ];
                    if let Some(e) = &o.error {
                        fields.push(("error".into(), Json::Str(e.clone())));
                    }
                    Json::Obj(fields)
                })
                .collect(),
        ),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShaderScheduling;

    fn tiny_jobs(n: usize) -> Vec<SweepJob> {
        (0..n)
            .map(|i| {
                let mut config = GpuConfig::case_study(
                    1 + i % 2,
                    if i % 2 == 0 {
                        ShaderScheduling::ThreadWindow
                    } else {
                        ShaderScheduling::InOrderQueue
                    },
                );
                config.display.width = 32;
                config.display.height = 32;
                SweepJob { label: format!("job{i}"), config, threads: 1 + i % 2 }
            })
            .collect()
    }

    fn tiny_commands() -> Arc<Vec<GpuCommand>> {
        // A minimal command stream: clear and swap one frame.
        Arc::new(vec![
            GpuCommand::FastClearColor(0xff20_4060),
            GpuCommand::Swap,
        ])
    }

    #[test]
    fn parallel_matches_serial_in_order() {
        let commands = tiny_commands();
        let serial = run_sweep(tiny_jobs(4), Arc::clone(&commands), 1);
        let parallel = run_sweep(tiny_jobs(4), commands, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label, "merge order must be job order");
            assert_eq!(s.cycles, p.cycles, "{}: cycles diverge across workers", s.label);
            assert_eq!(s.frames, p.frames);
            assert_eq!(s.stat_totals, p.stat_totals, "{}: stats diverge", s.label);
        }
    }

    #[test]
    fn panicking_config_cell_fails_alone() {
        // One cell of the grid is broken in a way Gpu::new panics on
        // (mismatched ROP unit counts, bypassing validate()); the sweep
        // must mark that row failed and still deliver the healthy rows —
        // on both the serial and the threaded path.
        let mut bad = GpuConfig::case_study(1, ShaderScheduling::ThreadWindow);
        bad.display.width = 32;
        bad.display.height = 32;
        bad.zstencil.units = 2;
        bad.colorwrite.units = 1;
        for workers in [1, 3] {
            let mut jobs = tiny_jobs(3);
            jobs.insert(1, SweepJob { label: "bad".into(), config: bad.clone(), threads: 1 });
            let outcomes = run_sweep(jobs, tiny_commands(), workers);
            assert_eq!(outcomes.len(), 4, "workers={workers}: all rows present");
            assert_eq!(outcomes[1].label, "bad", "workers={workers}: job order kept");
            let err = outcomes[1].error.as_deref().unwrap_or_default();
            assert!(
                err.contains("worker panic"),
                "workers={workers}: failed cell must say it panicked: {err:?}"
            );
            for o in [&outcomes[0], &outcomes[2], &outcomes[3]] {
                assert!(o.error.is_none(), "workers={workers}: healthy row {} lost", o.label);
                assert!(o.cycles > 0, "workers={workers}: healthy row {} empty", o.label);
            }
            // The failed cell shows up in the merged reports, not just in memory.
            assert!(sweep_csv(&outcomes).contains("worker panic"));
            assert!(sweep_json(&outcomes).pretty().contains("worker panic"));
        }
    }

    #[test]
    fn csv_and_json_are_deterministic() {
        let commands = tiny_commands();
        let a = run_sweep(tiny_jobs(3), Arc::clone(&commands), 3);
        let b = run_sweep(tiny_jobs(3), commands, 2);
        assert_eq!(sweep_csv(&a), sweep_csv(&b));
        assert_eq!(sweep_json(&a).pretty(), sweep_json(&b).pretty());
    }
}
