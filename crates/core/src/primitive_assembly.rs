//! Primitive Assembly: grouping shaded vertices into triangles.
//!
//! "The Primitive Assembly stage stores vertices and assemblies them as
//! triangles. We support five OpenGL primitives: triangle lists, fans and
//! strips and quad lists and strips" (§2.2). Quads are emitted as two
//! triangles. Output rate: 1 triangle per cycle (Table 1).

use std::sync::Arc;

use attila_sim::{Counter, Cycle, DynamicObject, ObjectIdGen, SimError};

use crate::commands::Primitive;
use crate::port::{PortReceiver, PortSender};
use crate::types::{Batch, ShadedVertex, TriangleWork, VertexOutputs};

/// The Primitive Assembly box.
#[derive(Debug)]
pub struct PrimitiveAssembly {
    /// In-order shaded vertices from the Streamer.
    pub in_verts: PortReceiver<ShadedVertex>,
    /// Assembled triangles to the Clipper.
    pub out_tris: PortSender<TriangleWork>,

    batch: Option<Arc<Batch>>,
    received: u32,
    /// Vertex window: at most the last 4 vertices are needed.
    window: Vec<Arc<VertexOutputs>>,
    /// Strip parity (even/odd triangle of a strip).
    parity: bool,
    /// Triangles assembled, awaiting the 1/cycle output slot.
    pending_out: std::collections::VecDeque<TriangleWork>,
    ids: ObjectIdGen,
    stat_triangles: Counter,
}

impl PrimitiveAssembly {
    /// Builds the box around its ports.
    pub fn new(
        in_verts: PortReceiver<ShadedVertex>,
        out_tris: PortSender<TriangleWork>,
        stats: &mut attila_sim::StatsRegistry,
    ) -> Self {
        PrimitiveAssembly {
            in_verts,
            out_tris,
            batch: None,
            received: 0,
            window: Vec::new(),
            parity: false,
            pending_out: std::collections::VecDeque::new(),
            ids: ObjectIdGen::new(),
            stat_triangles: stats.counter("PrimitiveAssembly.triangles"),
        }
    }

    /// Advances the box one cycle.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised by the box's signals.
    pub fn clock(&mut self, cycle: Cycle) -> Result<(), SimError> {
        self.in_verts.try_update(cycle)?;
        self.out_tris.try_update(cycle)?;

        // Accept vertices while there is room to stage triangles.
        while self.pending_out.len() < 4 {
            let Some(sv) = self.in_verts.try_pop(cycle)? else { break };
            if self.batch.as_ref().map(|b| b.id) != Some(sv.batch.id) {
                self.batch = Some(Arc::clone(&sv.batch));
                self.received = 0;
                self.window.clear();
                self.parity = false;
            }
            self.received += 1;
            let batch = Arc::clone(self.batch.as_ref().expect("batch set")); // lint:allow(clock-unwrap) batch set when vertices arrive
            let prim = batch.draw.primitive;
            let is_last_vertex = self.received == batch.draw.vertex_count;
            self.window.push(Arc::clone(&sv.outputs));
            let mut new_tris: Vec<[Arc<VertexOutputs>; 3]> = Vec::new();
            match prim {
                Primitive::Triangles => {
                    if self.window.len() == 3 {
                        new_tris.push([
                            Arc::clone(&self.window[0]),
                            Arc::clone(&self.window[1]),
                            Arc::clone(&self.window[2]),
                        ]);
                        self.window.clear();
                    }
                }
                Primitive::TriangleStrip => {
                    if self.window.len() == 3 {
                        // Alternate winding to keep consistent facing.
                        let t = if !self.parity {
                            [
                                Arc::clone(&self.window[0]),
                                Arc::clone(&self.window[1]),
                                Arc::clone(&self.window[2]),
                            ]
                        } else {
                            [
                                Arc::clone(&self.window[1]),
                                Arc::clone(&self.window[0]),
                                Arc::clone(&self.window[2]),
                            ]
                        };
                        new_tris.push(t);
                        self.parity = !self.parity;
                        self.window.remove(0);
                    }
                }
                Primitive::TriangleFan => {
                    if self.window.len() == 3 {
                        new_tris.push([
                            Arc::clone(&self.window[0]),
                            Arc::clone(&self.window[1]),
                            Arc::clone(&self.window[2]),
                        ]);
                        self.window.remove(1);
                    }
                }
                Primitive::Quads => {
                    if self.window.len() == 4 {
                        new_tris.push([
                            Arc::clone(&self.window[0]),
                            Arc::clone(&self.window[1]),
                            Arc::clone(&self.window[2]),
                        ]);
                        new_tris.push([
                            Arc::clone(&self.window[0]),
                            Arc::clone(&self.window[2]),
                            Arc::clone(&self.window[3]),
                        ]);
                        self.window.clear();
                    }
                }
                Primitive::QuadStrip => {
                    if self.window.len() == 4 {
                        // Quad strip vertex order: v0 v1 v2 v3 form the
                        // quad (v0, v1, v3, v2).
                        new_tris.push([
                            Arc::clone(&self.window[0]),
                            Arc::clone(&self.window[1]),
                            Arc::clone(&self.window[3]),
                        ]);
                        new_tris.push([
                            Arc::clone(&self.window[0]),
                            Arc::clone(&self.window[3]),
                            Arc::clone(&self.window[2]),
                        ]);
                        self.window.drain(..2);
                    }
                }
            }
            let count = new_tris.len();
            for (i, verts) in new_tris.into_iter().enumerate() {
                self.stat_triangles.inc();
                self.pending_out.push_back(TriangleWork {
                    obj: DynamicObject::new(self.ids.next_id()),
                    batch: Arc::clone(&batch),
                    verts,
                    end_of_batch: is_last_vertex && i + 1 == count,
                });
            }
            if is_last_vertex {
                self.window.clear();
                self.parity = false;
            }
        }

        // 1 triangle per cycle out.
        if self.out_tris.can_send(cycle) {
            if let Some(tri) = self.pending_out.pop_front() {
                self.out_tris.try_send(cycle, tri)?;
            }
        }
        Ok(())
    }

    /// Whether work is still in flight.
    pub fn busy(&self) -> bool {
        !self.pending_out.is_empty() || !self.in_verts.idle()
    }

    /// The box's event horizon: busy while assembled triangles wait in the
    /// staging buffer or shaded vertices wait in the input queue, the
    /// wire's next arrival while vertices are in flight, idle otherwise
    /// (see [`attila_sim::Horizon`]).
    pub fn work_horizon(&self) -> attila_sim::Horizon {
        if !self.pending_out.is_empty() {
            return attila_sim::Horizon::Busy;
        }
        self.in_verts.work_horizon()
    }

    /// The box's declared interface for the architecture verifier.
    pub fn declared_ports(&self) -> Vec<attila_sim::PortDecl> {
        vec![self.in_verts.decl(), self.out_tris.decl()]
    }

    /// Objects waiting in the box's input queue and staging buffer.
    pub fn queued(&self) -> usize {
        self.in_verts.len() + self.pending_out.len()
    }

    /// Triangles assembled so far.
    pub fn triangles_assembled(&self) -> u64 {
        self.stat_triangles.value()
    }

    /// Dynamic-object ids issued so far (the box's whole persistent state:
    /// the vertex window and batch pointer reset when a new batch id
    /// arrives, and are empty at any quiescent point).
    pub fn ids_issued(&self) -> u64 {
        self.ids.issued()
    }

    /// Restores the dynamic-object id counter from a checkpoint.
    pub fn restore_ids(&mut self, issued: u64) {
        self.ids.restore_issued(issued);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::DrawCall;
    use crate::port::unbound_port;
    use crate::state::RenderState;
    use attila_emu::isa::limits;
    use attila_emu::vector::Vec4;
    use attila_sim::StatsRegistry;

    fn make_batch(prim: Primitive, n: u32) -> Arc<Batch> {
        Arc::new(Batch {
            id: 1,
            state: Arc::new(RenderState::default()),
            draw: DrawCall { primitive: prim, vertex_count: n, index_buffer: None },
        })
    }

    fn vert(batch: &Arc<Batch>, seq: u32) -> ShadedVertex {
        let mut outputs = [Vec4::ZERO; limits::OUTPUTS];
        outputs[0] = Vec4::new(seq as f32, 0.0, 0.0, 1.0);
        ShadedVertex {
            obj: DynamicObject::new(seq as u64),
            batch: Arc::clone(batch),
            seq,
            index: seq,
            outputs: Arc::new(outputs),
        }
    }

    fn run_assembly(prim: Primitive, n: u32) -> Vec<TriangleWork> {
        let mut stats = StatsRegistry::new(0);
        let (mut vtx_tx, vtx_rx) = unbound_port::<ShadedVertex>("v", 4, 1, 8);
        let (tri_tx, mut tri_rx) = unbound_port::<TriangleWork>("t", 1, 1, 64);
        let mut pa = PrimitiveAssembly::new(vtx_rx, tri_tx, &mut stats);
        let batch = make_batch(prim, n);
        let mut sent = 0u32;
        let mut out = Vec::new();
        for cycle in 0..200 {
            vtx_tx.update(cycle);
            while sent < n && vtx_tx.can_send(cycle) {
                vtx_tx.send(cycle, vert(&batch, sent));
                sent += 1;
            }
            pa.clock(cycle).expect("no faults");
            tri_rx.update(cycle);
            while let Some(t) = tri_rx.pop(cycle) {
                out.push(t);
            }
        }
        out
    }

    fn first_x(t: &TriangleWork) -> [f32; 3] {
        [t.verts[0][0].x, t.verts[1][0].x, t.verts[2][0].x]
    }

    #[test]
    fn triangle_list_groups_of_three() {
        let tris = run_assembly(Primitive::Triangles, 9);
        assert_eq!(tris.len(), 3);
        assert_eq!(first_x(&tris[0]), [0.0, 1.0, 2.0]);
        assert_eq!(first_x(&tris[2]), [6.0, 7.0, 8.0]);
        assert!(tris[2].end_of_batch);
        assert!(!tris[1].end_of_batch);
    }

    #[test]
    fn strip_alternates_winding() {
        let tris = run_assembly(Primitive::TriangleStrip, 5);
        assert_eq!(tris.len(), 3);
        assert_eq!(first_x(&tris[0]), [0.0, 1.0, 2.0]);
        assert_eq!(first_x(&tris[1]), [2.0, 1.0, 3.0], "odd triangle swaps");
        assert_eq!(first_x(&tris[2]), [2.0, 3.0, 4.0]);
    }

    #[test]
    fn fan_shares_first_vertex() {
        let tris = run_assembly(Primitive::TriangleFan, 5);
        assert_eq!(tris.len(), 3);
        assert_eq!(first_x(&tris[0]), [0.0, 1.0, 2.0]);
        assert_eq!(first_x(&tris[1]), [0.0, 2.0, 3.0]);
        assert_eq!(first_x(&tris[2]), [0.0, 3.0, 4.0]);
    }

    #[test]
    fn quads_become_two_triangles() {
        let tris = run_assembly(Primitive::Quads, 8);
        assert_eq!(tris.len(), 4);
        assert_eq!(first_x(&tris[0]), [0.0, 1.0, 2.0]);
        assert_eq!(first_x(&tris[1]), [0.0, 2.0, 3.0]);
        assert_eq!(first_x(&tris[2]), [4.0, 5.0, 6.0]);
    }

    #[test]
    fn quad_strip_shares_edges() {
        let tris = run_assembly(Primitive::QuadStrip, 6);
        assert_eq!(tris.len(), 4);
        assert_eq!(first_x(&tris[0]), [0.0, 1.0, 3.0]);
        assert_eq!(first_x(&tris[1]), [0.0, 3.0, 2.0]);
        assert_eq!(first_x(&tris[2]), [2.0, 3.0, 5.0]);
        assert_eq!(first_x(&tris[3]), [2.0, 5.0, 4.0]);
    }

    #[test]
    fn output_rate_is_one_per_cycle() {
        let mut stats = StatsRegistry::new(0);
        let (mut vtx_tx, vtx_rx) = unbound_port::<ShadedVertex>("v", 4, 1, 16);
        let (tri_tx, mut tri_rx) = unbound_port::<TriangleWork>("t", 1, 1, 64);
        let mut pa = PrimitiveAssembly::new(vtx_rx, tri_tx, &mut stats);
        let batch = make_batch(Primitive::Quads, 4);
        for cycle in 0..2 {
            vtx_tx.update(cycle);
            while vtx_tx.can_send(cycle) {
                let seq = vtx_tx.total_sent() as u32;
                if seq >= 4 {
                    break;
                }
                vtx_tx.send(cycle, vert(&batch, seq));
            }
            pa.clock(cycle).expect("no faults");
        }
        // The quad's two triangles must leave on different cycles.
        let mut arrivals = Vec::new();
        for cycle in 2..10 {
            pa.clock(cycle).expect("no faults");
            tri_rx.update(cycle);
            while tri_rx.pop(cycle).is_some() {
                arrivals.push(cycle);
            }
        }
        assert_eq!(arrivals.len(), 2);
        assert_ne!(arrivals[0], arrivals[1]);
    }
}
