//! The Z & Stencil test unit (ROPz).
//!
//! "The Z and Stencil unit tests the received fragment quads against the
//! stencil and a depth buffer which stores 8 bits for stencil and 24 bits
//! for depth per element. Quads with all the fragments marked as culled
//! are removed from the pipeline [...] while partial quads continue to
//! flow down. A Z cache is implemented to exploit access locality [...]
//! The Z cache implements a lossless compression algorithm with 1:2 and
//! 1:4 ratios [...] Fast Z and Stencil clear [...] is also implemented."
//! (§2.2)
//!
//! The unit serves both datapaths (paper Figure 5): the **early** input
//! receives quads from Hierarchical Z before shading; the **late** input
//! receives shaded quads from the Fragment FIFO when the batch state
//! forbids early Z. HZ reference updates are produced here, "calculated
//! when lines are evicted from the Z cache and compressed".

use std::collections::{BTreeMap, VecDeque};

use attila_emu::fragops::{
    compress_z_block, quantize_depth, unpack_depth_stencil, z_stencil_test, DEPTH_MAX,
    ZBLOCK_WORDS,
};
use attila_mem::controller::split_transactions;
use attila_mem::{Client, MemOp, MemRequest, MemoryController, RopCache};
use attila_sim::{Counter, Cycle, SimError};

use crate::address::{pixel_address, surface_bytes, tile_address, FB_TILE_BYTES};
use crate::config::RopConfig;
use crate::hz::HzUpdate;
use crate::port::{PortReceiver, PortSender};
use crate::types::FragQuad;

/// The Z & stencil test box (one instance per configured unit).
#[derive(Debug)]
pub struct ZStencilUnit {
    unit: u8, // state: derived — unit index fixed at construction
    config: RopConfig,
    /// Quads from Hierarchical Z (early-Z datapath).
    pub in_early: PortReceiver<FragQuad>,
    /// Shaded quads from the Fragment FIFO (late-Z datapath).
    pub in_late: PortReceiver<FragQuad>,
    /// Surviving early quads to the Interpolator.
    pub out_early: PortSender<FragQuad>,
    /// Surviving late quads to the paired Colour Write unit.
    pub out_late: PortSender<FragQuad>,
    /// HZ reference updates.
    pub out_hz: PortSender<HzUpdate>,

    cache: Option<RopCache>,
    target_width: u32,
    // state: transient — in-flight fill/writeback/HZ-update bookkeeping,
    // drained at the quiescent checkpoint boundary
    /// Outstanding fill transactions per line.
    fills: BTreeMap<u64, usize>,
    reply_to_line: BTreeMap<u64, u64>,
    /// Writeback transactions awaiting controller queue space.
    pending_writebacks: std::collections::VecDeque<(u64, u32)>,
    hz_queue: VecDeque<HzUpdate>,
    // state: checkpointed
    prefer_late: bool,
    next_req_id: u64,

    stat_quads: Counter,
    stat_frags_tested: Counter,
    stat_frags_passed: Counter,
    stat_busy_cycles: Counter,
}

impl ZStencilUnit {
    /// Builds one Z/stencil unit.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        unit: u8,
        config: RopConfig,
        in_early: PortReceiver<FragQuad>,
        in_late: PortReceiver<FragQuad>,
        out_early: PortSender<FragQuad>,
        out_late: PortSender<FragQuad>,
        out_hz: PortSender<HzUpdate>,
        stats: &mut attila_sim::StatsRegistry,
    ) -> Self {
        let prefix = format!("ZStencil{unit}");
        ZStencilUnit {
            unit,
            config,
            in_early,
            in_late,
            out_early,
            out_late,
            out_hz,
            cache: None,
            target_width: 0,
            fills: BTreeMap::new(),
            reply_to_line: BTreeMap::new(),
            pending_writebacks: std::collections::VecDeque::new(),
            hz_queue: VecDeque::new(),
            prefer_late: false,
            next_req_id: 0,
            stat_quads: stats.counter(&format!("{prefix}.quads")),
            stat_frags_tested: stats.counter(&format!("{prefix}.fragments_tested")),
            stat_frags_passed: stats.counter(&format!("{prefix}.fragments_passed")),
            stat_busy_cycles: stats.counter(&format!("{prefix}.busy_cycles")),
        }
    }

    /// The memory-controller client id of this unit.
    pub fn client(&self) -> Client {
        Client::ZStencil(self.unit)
    }

    /// (Re)binds the cache to a depth buffer and fast-clears it.
    pub fn fast_clear(&mut self, mem: &mut MemoryController, base: u64, len: u64, word: u32) {
        // The Command Processor only clears with the pipeline drained, so
        // the rebind never has to wait here.
        let ready = self.rebind_cache(mem, base, len);
        assert!(ready, "fast clear issued with fills in flight");
        self.cache.as_mut().expect("bound").fast_clear(mem.gpu_mem_mut(), word);
    }

    /// Returns `true` when the cache is bound to `(base, len)` and ready.
    /// Rebinding (render-target switch) waits for in-flight fills and
    /// flushes the old surface (writebacks + HZ references) first.
    fn rebind_cache(&mut self, mem: &mut MemoryController, base: u64, len: u64) -> bool {
        if let Some(c) = &self.cache {
            if c.base() == base && c.len() == len {
                return true;
            }
        }
        if !self.fills.is_empty() {
            return false; // drain outstanding fills of the old surface
        }
        self.flush(mem);
        self.cache = Some(RopCache::new(self.config.cache.into(), "Z", base, len));
        true
    }

    /// Advances the unit one cycle.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised by the box's signals.
    pub fn clock(&mut self, cycle: Cycle, mem: &mut MemoryController) -> Result<(), SimError> {
        self.in_early.try_update(cycle)?;
        self.in_late.try_update(cycle)?;
        self.out_early.try_update(cycle)?;
        self.out_late.try_update(cycle)?;
        self.out_hz.try_update(cycle)?;

        // Complete fills.
        while let Some(reply) = mem.pop_reply(self.client()) {
            if let Some(line) = self.reply_to_line.remove(&reply.id) {
                let left = self.fills.get_mut(&line).expect("fill bookkeeping"); // lint:allow(clock-unwrap) reply ids only map to lines with live fill entries
                *left -= 1;
                if *left == 0 {
                    self.fills.remove(&line);
                    if let Some(cache) = &mut self.cache {
                        cache.fill_done(line);
                    }
                }
            }
        }

        // Drain queued HZ updates.
        while let Some(u) = self.hz_queue.front() {
            if self.out_hz.can_send(cycle) {
                let u = *u;
                self.hz_queue.pop_front();
                self.out_hz.try_send(cycle, u)?;
            } else {
                break;
            }
        }

        // Drain queued writebacks as controller space frees up.
        while let Some(&(addr, size)) = self.pending_writebacks.front() {
            if !mem.can_accept(self.client(), addr) {
                break;
            }
            self.pending_writebacks.pop_front();
            let id = self.next_req_id;
            self.next_req_id += 1;
            mem.submit(MemRequest {
                id,
                client: self.client(),
                addr,
                op: MemOp::TimingWrite { size },
            })
            .expect("can_accept checked"); // lint:allow(clock-unwrap) submit follows the can_accept check above
        }

        let quads_per_cycle = (self.config.frags_per_cycle / 4).max(1);
        let mut did_work = false;
        for _ in 0..quads_per_cycle {
            // Alternate between the early and late inputs for fairness.
            let first_late = self.prefer_late;
            let mut progressed = false;
            for attempt in 0..2 {
                let late = first_late ^ (attempt == 1);
                if self.try_process_head(cycle, mem, late)? {
                    self.prefer_late = !late;
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                break;
            }
            did_work = true;
        }
        if did_work {
            self.stat_busy_cycles.inc();
        }
        Ok(())
    }

    /// Attempts to process the head quad of one input; returns `Ok(true)`
    /// on progress.
    fn try_process_head(
        &mut self,
        cycle: Cycle,
        mem: &mut MemoryController,
        late: bool,
    ) -> Result<bool, SimError> {
        let (state, qx, qy) = {
            let input = if late { &self.in_late } else { &self.in_early };
            let Some(quad) = input.peek() else { return Ok(false) };
            (std::sync::Arc::clone(&quad.tri.batch.state), quad.x, quad.y)
        };
        // Output availability first: never pop a quad we cannot forward.
        let out_ok = if late {
            self.out_late.can_send(cycle)
        } else {
            self.out_early.can_send(cycle)
        };
        if !out_ok {
            return Ok(false);
        }

        // Pass-through when neither test is enabled: no buffer access.
        if !state.depth.enabled && !state.stencil.enabled {
            let input = if late { &mut self.in_late } else { &mut self.in_early };
            let quad = input.try_pop(cycle)?.expect("peeked"); // lint:allow(clock-unwrap) head existence checked via peek above
            self.stat_quads.inc();
            self.stat_frags_tested.add(quad.live_count() as u64);
            self.stat_frags_passed.add(quad.live_count() as u64);
            self.forward(cycle, quad, late)?;
            return Ok(true);
        }

        let z_base = state.z_buffer;
        let len = surface_bytes(state.target_width, state.target_height);
        if !self.rebind_cache(mem, z_base, len) {
            return Ok(false); // old surface still draining
        }
        self.target_width = state.target_width;
        let line = tile_address(z_base, state.target_width, qx, qy);

        // Line must be resident.
        let cache = self.cache.as_mut().expect("ensured"); // lint:allow(clock-unwrap) rebind_cache returned ready
        match cache.lookup(cycle, line, false) {
            attila_mem::Lookup::Hit => {}
            attila_mem::Lookup::Blocked => return Ok(false),
            attila_mem::Lookup::Miss => {
                self.start_fill(cycle, mem, line);
                return Ok(false);
            }
        }

        // Resident: test the quad's live fragments. Back-facing
        // triangles may use the separate stencil state (double-sided
        // stencil for one-pass shadow volumes).
        let input = if late { &mut self.in_late } else { &mut self.in_early };
        let mut quad = input.try_pop(cycle)?.expect("peeked"); // lint:allow(clock-unwrap) head existence checked via peek above
        let stencil = if quad.tri.setup.front_facing {
            state.stencil
        } else {
            state.stencil_back.unwrap_or(state.stencil)
        };
        self.stat_quads.inc();
        let mut wrote = false;
        let mut raised = false;
        for i in 0..4 {
            if !quad.frags[i].alive {
                continue;
            }
            self.stat_frags_tested.inc();
            let (x, y) = quad.frag_coords(i);
            let addr = pixel_address(z_base, state.target_width, x, y);
            let stored = mem.gpu_mem().read_u32(addr);
            let frag_depth = quantize_depth(quad.frags[i].depth);
            let r = z_stencil_test(state.depth, stencil, frag_depth, stored);
            if r.written {
                if unpack_depth_stencil(r.new_word).0 > unpack_depth_stencil(stored).0 {
                    raised = true;
                }
                mem.gpu_mem_mut().write_u32(addr, r.new_word);
                wrote = true;
            }
            if r.pass {
                self.stat_frags_passed.inc();
            } else {
                quad.frags[i].alive = false;
            }
        }
        if wrote {
            self.cache.as_mut().expect("ensured").mark_dirty(line); // lint:allow(clock-unwrap) rebind_cache returned ready
        }
        if raised {
            // A depth write moved a value *up* (Greater-style compare):
            // the HZ reference for this block may now be stale-low, which
            // would cause false rejections. Loosen it fully; the next
            // eviction restores the exact maximum.
            let block = ((line - z_base) / FB_TILE_BYTES as u64) as usize;
            self.hz_queue.push_back(HzUpdate { block, max_depth: 1.0 });
        }
        self.forward(cycle, quad, late)?;
        Ok(true)
    }

    fn forward(&mut self, cycle: Cycle, quad: FragQuad, late: bool) -> Result<(), SimError> {
        // "Quads with all the fragments marked as culled are removed from
        // the pipeline" at this point (§2.2).
        if !quad.any_alive() {
            return Ok(());
        }
        if late {
            self.out_late.try_send(cycle, quad)
        } else {
            self.out_early.try_send(cycle, quad)
        }
    }

    /// Starts filling `line`, performing any needed dirty eviction with
    /// compression and HZ reference extraction.
    fn start_fill(&mut self, _cycle: Cycle, mem: &mut MemoryController, line: u64) {
        if self.fills.contains_key(&line) {
            return; // already in flight
        }
        // Reserve controller slots for the worst case: 4 evict + 4 fill.
        if mem.free_slots(self.client(), line) < 8 {
            return;
        }
        let client = self.client();
        let mut next_id = self.next_req_id;
        let compression = self.config.compression;
        let mut hz_update: Option<HzUpdate> = None;
        let mut fill_ids = Vec::new();
        let Some(cache) = self.cache.as_mut() else { return };
        let Ok((fill_bytes, eviction)) = cache.allocate(line) else { return };

        if let Some(ev) = eviction {
            // Read the actual line words (execution-driven) to compress
            // and to compute the HZ reference.
            let mut words = [0u32; ZBLOCK_WORDS];
            let mut max_depth_q = 0u32;
            for (i, w) in words.iter_mut().enumerate() {
                *w = mem.gpu_mem().read_u32(ev.line_addr + i as u64 * 4);
                let (d, _) = unpack_depth_stencil(*w);
                max_depth_q = max_depth_q.max(d);
            }
            let compressed = if compression {
                Some(compress_z_block(&words).level.bytes() as u32)
            } else {
                None
            };
            let bytes = cache.evict_dirty(ev.line_addr, compressed);
            for (addr, size) in split_transactions(ev.line_addr, bytes as u64) {
                let id = next_id;
                next_id += 1;
                mem.submit(MemRequest { id, client, addr, op: MemOp::TimingWrite { size } })
                    .expect("slots reserved");
            }
            // HZ reference from the evicted block (block index == line
            // index in a tiled surface).
            let block = ((ev.line_addr - cache.base()) / FB_TILE_BYTES as u64) as usize;
            hz_update = Some(HzUpdate {
                block,
                max_depth: max_depth_q as f32 / DEPTH_MAX as f32,
            });
        }

        if fill_bytes == 0 {
            // Cleared block: no memory traffic; the functional image
            // already holds the clear value.
            cache.fill_done(line);
        } else {
            let mut count = 0;
            for (addr, size) in split_transactions(line, fill_bytes as u64) {
                let id = next_id;
                next_id += 1;
                mem.submit(MemRequest { id, client, addr, op: MemOp::TimingRead { size } })
                    .expect("slots reserved");
                fill_ids.push(id);
                count += 1;
            }
            for id in fill_ids {
                self.reply_to_line.insert(id, line);
            }
            self.fills.insert(line, count);
        }
        self.next_req_id = next_id;
        if let Some(u) = hz_update {
            self.hz_queue.push_back(u);
        }
    }

    /// Flushes the Z cache at end of frame, charging writeback traffic.
    pub fn flush(&mut self, mem: &mut MemoryController) {
        let client = self.client();
        let compression = self.config.compression;
        let mut hz_updates = Vec::new();
        let mut pending: Vec<(u64, u32)> = Vec::new();
        if let Some(cache) = self.cache.as_mut() {
            let base = cache.base();
            for ev in cache.flush() {
                let mut words = [0u32; ZBLOCK_WORDS];
                let mut max_q = 0u32;
                for (i, w) in words.iter_mut().enumerate() {
                    *w = mem.gpu_mem().read_u32(ev.line_addr + i as u64 * 4);
                    max_q = max_q.max(unpack_depth_stencil(*w).0);
                }
                let compressed = if compression {
                    Some(compress_z_block(&words).level.bytes() as u32)
                } else {
                    None
                };
                let bytes = cache.evict_dirty(ev.line_addr, compressed);
                let mut id_src = self.next_req_id;
                for (addr, size) in split_transactions(ev.line_addr, bytes as u64) {
                    if mem.can_accept(client, addr)
                        && mem
                            .submit(MemRequest {
                                id: id_src,
                                client,
                                addr,
                                op: MemOp::TimingWrite { size },
                            })
                            .is_ok()
                    {
                        id_src += 1;
                    } else {
                        // Controller full: drained from clock() later so
                        // no writeback traffic is ever dropped.
                        pending.push((addr, size));
                    }
                }
                self.next_req_id = id_src;
                hz_updates.push(HzUpdate {
                    block: ((ev.line_addr - base) / FB_TILE_BYTES as u64) as usize,
                    max_depth: max_q as f32 / DEPTH_MAX as f32,
                });
            }
        }
        self.hz_queue.extend(hz_updates);
        self.pending_writebacks.extend(pending);
    }

    /// The Z cache, if bound.
    pub fn cache(&self) -> Option<&RopCache> {
        self.cache.as_ref()
    }

    /// Whether work is in flight.
    pub fn busy(&self) -> bool {
        !self.in_early.idle()
            || !self.in_late.idle()
            || !self.fills.is_empty()
            || !self.pending_writebacks.is_empty()
            || !self.hz_queue.is_empty()
    }

    /// The box's event horizon: busy while fills, writebacks or HZ
    /// updates are outstanding, otherwise the earliest arrival across
    /// both quad wires (see [`attila_sim::Horizon`]).
    pub fn work_horizon(&self) -> attila_sim::Horizon {
        if !self.fills.is_empty()
            || !self.pending_writebacks.is_empty()
            || !self.hz_queue.is_empty()
        {
            return attila_sim::Horizon::Busy;
        }
        self.in_early.work_horizon().meet(self.in_late.work_horizon())
    }

    /// The box's declared interface for the architecture verifier.
    pub fn declared_ports(&self) -> Vec<attila_sim::PortDecl> {
        vec![
            self.in_early.decl(),
            self.in_late.decl(),
            self.out_early.decl(),
            self.out_late.decl(),
            self.out_hz.decl(),
        ]
    }

    /// Objects waiting in the box's input queues.
    pub fn queued(&self) -> usize {
        self.in_early.len()
            + self.in_late.len()
            + self.hz_queue.len()
            + self.pending_writebacks.len()
    }

    /// Fragments that passed Z/stencil so far.
    pub fn fragments_passed(&self) -> u64 {
        self.stat_frags_passed.value()
    }

    /// Fragments tested so far.
    pub fn fragments_tested(&self) -> u64 {
        self.stat_frags_tested.value()
    }

    /// Captures the unit's persistent state for checkpointing. Only valid
    /// at a quiescent point (no fills, writebacks or HZ updates in
    /// flight).
    pub fn save_state(&self) -> ZStencilState {
        ZStencilState {
            cache: self.cache.as_ref().map(RopCache::save_state),
            target_width: self.target_width,
            prefer_late: self.prefer_late,
            next_req_id: self.next_req_id,
        }
    }

    /// Restores a snapshot taken by [`save_state`](Self::save_state). A
    /// checkpointed cache is rebuilt bound to the checkpointed surface.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointMismatch`] when the cache geometry
    /// differs from the checkpointed one.
    pub fn load_state(&mut self, state: &ZStencilState) -> Result<(), SimError> {
        self.cache = match &state.cache {
            Some(cs) => {
                let mut cache = RopCache::new(self.config.cache.into(), "Z", cs.base, cs.len);
                cache.load_state(cs)?;
                Some(cache)
            }
            None => None,
        };
        self.target_width = state.target_width;
        self.prefer_late = state.prefer_late;
        self.next_req_id = state.next_req_id;
        Ok(())
    }
}

/// Plain-data snapshot of a [`ZStencilUnit`], for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZStencilState {
    /// The Z cache's full state, if a depth buffer is bound.
    pub cache: Option<attila_mem::RopCacheState>,
    /// Width of the render target the pixel addressing derives from.
    pub target_width: u32,
    /// Round-robin preference between the early and late input queues.
    pub prefer_late: bool,
    /// Next memory-request id.
    pub next_req_id: u64,
}
