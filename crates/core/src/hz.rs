//! The Hierarchical Z box.
//!
//! "The generated fragment tiles are tested against a Hierarchical Z
//! buffer to remove non visible fragment quads from the pipeline at a very
//! fast rate (up to two 8x8 fragment tiles per cycle in the baseline
//! configuration). The HZ buffer, a single HZ level, is stored as on chip
//! memory to save bandwidth. [...] The Z reference values for the HZ
//! buffer are calculated when lines are evicted from the Z cache and
//! compressed. Fragments marked as culled by the fragment generator and
//! outside the scissor window are removed at this stage." (§2.2)
//!
//! After HZ, tiles are divided into 2×2 **quads**, the basic fragment
//! work unit, and routed to the early-Z test units or (when Z must run
//! after shading) directly to the Interpolator.

use std::collections::VecDeque;
use std::sync::Arc;

use attila_emu::fragops::CompareFunc;
use attila_sim::{Counter, Cycle, DynamicObject, ObjectIdGen, SimError};

use crate::address::{block_count, block_index, FB_TILE};
use crate::config::HzConfig;
use crate::port::{PortReceiver, PortSender};
use crate::types::{FragQuad, FragTile, QuadFrag};

/// An HZ reference update computed when a line is evicted from a Z cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HzUpdate {
    /// 8×8 block index in the depth buffer.
    pub block: usize,
    /// New maximum depth of the block.
    pub max_depth: f32,
}

/// The on-chip Hierarchical Z buffer: one max-depth entry per 8×8 block,
/// quantized to the configured precision (8 bits in the paper, 256 KB for
/// 4096×4096).
#[derive(Debug)]
pub struct HzBuffer {
    entries: Vec<f32>,
    levels: f32,
}

impl HzBuffer {
    /// Creates a buffer for a `width`×`height` target, all entries at the
    /// conservative maximum (no rejection possible until cleared).
    pub fn new(width: u32, height: u32, depth_bits: u32) -> Self {
        HzBuffer {
            entries: vec![f32::INFINITY; block_count(width, height)],
            levels: ((1u64 << depth_bits) - 1) as f32,
        }
    }

    /// Resets every entry to `depth` (fast Z clear).
    pub fn clear(&mut self, depth: f32) {
        let q = self.quantize_up(depth);
        for e in &mut self.entries {
            *e = q;
        }
    }

    /// Loosens every reference to the no-rejection state. Used when a
    /// batch runs a depth function that can *raise* stored depths
    /// (`Greater`, `Always`, …): its writes invalidate the stored maxima
    /// faster than eviction updates can follow, so culling must pause
    /// until the next fast clear re-establishes the references.
    pub fn poison(&mut self) {
        for e in &mut self.entries {
            *e = f32::INFINITY;
        }
    }

    /// Conservative (round-up) quantization to the HZ precision.
    fn quantize_up(&self, depth: f32) -> f32 {
        if !depth.is_finite() {
            return f32::INFINITY;
        }
        (depth.clamp(0.0, 1.0) * self.levels).ceil() / self.levels
    }

    /// Sets a block's reference to the (round-up quantized) max depth
    /// reported by a Z-cache eviction — the true content of the block at
    /// that moment. References can move in both directions: depth
    /// functions like `Greater` legitimately raise a block's maximum, and
    /// the Z unit additionally sends a conservative full-raise whenever a
    /// write increases a stored depth, so a stale low reference can never
    /// cause a false rejection.
    pub fn update(&mut self, block: usize, max_depth: f32) {
        if block < self.entries.len() {
            self.entries[block] = self.quantize_up(max_depth);
        }
    }

    /// Whether a tile with minimum depth `min_depth` in `block` is
    /// certainly invisible under a less-than style depth test.
    pub fn rejects(&self, block: usize, min_depth: f32) -> bool {
        block < self.entries.len() && min_depth > self.entries[block]
    }

    /// The stored reference for a block (for tests/visualization).
    pub fn reference(&self, block: usize) -> f32 {
        self.entries[block]
    }

    /// The raw reference entries as IEEE-754 bit patterns, for
    /// checkpointing. Bits rather than values: the no-rejection poison
    /// entry is `f32::INFINITY`, which a decimal serialization cannot
    /// round-trip.
    pub fn entry_bits(&self) -> Vec<u32> {
        self.entries.iter().map(|e| e.to_bits()).collect()
    }

    /// Restores entries captured by [`entry_bits`](Self::entry_bits).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointMismatch`] when the entry counts
    /// differ (the checkpoint describes a different render-target size).
    pub fn load_entry_bits(&mut self, bits: &[u32]) -> Result<(), SimError> {
        if bits.len() != self.entries.len() {
            return Err(SimError::CheckpointMismatch {
                reason: format!(
                    "HZ buffer has {} blocks, checkpoint carries {}",
                    self.entries.len(),
                    bits.len()
                ),
            });
        }
        for (e, b) in self.entries.iter_mut().zip(bits) {
            *e = f32::from_bits(*b);
        }
        Ok(())
    }
}

/// Plain-data snapshot of the Hierarchical Z box, for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HzState {
    /// HZ reference entries as IEEE-754 bit patterns, in block order.
    pub entry_bits: Vec<u32>,
    /// Width of the render target the block indexing derives from.
    pub target_width: u32,
    /// The bound depth buffer (base, width, height), if any.
    pub bound_z: Option<(u64, u32, u32)>,
    /// Dynamic-object ids issued so far.
    pub ids_issued: u64,
}

/// The Hierarchical Z / tile-to-quad box.
#[derive(Debug)]
pub struct HierarchicalZ {
    config: HzConfig,
    /// Fragment tiles from the Fragment Generator.
    pub in_tiles: PortReceiver<FragTile>,
    /// HZ reference updates from the Z-cache(s).
    pub in_updates: Vec<PortReceiver<HzUpdate>>,
    /// Quads to each early Z/stencil unit.
    pub out_early: Vec<PortSender<FragQuad>>,
    /// Quads to the Interpolator (late-Z datapath).
    pub out_late: PortSender<FragQuad>,
    buffer: HzBuffer,
    target_width: u32,
    /// The depth buffer the HZ references describe (base, width, height);
    /// switching render targets invalidates them.
    bound_z: Option<(u64, u32, u32)>,
    pending: VecDeque<FragQuad>, // state: transient — in-flight quads, drained at the quiescent boundary
    ids: ObjectIdGen,
    stat_tiles: Counter,
    stat_tiles_rejected: Counter,
    stat_quads_out: Counter,
    stat_frags_culled: Counter,
}

impl HierarchicalZ {
    /// Builds the box around its ports for a given render-target size.
    ///
    /// The parameter list mirrors the box's physical port list (Figure 5);
    /// bundling ports into a struct would only move the names around.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: HzConfig,
        width: u32,
        height: u32,
        in_tiles: PortReceiver<FragTile>,
        in_updates: Vec<PortReceiver<HzUpdate>>,
        out_early: Vec<PortSender<FragQuad>>,
        out_late: PortSender<FragQuad>,
        stats: &mut attila_sim::StatsRegistry,
    ) -> Self {
        let buffer = HzBuffer::new(width, height, config.depth_bits);
        HierarchicalZ {
            config,
            in_tiles,
            in_updates,
            out_early,
            out_late,
            buffer,
            target_width: width,
            bound_z: None,
            ids: ObjectIdGen::new(),
            pending: VecDeque::new(),
            stat_tiles: stats.counter("HZ.tiles"),
            stat_tiles_rejected: stats.counter("HZ.tiles_rejected"),
            stat_quads_out: stats.counter("HZ.quads_out"),
            stat_frags_culled: stats.counter("HZ.fragments_culled"),
        }
    }

    /// Fast-clears the HZ buffer (driven by the Command Processor's fast
    /// Z clear of the depth buffer at `base`, sized `width`×`height`).
    pub fn fast_clear_for(&mut self, base: u64, width: u32, height: u32, depth: f32) {
        if self.bound_z != Some((base, width, height)) {
            self.bound_z = Some((base, width, height));
            self.target_width = width;
            self.buffer = HzBuffer::new(width, height, self.config.depth_bits);
        }
        self.buffer.clear(depth);
    }

    /// Fast-clears the HZ buffer for the currently bound depth buffer.
    pub fn fast_clear(&mut self, depth: f32) {
        self.buffer.clear(depth);
    }

    /// Read access to the HZ buffer (tests/tools).
    pub fn buffer(&self) -> &HzBuffer {
        &self.buffer
    }

    /// Advances the box one cycle.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised by the box's signals.
    pub fn clock(&mut self, cycle: Cycle) -> Result<(), SimError> {
        self.in_tiles.try_update(cycle)?;
        for p in &mut self.in_updates {
            p.try_update(cycle)?;
        }
        for p in &mut self.out_early {
            p.try_update(cycle)?;
        }
        self.out_late.try_update(cycle)?;

        // Apply Z-cache eviction references.
        for p in &mut self.in_updates {
            while let Some(u) = p.try_pop(cycle)? {
                self.buffer.update(u.block, u.max_depth);
            }
        }

        // Test up to `tiles_per_cycle` tiles and split survivors into
        // quads (bounded staging keeps back-pressure intact).
        for _ in 0..self.config.tiles_per_cycle {
            if self.pending.len() >= 64 {
                break;
            }
            let Some(tile) = self.in_tiles.try_pop(cycle)? else { break };
            self.stat_tiles.inc();
            let state = &tile.tri.batch.state;
            // Rebinding the depth buffer (render-to-texture) invalidates
            // every stored reference: reset conservatively.
            let key = (state.z_buffer, state.target_width, state.target_height);
            if self.bound_z != Some(key) {
                self.bound_z = Some(key);
                self.target_width = state.target_width;
                self.buffer =
                    HzBuffer::new(state.target_width, state.target_height, self.config.depth_bits);
            }
            // A batch whose depth function can raise stored values makes
            // the conservative maxima stale: stop culling until the next
            // clear (real designs disable HZ on compare-direction flips).
            if state.depth.enabled
                && state.depth.write
                && !matches!(state.depth.func, CompareFunc::Less | CompareFunc::LEqual)
            {
                self.buffer.poison();
            }
            let hz_applicable = self.config.enabled
                && state.depth.enabled
                && matches!(state.depth.func, CompareFunc::Less | CompareFunc::LEqual);
            if hz_applicable {
                let block = block_index(self.target_width, tile.x, tile.y);
                if self.buffer.rejects(block, tile.min_depth) {
                    self.stat_tiles_rejected.inc();
                    continue;
                }
            }
            // Divide into 2×2 quads; drop fully-culled quads here (the
            // fragment-generator/scissor cull point of the paper).
            let size = FB_TILE;
            for qy in (0..size).step_by(2) {
                for qx in (0..size).step_by(2) {
                    let mut frags: [QuadFrag; 4] = [
                        QuadFrag::dead(),
                        QuadFrag::dead(),
                        QuadFrag::dead(),
                        QuadFrag::dead(),
                    ];
                    let mut any = false;
                    for (slot, (dx, dy)) in
                        [(0u32, 0u32), (1, 0), (0, 1), (1, 1)].iter().enumerate()
                    {
                        let f = &tile.frags[((qy + dy) * size + qx + dx) as usize];
                        frags[slot] = QuadFrag {
                            alive: !f.culled,
                            edges: f.edges,
                            depth: f.depth,
                            inputs: Vec::new(),
                            color: attila_emu::Vec4::ZERO,
                        };
                        if !f.culled {
                            any = true;
                        } else {
                            self.stat_frags_culled.inc();
                        }
                    }
                    if !any {
                        continue;
                    }
                    self.pending.push_back(FragQuad {
                        obj: DynamicObject::child_of(self.ids.next_id(), &tile.obj),
                        tri: Arc::clone(&tile.tri),
                        x: tile.x + qx,
                        y: tile.y + qy,
                        frags,
                    });
                }
            }
        }

        // Route staged quads downstream.
        while let Some(quad) = self.pending.front() {
            let early = quad.tri.batch.state.early_z();
            let sent = if early {
                let unit = route_rop(quad.x, quad.y, self.out_early.len());
                if self.out_early[unit].can_send(cycle) {
                    let quad = self.pending.pop_front().expect("front exists"); // lint:allow(clock-unwrap) emptiness checked above
                    self.out_early[unit].try_send(cycle, quad)?;
                    true
                } else {
                    false
                }
            } else if self.out_late.can_send(cycle) {
                let quad = self.pending.pop_front().expect("front exists"); // lint:allow(clock-unwrap) emptiness checked above
                self.out_late.try_send(cycle, quad)?;
                true
            } else {
                false
            };
            if !sent {
                break;
            }
            self.stat_quads_out.inc();
        }
        Ok(())
    }

    /// Whether work is in flight.
    pub fn busy(&self) -> bool {
        !self.pending.is_empty() || !self.in_tiles.idle()
    }

    /// The box's event horizon: busy while quads are staged, otherwise the
    /// earliest arrival across the tile wire *and* every Z-cache update
    /// wire — updates mutate the HZ references even when `busy()` is
    /// false, so their arrivals must not be skipped over (see
    /// [`attila_sim::Horizon`]).
    pub fn work_horizon(&self) -> attila_sim::Horizon {
        if !self.pending.is_empty() {
            return attila_sim::Horizon::Busy;
        }
        let mut h = self.in_tiles.work_horizon();
        for p in &self.in_updates {
            h = h.meet(p.work_horizon());
        }
        h
    }

    /// The box's declared interface for the architecture verifier.
    pub fn declared_ports(&self) -> Vec<attila_sim::PortDecl> {
        let mut ports = vec![self.in_tiles.decl(), self.out_late.decl()];
        ports.extend(self.in_updates.iter().map(|p| p.decl()));
        ports.extend(self.out_early.iter().map(|p| p.decl()));
        ports
    }

    /// Objects waiting in the box's input queues and staging buffer.
    pub fn queued(&self) -> usize {
        self.pending.len()
            + self.in_tiles.len()
            + self.in_updates.iter().map(crate::port::PortReceiver::len).sum::<usize>()
    }

    /// Tiles rejected by the HZ test so far.
    pub fn tiles_rejected(&self) -> u64 {
        self.stat_tiles_rejected.value()
    }

    /// Captures the box's persistent state for checkpointing. Only valid
    /// at a quiescent point (no staged quads, drained wires).
    pub fn save_state(&self) -> HzState {
        HzState {
            entry_bits: self.buffer.entry_bits(),
            target_width: self.target_width,
            bound_z: self.bound_z,
            ids_issued: self.ids.issued(),
        }
    }

    /// Restores a snapshot taken by [`save_state`](Self::save_state). The
    /// HZ buffer is rebuilt at the checkpointed render-target size before
    /// its entries are loaded.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointMismatch`] when the entry count does
    /// not match the (re-derived) buffer geometry.
    pub fn load_state(&mut self, state: &HzState) -> Result<(), SimError> {
        if let Some((_, w, h)) = state.bound_z {
            self.buffer = HzBuffer::new(w, h, self.config.depth_bits);
        }
        self.buffer.load_entry_bits(&state.entry_bits)?;
        self.target_width = state.target_width;
        self.bound_z = state.bound_z;
        self.ids.restore_issued(state.ids_issued);
        Ok(())
    }
}

/// Which ROP unit a quad belongs to: 8×8 tiles interleave across units in
/// a checkerboard, so neighbouring tiles land on different units while a
/// tile's quads share one unit's cache.
pub fn route_rop(x: u32, y: u32, units: usize) -> usize {
    if units <= 1 {
        return 0;
    }
    ((x / FB_TILE + y / FB_TILE) % units as u32) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hz_buffer_starts_permissive() {
        let b = HzBuffer::new(64, 64, 8);
        assert!(!b.rejects(0, 0.999), "uninitialized HZ must not reject");
    }

    #[test]
    fn clear_then_reject_behind() {
        let mut b = HzBuffer::new(64, 64, 8);
        b.clear(0.5);
        assert!(b.rejects(3, 0.6), "tile behind the cleared depth");
        assert!(!b.rejects(3, 0.4), "tile in front survives");
    }

    #[test]
    fn quantization_is_conservative() {
        let mut b = HzBuffer::new(64, 64, 8);
        b.clear(0.5);
        // 0.5001 quantizes up to ~0.5019; a tile at 0.501 must NOT be
        // rejected even though it is behind 0.5, because 8-bit HZ cannot
        // tell.
        assert!(!b.rejects(0, 0.5001));
    }

    #[test]
    fn update_tracks_evicted_truth_in_both_directions() {
        let mut b = HzBuffer::new(64, 64, 8);
        b.clear(0.8);
        b.update(2, 0.3);
        assert!(b.rejects(2, 0.4));
        // A raise (Greater-style depth writes) must loosen the reference
        // again, or visible tiles would be falsely rejected.
        b.update(2, 0.9);
        assert!(!b.rejects(2, 0.4));
    }

    #[test]
    fn route_rop_checkerboards() {
        assert_eq!(route_rop(0, 0, 2), 0);
        assert_eq!(route_rop(8, 0, 2), 1);
        assert_eq!(route_rop(0, 8, 2), 1);
        assert_eq!(route_rop(8, 8, 2), 0);
        // Quads within one tile share a unit.
        assert_eq!(route_rop(2, 4, 2), route_rop(6, 6, 2));
        assert_eq!(route_rop(100, 50, 1), 0);
    }
}
