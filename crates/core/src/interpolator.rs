//! The Interpolator.
//!
//! "The Interpolator unit interpolates the fragment attributes from the
//! triangle vertex attributes received from Primitive Assembly. We
//! implement the perspective corrected linear interpolation algorithm"
//! (§2.2). Latency grows with the number of interpolated attributes
//! (Table 1: 2 to 8 cycles); throughput is 2×4 fragments per cycle.
//!
//! Convention: vertex-shader output `o0` is the clip position; outputs
//! `o1..=o{n}` are the `n = varying_count` varyings, delivered to the
//! fragment shader as inputs `i0..i{n-1}`. All four fragments of a quad
//! are interpolated — dead fragments become *helper pixels* whose values
//! feed the texture-derivative computation.

use std::collections::VecDeque;

use attila_sim::{Counter, Cycle, SimError};

use crate::config::InterpolatorConfig;
use crate::port::{PortReceiver, PortSender};
use crate::types::FragQuad;

/// The Interpolator box.
#[derive(Debug)]
pub struct Interpolator {
    config: InterpolatorConfig,
    /// Quads from the early Z/stencil units.
    pub in_early: Vec<PortReceiver<FragQuad>>,
    /// Quads arriving directly from Hierarchical Z (late-Z datapath).
    pub in_late: PortReceiver<FragQuad>,
    /// Interpolated quads to the Fragment FIFO / shader scheduler.
    pub out_quads: PortSender<FragQuad>,
    /// Internal delay pipe modelling the attribute-count-dependent
    /// latency.
    pipe: VecDeque<(Cycle, FragQuad)>,
    next_input: usize,
    stat_quads: Counter,
    stat_attributes: Counter,
}

impl Interpolator {
    /// Builds the box around its ports.
    pub fn new(
        config: InterpolatorConfig,
        in_early: Vec<PortReceiver<FragQuad>>,
        in_late: PortReceiver<FragQuad>,
        out_quads: PortSender<FragQuad>,
        stats: &mut attila_sim::StatsRegistry,
    ) -> Self {
        Interpolator {
            config,
            in_early,
            in_late,
            out_quads,
            pipe: VecDeque::new(),
            next_input: 0,
            stat_quads: stats.counter("Interpolator.quads"),
            stat_attributes: stats.counter("Interpolator.attributes"),
        }
    }

    /// Advances the box one cycle.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised by the box's signals.
    pub fn clock(&mut self, cycle: Cycle) -> Result<(), SimError> {
        for p in &mut self.in_early {
            p.try_update(cycle)?;
        }
        self.in_late.try_update(cycle)?;
        self.out_quads.try_update(cycle)?;

        // Accept up to frags_per_cycle/4 quads, round-robin over inputs.
        let quads_per_cycle = (self.config.frags_per_cycle / 4).max(1) as usize;
        let inputs = self.in_early.len() + 1;
        let mut taken = 0;
        let mut scanned = 0;
        while taken < quads_per_cycle && scanned < inputs && self.pipe.len() < 64 {
            let idx = self.next_input % inputs;
            let quad = if idx < self.in_early.len() {
                self.in_early[idx].try_pop(cycle)?
            } else {
                self.in_late.try_pop(cycle)?
            };
            self.next_input = (self.next_input + 1) % inputs;
            match quad {
                Some(mut quad) => {
                    scanned = 0;
                    taken += 1;
                    let varyings = quad.tri.batch.state.varying_count as usize;
                    // Perspective-correct interpolation for every
                    // fragment, including helpers.
                    for i in 0..4 {
                        let (x, y) = quad.frag_coords(i);
                        // Use exact pixel-centre edge values (dead helper
                        // fragments carry valid edge values too).
                        let e = if quad.frags[i].edges == [0.0; 3] {
                            quad.tri.setup.edge_values(x as f32 + 0.5, y as f32 + 0.5)
                        } else {
                            quad.frags[i].edges
                        };
                        let mut inputs = Vec::with_capacity(varyings);
                        for v in 0..varyings {
                            let attrs = [
                                quad.tri.outputs[0][v + 1],
                                quad.tri.outputs[1][v + 1],
                                quad.tri.outputs[2][v + 1],
                            ];
                            inputs.push(quad.tri.setup.interpolate(e, &attrs));
                        }
                        quad.frags[i].inputs = inputs;
                    }
                    self.stat_quads.inc();
                    self.stat_attributes.add(4 * varyings as u64);
                    let latency = self.config.base_latency
                        + self.config.latency_per_attribute * varyings.saturating_sub(1) as u64;
                    self.pipe.push_back((cycle + latency, quad));
                }
                None => scanned += 1,
            }
        }

        // Release quads whose latency elapsed, in order.
        while let Some((ready, _)) = self.pipe.front() {
            if *ready <= cycle && self.out_quads.can_send(cycle) {
                let (_, quad) = self.pipe.pop_front().expect("front exists"); // lint:allow(clock-unwrap) emptiness checked above
                self.out_quads.try_send(cycle, quad)?;
            } else {
                break;
            }
        }
        Ok(())
    }

    /// Whether work is in flight.
    pub fn busy(&self) -> bool {
        !self.pipe.is_empty()
            || !self.in_late.idle()
            || self.in_early.iter().any(|p| !p.idle())
    }

    /// The box's event horizon: busy while quads sit in the delay pipe,
    /// otherwise the earliest arrival across the late wire and every
    /// early-Z wire (see [`attila_sim::Horizon`]).
    pub fn work_horizon(&self) -> attila_sim::Horizon {
        if !self.pipe.is_empty() {
            return attila_sim::Horizon::Busy;
        }
        let mut h = self.in_late.work_horizon();
        for p in &self.in_early {
            h = h.meet(p.work_horizon());
        }
        h
    }

    /// The box's declared interface for the architecture verifier.
    pub fn declared_ports(&self) -> Vec<attila_sim::PortDecl> {
        let mut ports = vec![self.in_late.decl(), self.out_quads.decl()];
        ports.extend(self.in_early.iter().map(|p| p.decl()));
        ports
    }

    /// Objects waiting in the box's input queues and delay pipe.
    pub fn queued(&self) -> usize {
        self.pipe.len()
            + self.in_late.len()
            + self.in_early.iter().map(PortReceiver::len).sum::<usize>()
    }

    /// Quads interpolated so far.
    pub fn quads_interpolated(&self) -> u64 {
        self.stat_quads.value()
    }

    /// The round-robin input cursor — the box's whole persistent state
    /// (the delay pipe is empty at any quiescent point).
    pub fn next_input(&self) -> usize {
        self.next_input
    }

    /// Restores the round-robin input cursor from a checkpoint.
    pub fn restore_next_input(&mut self, next_input: usize) {
        self.next_input = next_input;
    }
}
