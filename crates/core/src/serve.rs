//! `attila serve` — a resumable job daemon with retry, timeout and
//! graceful degradation.
//!
//! A batch of trace jobs (each a [`GpuConfig`] plus a command stream) is
//! fanned across `std::thread` workers pulling from a shared queue —
//! dependency-free, like [`crate::sweep`], but built for *unattended*
//! operation rather than one-shot grids:
//!
//! - **Timeout.** Every job runs under the ordinary watchdog with a
//!   per-job budget of *simulated* cycles ([`JobSpec::max_cycles`]). A
//!   hung pipeline expires deterministically at the same cycle on every
//!   host; the daemon never needs a wall-clock kill.
//! - **Retry from checkpoint.** A failed attempt is requeued with capped
//!   exponential backoff. If the job checkpoints
//!   ([`JobSpec::checkpoint_every`]), the retry resumes from the last
//!   checkpoint file via [`Gpu::restore`] instead of starting over.
//! - **Poison quarantine.** A job that fails *deterministically* — the
//!   same failure signature on two consecutive attempts — or exhausts
//!   [`ServeConfig::retry_limit`] is quarantined with its
//!   [`FailureReport`] attached, and the daemon moves on.
//! - **Degradation.** A panicking worker attempt is caught with
//!   [`std::panic::catch_unwind`]; the job is requeued (or quarantined if
//!   the panic repeats) and the worker thread keeps serving. One bad job
//!   never takes down the daemon or loses the other jobs' results.
//!
//! Results come back in job-id order, so a serve report is deterministic
//! for a deterministic job set regardless of worker count or OS
//! scheduling. [`smoke`] is the self-test the CLI exposes as
//! `attila serve --smoke`: a healthy job, a once-panicking job, a poison
//! job and a checkpointing job, all of which must land in the right
//! bucket.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
// lint:allow(wall-clock) retry backoff only; simulated timing never reads the host clock
use std::time::Duration;

use attila_json::Json;

use crate::checkpoint::Checkpoint;
use crate::commands::GpuCommand;
use crate::config::GpuConfig;
use crate::gpu::Gpu;
use crate::report::FailureReport;

/// One trace job submitted to the daemon.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Unique job identifier; also names the job's checkpoint file.
    pub id: String,
    /// The GPU configuration to simulate.
    pub config: GpuConfig,
    /// The command trace to run.
    pub commands: Vec<GpuCommand>,
    /// Per-job timeout in **simulated** cycles: the watchdog budget for
    /// each attempt. Deterministic — a hang expires at the same cycle on
    /// every host, unlike a wall-clock kill.
    pub max_cycles: u64,
    /// Checkpoint every N cycles (at quiescent points) so a retry resumes
    /// instead of restarting. `None` disables checkpointing.
    pub checkpoint_every: Option<u64>,
    /// Chaos hook: panic the worker on these 0-based attempt indexes.
    /// Used by [`smoke`] and the tests to prove the daemon survives a
    /// panicking worker; empty in normal operation.
    pub panic_on_attempts: Vec<u32>,
    /// Clock-loop threads for this job's machine (1 = the serial loop).
    /// Results are bit-identical at every count — see
    /// [`Gpu::with_threads`] — and resumed attempts are free to use a
    /// different count than the attempt that wrote the checkpoint.
    pub threads: usize,
}

impl JobSpec {
    /// A job with the default cycle budget and no checkpointing.
    pub fn new(id: impl Into<String>, config: GpuConfig, commands: Vec<GpuCommand>) -> Self {
        JobSpec {
            id: id.into(),
            config,
            commands,
            max_cycles: 2_000_000_000,
            checkpoint_every: None,
            panic_on_attempts: Vec::new(),
            threads: 1,
        }
    }
}

/// Daemon-wide settings.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Maximum attempts per job before quarantine.
    pub retry_limit: u32,
    /// First retry backoff in milliseconds; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// Directory for per-job checkpoint files.
    pub work_dir: PathBuf,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            retry_limit: 3,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
            work_dir: PathBuf::from("attila-serve"),
        }
    }
}

/// How a job ended.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// The trace drained; totals are absolute (checkpoint + final leg).
    Completed {
        /// Final simulated cycle count.
        cycles: u64,
        /// Total frames rendered across all legs of the job.
        frames: u64,
    },
    /// The job failed deterministically (same signature twice) or
    /// exhausted its retries and was isolated.
    Quarantined {
        /// The failure signature that condemned the job.
        signature: String,
        /// The post-mortem from the last failing attempt, when the
        /// failure produced one (panics do not).
        report: Option<Box<FailureReport>>,
    },
}

/// The record the daemon keeps for one finished job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's id.
    pub id: String,
    /// Attempts consumed (1 for a first-try success).
    pub attempts: u32,
    /// Attempts that resumed from a checkpoint instead of starting over.
    pub resumed: u32,
    /// Terminal status.
    pub status: JobStatus,
}

impl JobResult {
    /// Whether the job completed.
    pub fn completed(&self) -> bool {
        matches!(self.status, JobStatus::Completed { .. })
    }
}

/// Everything the daemon did: one [`JobResult`] per submitted job, in
/// job-id order, plus degradation counters.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Terminal results, sorted by job id.
    pub results: Vec<JobResult>,
    /// Worker panics caught (each cost an attempt, never a thread).
    pub worker_panics: u64,
    /// Attempts that were requeued for retry.
    pub retries: u64,
}

impl ServeReport {
    /// Jobs that completed.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.completed()).count()
    }

    /// Jobs that were quarantined.
    pub fn quarantined(&self) -> usize {
        self.results.len() - self.completed()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} jobs: {} completed, {} quarantined ({} retries, {} worker panics caught)",
            self.results.len(),
            self.completed(),
            self.quarantined(),
            self.retries,
            self.worker_panics
        )
    }

    /// The report as JSON (deterministic: job-id order).
    pub fn to_json(&self) -> Json {
        let jobs = self
            .results
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("id".to_string(), Json::Str(r.id.clone())),
                    ("attempts".to_string(), Json::Num(f64::from(r.attempts))),
                    ("resumed".to_string(), Json::Num(f64::from(r.resumed))),
                ];
                match &r.status {
                    JobStatus::Completed { cycles, frames } => {
                        fields.push(("status".to_string(), Json::Str("completed".to_string())));
                        fields.push(("cycles".to_string(), Json::Num(*cycles as f64)));
                        fields.push(("frames".to_string(), Json::Num(*frames as f64)));
                    }
                    JobStatus::Quarantined { signature, .. } => {
                        fields.push(("status".to_string(), Json::Str("quarantined".to_string())));
                        fields.push(("signature".to_string(), Json::Str(signature.clone())));
                    }
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("jobs".to_string(), Json::Arr(jobs)),
            ("retries".to_string(), Json::Num(self.retries as f64)),
            (
                "worker_panics".to_string(),
                Json::Num(self.worker_panics as f64),
            ),
        ])
    }
}

/// A queued job plus its retry bookkeeping.
struct QueuedJob {
    spec: JobSpec,
    attempts: u32,
    resumed: u32,
    last_signature: Option<String>,
}

enum WorkerEvent {
    Finished(Box<JobResult>),
    Retried { panicked: bool },
}

struct AttemptSuccess {
    cycles: u64,
    frames: u64,
    resumed: bool,
}

struct AttemptFailure {
    signature: String,
    report: Option<Box<FailureReport>>,
}

/// The job id reduced to a safe file stem for its checkpoint.
fn checkpoint_path(work_dir: &Path, id: &str) -> PathBuf {
    let stem: String = id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    work_dir.join(format!("{stem}.ckpt"))
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Tries to resume from the job's checkpoint file. Any problem — no
/// file, corrupt file, hash mismatch — falls back to a fresh start, so a
/// bad checkpoint can never wedge a retry.
fn try_resume(spec: &JobSpec, ckpt_path: &Path) -> Option<(Gpu, u64)> {
    if spec.checkpoint_every.is_none() || !ckpt_path.exists() {
        return None;
    }
    let ckpt = Checkpoint::read_file(ckpt_path).ok()?;
    let base_frames = ckpt.body.frames;
    let gpu = Gpu::restore_with_threads(
        spec.config.clone(),
        spec.threads.max(1),
        &spec.commands,
        &ckpt,
        None,
    )
    .ok()?;
    Some((gpu, base_frames))
}

/// One attempt at a job: resume if a checkpoint exists, else fresh.
fn run_attempt(
    spec: &JobSpec,
    ckpt_path: &Path,
    attempt: u32,
) -> Result<AttemptSuccess, AttemptFailure> {
    if spec.panic_on_attempts.contains(&attempt) {
        panic!("injected chaos panic on attempt {attempt}");
    }
    let (mut gpu, base_frames, resumed) = match try_resume(spec, ckpt_path) {
        Some((gpu, frames)) => (gpu, frames, true),
        None => (Gpu::with_threads(spec.config.clone(), spec.threads.max(1)), 0, false),
    };
    gpu.max_cycles = spec.max_cycles;
    gpu.keep_frames = false;
    if spec.checkpoint_every.is_some() {
        gpu.checkpoint_every = spec.checkpoint_every;
        gpu.checkpoint_path = Some(ckpt_path.to_path_buf());
    }
    // A resumed GPU already holds the unconsumed tail of the trace; a
    // fresh one gets the whole stream.
    let run = if resumed {
        gpu.run_trace(&[])
    } else {
        gpu.run_trace(&spec.commands)
    };
    match run {
        Ok(result) => Ok(AttemptSuccess {
            cycles: gpu.cycle(),
            frames: base_frames + result.frames,
            resumed,
        }),
        Err(error) => Err(AttemptFailure {
            signature: error.to_string(),
            report: error.report().cloned().map(Box::new),
        }),
    }
}

fn worker_loop(
    queue: &Mutex<VecDeque<QueuedJob>>,
    remaining: &AtomicUsize,
    tx: &mpsc::Sender<WorkerEvent>,
    config: &ServeConfig,
) {
    loop {
        if remaining.load(Ordering::SeqCst) == 0 {
            break;
        }
        let next = queue.lock().expect("job queue poisoned").pop_front();
        let Some(mut qjob) = next else {
            // Queue momentarily empty but jobs still in flight elsewhere
            // (one may yet be requeued): nap briefly and re-check.
            std::thread::sleep(Duration::from_millis(1));
            continue;
        };
        let attempt = qjob.attempts;
        let ckpt_path = checkpoint_path(&config.work_dir, &qjob.spec.id);
        let caught = catch_unwind(AssertUnwindSafe(|| run_attempt(&qjob.spec, &ckpt_path, attempt)));
        let (outcome, panicked) = match caught {
            Ok(outcome) => (outcome, false),
            Err(payload) => (
                Err(AttemptFailure {
                    signature: format!("worker panic: {}", panic_text(payload.as_ref())),
                    report: None,
                }),
                true,
            ),
        };
        qjob.attempts += 1;
        match outcome {
            Ok(success) => {
                if success.resumed {
                    qjob.resumed += 1;
                }
                let _ = std::fs::remove_file(&ckpt_path);
                remaining.fetch_sub(1, Ordering::SeqCst);
                let _ = tx.send(WorkerEvent::Finished(Box::new(JobResult {
                    id: qjob.spec.id,
                    attempts: qjob.attempts,
                    resumed: qjob.resumed,
                    status: JobStatus::Completed {
                        cycles: success.cycles,
                        frames: success.frames,
                    },
                })));
            }
            Err(failure) => {
                let repeated = qjob.last_signature.as_deref() == Some(failure.signature.as_str());
                if repeated || qjob.attempts >= config.retry_limit {
                    remaining.fetch_sub(1, Ordering::SeqCst);
                    let _ = tx.send(WorkerEvent::Finished(Box::new(JobResult {
                        id: qjob.spec.id,
                        attempts: qjob.attempts,
                        resumed: qjob.resumed,
                        status: JobStatus::Quarantined {
                            signature: failure.signature,
                            report: failure.report,
                        },
                    })));
                } else {
                    // Transient (so far): requeue with capped exponential
                    // backoff, remembering the signature so a repeat is
                    // recognised as deterministic.
                    let exp = qjob.attempts.saturating_sub(1).min(16);
                    let backoff = config
                        .backoff_base_ms
                        .saturating_mul(1u64 << exp)
                        .min(config.backoff_cap_ms);
                    std::thread::sleep(Duration::from_millis(backoff));
                    qjob.last_signature = Some(failure.signature);
                    queue.lock().expect("job queue poisoned").push_back(qjob);
                    let _ = tx.send(WorkerEvent::Retried { panicked });
                }
            }
        }
    }
}

/// Runs `jobs` to completion and returns the per-job results in job-id
/// order. Never panics on a bad job: failures retry, deterministic
/// failures quarantine, worker panics are caught and cost only the
/// attempt.
pub fn serve(config: &ServeConfig, jobs: Vec<JobSpec>) -> ServeReport {
    let total = jobs.len();
    if total > 0 {
        let _ = std::fs::create_dir_all(&config.work_dir);
    }
    let queue: Arc<Mutex<VecDeque<QueuedJob>>> = Arc::new(Mutex::new(
        jobs.into_iter()
            .map(|spec| QueuedJob {
                spec,
                attempts: 0,
                resumed: 0,
                last_signature: None,
            })
            .collect(),
    ));
    let remaining = Arc::new(AtomicUsize::new(total));
    let (tx, rx) = mpsc::channel();
    let workers = config.workers.max(1).min(total.max(1));
    let mut results: Vec<JobResult> = Vec::with_capacity(total);
    let mut worker_panics = 0u64;
    let mut retries = 0u64;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let remaining = Arc::clone(&remaining);
            let tx = tx.clone();
            let config = &*config;
            scope.spawn(move || worker_loop(&queue, &remaining, &tx, config));
        }
        drop(tx);
        while results.len() < total {
            match rx.recv() {
                Ok(WorkerEvent::Finished(result)) => results.push(*result),
                Ok(WorkerEvent::Retried { panicked }) => {
                    retries += 1;
                    if panicked {
                        worker_panics += 1;
                    }
                }
                Err(_) => break,
            }
        }
    });
    results.sort_by(|a, b| a.id.cmp(&b.id));
    ServeReport {
        results,
        worker_panics,
        retries,
    }
}

/// The self-test behind `attila serve --smoke`: four jobs exercising
/// every daemon path. Returns the report and whether every job landed in
/// its expected bucket:
///
/// - `ok` — healthy job, must complete first try;
/// - `flaky-panic` — panics on attempt 0 (chaos hook), must be caught,
///   requeued and complete on the retry;
/// - `poison` — cycle budget far too small, hits the watchdog with the
///   same signature twice, must be quarantined;
/// - `resumable` — checkpoints as it runs, must complete.
pub fn smoke(work_dir: &Path) -> (ServeReport, bool) {
    use crate::config::ShaderScheduling;
    let mut config = GpuConfig::case_study(1, ShaderScheduling::ThreadWindow);
    config.display.width = 32;
    config.display.height = 32;
    let commands = vec![
        GpuCommand::FastClearColor(0xff20_4060),
        GpuCommand::Swap,
        GpuCommand::FastClearColor(0xff60_2040),
        GpuCommand::Swap,
    ];

    let ok = JobSpec::new("ok", config.clone(), commands.clone());
    let mut flaky = JobSpec::new("flaky-panic", config.clone(), commands.clone());
    flaky.panic_on_attempts = vec![0];
    let mut poison = JobSpec::new("poison", config.clone(), commands.clone());
    poison.max_cycles = 64;
    let mut resumable = JobSpec::new("resumable", config, commands);
    resumable.checkpoint_every = Some(500);

    let serve_config = ServeConfig {
        workers: 2,
        retry_limit: 3,
        backoff_base_ms: 1,
        backoff_cap_ms: 8,
        work_dir: work_dir.to_path_buf(),
    };
    let report = serve(&serve_config, vec![ok, flaky, poison, resumable]);
    let expect = |id: &str, done: bool| {
        report
            .results
            .iter()
            .any(|r| r.id == id && r.completed() == done)
    };
    let passed = report.results.len() == 4
        && expect("ok", true)
        && expect("flaky-panic", true)
        && expect("poison", false)
        && expect("resumable", true)
        && report.worker_panics >= 1;
    (report, passed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShaderScheduling;

    fn tiny_config() -> GpuConfig {
        let mut config = GpuConfig::case_study(1, ShaderScheduling::ThreadWindow);
        config.display.width = 32;
        config.display.height = 32;
        config
    }

    fn tiny_commands() -> Vec<GpuCommand> {
        vec![GpuCommand::FastClearColor(0xff20_4060), GpuCommand::Swap]
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("attila-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir
    }

    #[test]
    fn healthy_job_completes_first_try() {
        let dir = tmp_dir("healthy");
        let report = serve(
            &ServeConfig {
                workers: 1,
                work_dir: dir.clone(),
                ..ServeConfig::default()
            },
            vec![JobSpec::new("solo", tiny_config(), tiny_commands())],
        );
        assert_eq!(report.results.len(), 1);
        let r = &report.results[0];
        assert!(r.completed(), "healthy job must complete: {:?}", r.status);
        assert_eq!(r.attempts, 1);
        assert_eq!(report.retries, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panicking_worker_is_caught_and_job_retried() {
        let dir = tmp_dir("panic");
        let mut flaky = JobSpec::new("flaky", tiny_config(), tiny_commands());
        flaky.panic_on_attempts = vec![0];
        let report = serve(
            &ServeConfig {
                workers: 1,
                backoff_base_ms: 1,
                work_dir: dir.clone(),
                ..ServeConfig::default()
            },
            vec![flaky],
        );
        let r = &report.results[0];
        assert!(r.completed(), "job must recover after panic: {:?}", r.status);
        assert_eq!(r.attempts, 2);
        assert_eq!(report.worker_panics, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deterministic_failure_is_quarantined_without_losing_others() {
        let dir = tmp_dir("poison");
        let mut poison = JobSpec::new("poison", tiny_config(), tiny_commands());
        poison.max_cycles = 64; // far below one frame: watchdog every attempt
        let healthy = JobSpec::new("healthy", tiny_config(), tiny_commands());
        let report = serve(
            &ServeConfig {
                workers: 2,
                backoff_base_ms: 1,
                work_dir: dir.clone(),
                ..ServeConfig::default()
            },
            vec![poison, healthy],
        );
        assert_eq!(report.results.len(), 2);
        let healthy_r = report.results.iter().find(|r| r.id == "healthy").unwrap();
        let poison_r = report.results.iter().find(|r| r.id == "poison").unwrap();
        assert!(healthy_r.completed(), "healthy job lost to the poison job");
        match &poison_r.status {
            JobStatus::Quarantined { signature, report } => {
                assert!(signature.contains("watchdog"), "signature: {signature}");
                assert!(report.is_some(), "watchdog failure must attach a report");
            }
            other => panic!("poison job must be quarantined, got {other:?}"),
        }
        // Same signature twice → quarantined on the second attempt, not
        // after the full retry budget.
        assert_eq!(poison_r.attempts, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn smoke_passes() {
        let dir = tmp_dir("smoke");
        let (report, passed) = smoke(&dir);
        assert!(passed, "smoke failed: {}", report.summary());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
