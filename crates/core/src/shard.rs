//! Phase-disjoint shared cells for the multi-threaded clock loop.
//!
//! The threaded scheduler in [`crate::gpu`] steps the seven "pure" pipeline
//! boxes (primitive assembly through the fragment FIFO — the ones whose
//! `clock()` never touches the memory controller) on dedicated worker
//! threads, one clock domain per worker. The boxes themselves are full of
//! single-threaded machinery (`Rc`, `RefCell`, interned stat handles), so
//! they can never be `Send` in the ordinary sense. What makes sharing them
//! sound anyway is *phase disjointness*: at any instant, each box is
//! touched by exactly one thread, and the hand-off between threads is
//! ordered by the scheduler's epoch barrier.
//!
//! [`ShardCell`] is the narrow bridge that encodes this contract. It is the
//! only `unsafe` code in the workspace, kept in one file so the whole
//! argument can be audited in one sitting.
//!
//! # Safety protocol
//!
//! A `ShardCell<T>` may only be accessed under the following regime, which
//! the `Gpu` scheduler upholds by construction:
//!
//! 1. **Serial phases.** Between barrier epochs (construction, checkpoint
//!    capture/restore, horizon probing, the prologue/epilogue of every
//!    cycle, and the entire lifetime of a single-threaded `Gpu`), only the
//!    coordinator thread dereferences any cell. Workers are parked spinning
//!    on the epoch counter and never touch memory behind a cell.
//! 2. **Parallel phases.** After the coordinator publishes a new epoch
//!    (release store) and before it observes every worker's done-flag
//!    (acquire loads), each worker dereferences **only the cells of its own
//!    clock domain**, and the coordinator dereferences none of them. The
//!    domain assignment is fixed at construction and never migrates.
//! 3. **Hand-off ordering.** The epoch store/load pair and the done-flag
//!    store/load pair are `Release`/`Acquire`, so every write made by the
//!    previous owner of a cell happens-before the next owner's first read.
//! 4. **No shared-handle mutation in parallel.** The `Rc`/`RefCell` handles
//!    *inside* a box (signal cores, stat counters) follow the same
//!    ownership split: every handle reachable from a pure box's `clock()`
//!    is either private to that box's domain or staged through the
//!    mailbox lanes in `attila_sim::signal`, which route cross-domain
//!    writes to a queue owned by the writer and drained by the coordinator
//!    strictly between epochs. Rc reference counts are never cloned or
//!    dropped during a parallel phase.
//!
//! Violating any clause is undefined behavior; that is why the accessors
//! are `unsafe` and why `Gpu` funnels every dereference through two
//! private, documented helper methods per box.

#![allow(unsafe_code)]

use std::cell::UnsafeCell;

/// Interior-mutable slot whose cross-thread safety is delegated to the
/// clock scheduler's barrier protocol (see the module documentation).
#[derive(Debug)]
pub struct ShardCell<T>(UnsafeCell<T>);

// SAFETY: see the module-level protocol. `ShardCell` contents are only ever
// dereferenced by one thread per barrier phase, and phase transitions are
// ordered by Release/Acquire atomics, so aliasing and visibility follow the
// same rules as moving the value between threads at each barrier.
unsafe impl<T> Send for ShardCell<T> {}
// SAFETY: as above — `&ShardCell<T>` only permits access through `unsafe`
// accessors whose callers promise phase-disjoint use.
unsafe impl<T> Sync for ShardCell<T> {}

impl<T> ShardCell<T> {
    /// Wraps a value for phase-disjoint sharing.
    pub fn new(value: T) -> Self {
        Self(UnsafeCell::new(value))
    }

    /// Returns a shared reference to the contents.
    ///
    /// # Safety
    ///
    /// The caller must be the cell's current phase owner (module docs,
    /// clauses 1–3) and must not hold a mutable reference from
    /// [`ShardCell::get_mut`] concurrently.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get(&self) -> &T {
        // SAFETY: forwarded to the caller contract above.
        unsafe { &*self.0.get() }
    }

    /// Returns a mutable reference to the contents.
    ///
    /// # Safety
    ///
    /// The caller must be the cell's current phase owner (module docs,
    /// clauses 1–3), and this must be the only live reference into the
    /// cell for the duration of the borrow.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self) -> &mut T {
        // SAFETY: forwarded to the caller contract above.
        unsafe { &mut *self.0.get() }
    }

    /// Consumes the cell, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn phase_disjoint_handoff_round_trips() {
        // Minimal model of the scheduler: coordinator writes, publishes an
        // epoch, worker mutates, signals done, coordinator reads back.
        struct Shared {
            cell: ShardCell<Vec<u64>>,
            epoch: AtomicU64,
            done: AtomicU64,
        }
        let shared = Arc::new(Shared {
            cell: ShardCell::new(vec![1, 2, 3]),
            epoch: AtomicU64::new(0),
            done: AtomicU64::new(0),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                while shared.epoch.load(Ordering::Acquire) != 1 {
                    std::hint::spin_loop();
                }
                // SAFETY: parallel phase; this worker is the sole owner.
                unsafe { shared.cell.get_mut() }.push(4);
                shared.done.store(1, Ordering::Release);
            })
        };
        shared.epoch.store(1, Ordering::Release);
        while shared.done.load(Ordering::Acquire) != 1 {
            std::hint::spin_loop();
        }
        // SAFETY: serial phase; the worker has signalled done.
        assert_eq!(unsafe { shared.cell.get() }.as_slice(), &[1, 2, 3, 4]);
        worker.join().unwrap();
    }

    #[test]
    fn into_inner_returns_value() {
        let cell = ShardCell::new(7u32);
        assert_eq!(cell.into_inner(), 7);
    }
}
