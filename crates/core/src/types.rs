//! Pipeline payload types — the objects that travel through the signals.
//!
//! Every payload embeds a [`DynamicObject`] identity so signal traces can
//! associate fragments with their triangle and batch (the multilevel
//! hierarchy of paper §3).

use std::sync::Arc;

use attila_emu::isa::limits;
use attila_emu::raster::{RasterFragment, SetupTriangle};
use attila_emu::vector::Vec4;
use attila_sim::{DynamicObject, Traceable};

use crate::commands::DrawCall;
use crate::state::RenderState;

/// A draw batch in flight: the draw call plus its immutable state
/// snapshot, shared by every object the batch produces.
#[derive(Debug)]
pub struct Batch {
    /// Batch sequence number.
    pub id: u64,
    /// State snapshot taken when the draw was issued.
    pub state: Arc<RenderState>,
    /// The draw call.
    pub draw: DrawCall,
}

/// Per-vertex shader outputs (o0 = clip position).
pub type VertexOutputs = [Vec4; limits::OUTPUTS];

/// An unshaded vertex travelling from the Streamer to a shader.
#[derive(Debug, Clone)]
pub struct VertexWork {
    /// Trace identity.
    pub obj: DynamicObject,
    /// Owning batch.
    pub batch: Arc<Batch>,
    /// Position in the batch's assembly stream (vertices must reach
    /// Primitive Assembly in this order).
    pub seq: u32,
    /// The vertex index (post-shading cache tag).
    pub index: u32,
    /// Fetched input attributes.
    pub inputs: Vec<Vec4>,
}

impl Traceable for VertexWork {
    fn dyn_object(&self) -> &DynamicObject {
        &self.obj
    }
}

/// A shaded vertex returning from the shader pool to Streamer Commit.
#[derive(Debug, Clone)]
pub struct ShadedVertex {
    /// Trace identity.
    pub obj: DynamicObject,
    /// Owning batch.
    pub batch: Arc<Batch>,
    /// Assembly-stream position.
    pub seq: u32,
    /// Vertex index.
    pub index: u32,
    /// All shader outputs (o0 = clip position).
    pub outputs: Arc<VertexOutputs>,
}

impl Traceable for ShadedVertex {
    fn dyn_object(&self) -> &DynamicObject {
        &self.obj
    }
}

/// An assembled triangle travelling PA → Clipper → Setup.
#[derive(Debug, Clone)]
pub struct TriangleWork {
    /// Trace identity.
    pub obj: DynamicObject,
    /// Owning batch.
    pub batch: Arc<Batch>,
    /// The three shaded vertices (winding order preserved).
    pub verts: [Arc<VertexOutputs>; 3],
    /// `true` for the last triangle of a batch (lets the fragment side
    /// track batch completion).
    pub end_of_batch: bool,
}

impl Traceable for TriangleWork {
    fn dyn_object(&self) -> &DynamicObject {
        &self.obj
    }
}

/// Immutable per-triangle data shared by all its fragments.
#[derive(Debug)]
pub struct TriangleData {
    /// Owning batch.
    pub batch: Arc<Batch>,
    /// Edge equations, z plane, bbox.
    pub setup: SetupTriangle,
    /// The three vertices' shader outputs, for interpolation.
    pub outputs: [Arc<VertexOutputs>; 3],
}

/// A set-up triangle travelling Setup → Fragment Generator.
#[derive(Debug, Clone)]
pub struct SetupTriWork {
    /// Trace identity.
    pub obj: DynamicObject,
    /// Shared triangle data.
    pub data: Arc<TriangleData>,
    /// End-of-batch marker.
    pub end_of_batch: bool,
}

impl Traceable for SetupTriWork {
    fn dyn_object(&self) -> &DynamicObject {
        &self.obj
    }
}

/// A generated 8×8 fragment tile travelling Fragment Generator → HZ.
#[derive(Debug, Clone)]
pub struct FragTile {
    /// Trace identity.
    pub obj: DynamicObject,
    /// Shared triangle data.
    pub tri: Arc<TriangleData>,
    /// Tile origin (multiple of the tile size).
    pub x: u32,
    /// Tile origin.
    pub y: u32,
    /// Fragments with coverage flags (only covered ones are stored).
    pub frags: Vec<RasterFragment>,
    /// Minimum depth over the tile's covered fragments (HZ test input).
    pub min_depth: f32,
}

impl Traceable for FragTile {
    fn dyn_object(&self) -> &DynamicObject {
        &self.obj
    }
}

/// One fragment inside a quad.
#[derive(Debug, Clone)]
pub struct QuadFrag {
    /// Whether the fragment is still live (inside triangle, not yet
    /// culled by any test). Dead fragments keep flowing with their quad —
    /// "partial quads continue to flow down the pipeline" (§2.2).
    pub alive: bool,
    /// Edge-equation values (barycentric payload) at the pixel centre.
    pub edges: [f32; 3],
    /// Window-space depth.
    pub depth: f32,
    /// Interpolated shader inputs (filled by the Interpolator).
    pub inputs: Vec<Vec4>,
    /// Shaded colour (filled by the shader).
    pub color: Vec4,
}

impl QuadFrag {
    /// A dead fragment placeholder.
    pub fn dead() -> Self {
        QuadFrag {
            alive: false,
            edges: [0.0; 3],
            depth: 0.0,
            inputs: Vec::new(),
            color: Vec4::ZERO,
        }
    }
}

/// A 2×2 fragment quad — "the basic work unit for our fragment processing
/// stages" (§2.2).
#[derive(Debug, Clone)]
pub struct FragQuad {
    /// Trace identity.
    pub obj: DynamicObject,
    /// Shared triangle data.
    pub tri: Arc<TriangleData>,
    /// Quad origin (even pixel coordinates); fragments are ordered
    /// `[(x,y), (x+1,y), (x,y+1), (x+1,y+1)]`.
    pub x: u32,
    /// Quad origin.
    pub y: u32,
    /// The four fragments.
    pub frags: [QuadFrag; 4],
}

impl FragQuad {
    /// Whether any fragment is still alive.
    pub fn any_alive(&self) -> bool {
        self.frags.iter().any(|f| f.alive)
    }

    /// Number of live fragments.
    pub fn live_count(&self) -> u32 {
        self.frags.iter().filter(|f| f.alive).count() as u32
    }

    /// Pixel coordinates of fragment `i`.
    pub fn frag_coords(&self, i: usize) -> (u32, u32) {
        (self.x + (i as u32 & 1), self.y + (i as u32 >> 1))
    }
}

impl Traceable for FragQuad {
    fn dyn_object(&self) -> &DynamicObject {
        &self.obj
    }
}

/// A texture request for a whole quad (the Texture Unit "processes
/// texture requests for a whole fragment quad", §2.2).
#[derive(Debug, Clone)]
pub struct QuadTexRequest {
    /// Request id (matched by the reply).
    pub id: u64,
    /// The shader unit that issued it (replies route back).
    pub shader_unit: usize,
    /// Sampler index.
    pub sampler: u8,
    /// The four fragments' coordinates.
    pub coords: [Vec4; 4],
    /// LOD bias (TXB).
    pub lod_bias: f32,
    /// Projective divide requested (TXP).
    pub projective: bool,
    /// Owning batch (provides the texture descriptors).
    pub batch: Arc<Batch>,
}

/// A filtered reply for a quad texture request.
#[derive(Debug, Clone)]
pub struct QuadTexReply {
    /// The request id.
    pub id: u64,
    /// The shader unit to deliver to.
    pub shader_unit: usize,
    /// The four filtered texels.
    pub texels: [Vec4; 4],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_coords_walk_the_2x2() {
        let quad = FragQuad {
            obj: DynamicObject::new(0),
            tri: Arc::new(TriangleData {
                batch: Arc::new(Batch {
                    id: 0,
                    state: Arc::new(RenderState::default()),
                    draw: DrawCall {
                        primitive: crate::commands::Primitive::Triangles,
                        vertex_count: 3,
                        index_buffer: None,
                    },
                }),
                setup: attila_emu::raster::setup_triangle(
                    &[
                        Vec4::new(-1.0, -1.0, 0.0, 1.0),
                        Vec4::new(1.0, -1.0, 0.0, 1.0),
                        Vec4::new(0.0, 1.0, 0.0, 1.0),
                    ],
                    attila_emu::raster::Viewport::new(16, 16),
                )
                .unwrap(),
                outputs: [
                    Arc::new([Vec4::ZERO; limits::OUTPUTS]),
                    Arc::new([Vec4::ZERO; limits::OUTPUTS]),
                    Arc::new([Vec4::ZERO; limits::OUTPUTS]),
                ],
            }),
            x: 4,
            y: 6,
            frags: [QuadFrag::dead(), QuadFrag::dead(), QuadFrag::dead(), QuadFrag::dead()],
        };
        assert_eq!(quad.frag_coords(0), (4, 6));
        assert_eq!(quad.frag_coords(1), (5, 6));
        assert_eq!(quad.frag_coords(2), (4, 7));
        assert_eq!(quad.frag_coords(3), (5, 7));
        assert!(!quad.any_alive());
        assert_eq!(quad.live_count(), 0);
    }
}
