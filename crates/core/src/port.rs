//! Flow-controlled ports between pipeline boxes.
//!
//! A [`port()`] pairs a forward **data signal** (with the latency and
//! bandwidth of the physical wire, verified by `attila-sim`) with a
//! backward **credit signal** implementing hardware-style flow control:
//! the producer holds one credit per slot of the consumer's input queue
//! (the queue sizes of Table 1), spends a credit per object sent, and the
//! consumer returns credits as it drains its queue. No data is ever
//! dropped and no queue can overflow — queue-full conditions propagate
//! upstream as back-pressure, exactly like the real pipeline.

use std::cell::Cell;
use std::collections::VecDeque;
use std::rc::Rc;

use attila_sim::{Cycle, DrainStaged, Signal, SignalBinder, SignalReader, SignalWriter, SimError};

/// The sending endpoint of a flow-controlled connection.
#[derive(Debug)]
pub struct PortSender<T> {
    data: SignalWriter<T>,
    credits_back: SignalReader<u32>,
    credits: usize,
}

impl<T: std::fmt::Debug> PortSender<T> {
    /// Collects returned credits; call once per cycle before sending.
    ///
    /// Panicking wrapper over [`try_update`](Self::try_update) for callers
    /// that treat signal errors as modelling bugs.
    pub fn update(&mut self, cycle: Cycle) {
        self.try_update(cycle).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Collects returned credits, surfacing credit-wire errors.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised by the credit signal (e.g. a
    /// fault injected on it).
    pub fn try_update(&mut self, cycle: Cycle) -> Result<(), SimError> {
        while let Some(n) = self.credits_back.try_read(cycle)? {
            self.credits += n as usize;
        }
        Ok(())
    }

    /// Whether an object can be sent this cycle (a credit is available and
    /// the wire has bandwidth left).
    pub fn can_send(&self, cycle: Cycle) -> bool {
        self.credits > 0 && self.data.can_write(cycle)
    }

    /// Number of objects sendable this cycle.
    pub fn sendable(&self, cycle: Cycle) -> usize {
        self.credits.min(self.data.slots_left(cycle))
    }

    /// Sends an object, consuming a credit.
    ///
    /// # Panics
    ///
    /// Panics if [`can_send`](Self::can_send) is false — the producing box
    /// must check first (hardware cannot send without a credit either).
    pub fn send(&mut self, cycle: Cycle, obj: T) {
        self.try_send(cycle, obj).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Sends an object, consuming a credit, surfacing wire errors.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the data signal — in particular
    /// [`SimError::BandwidthExceeded`] when an injected fault duplicates
    /// the write on a saturated wire.
    ///
    /// # Panics
    ///
    /// Panics if no credit is available: that is a producer logic bug,
    /// not a wire fault (hardware cannot send without a credit either).
    pub fn try_send(&mut self, cycle: Cycle, obj: T) -> Result<(), SimError> {
        assert!(self.credits > 0, "send without a credit on `{}`", self.data.name());
        self.credits -= 1;
        self.data.write(cycle, obj)
    }

    /// Attaches a Signal-Trace-Visualizer sink to the data wire; every
    /// object sent is recorded with its arrival cycle.
    pub fn attach_trace(&mut self, sink: attila_sim::TraceSink) {
        self.data.attach_trace(sink);
    }

    /// Outstanding credits (free slots the producer knows about).
    pub fn credits(&self) -> usize {
        self.credits
    }

    /// The earliest arrival cycle of a credit still travelling back on the
    /// return wire, if any — when this sender next gains a free slot.
    pub fn next_credit_arrival(&self) -> Option<attila_sim::Cycle> {
        self.credits_back.next_arrival()
    }

    /// The latest delivery cycle among objects still on the forward wire,
    /// if any — when everything this sender has sent will have arrived.
    pub fn drain_cycle(&self) -> Option<attila_sim::Cycle> {
        self.data.drain_cycle()
    }

    /// Total objects ever sent.
    pub fn total_sent(&self) -> u64 {
        self.data.total_written()
    }

    /// The data wire's registered name (interned: no allocation).
    pub fn name(&self) -> attila_sim::SignalName {
        self.data.name()
    }

    /// The data wire's bandwidth in objects/cycle.
    pub fn bandwidth(&self) -> usize {
        self.data.bandwidth()
    }

    /// This endpoint's port declaration for the architecture verifier: a
    /// flow-controlled output with the wire's actual name and bandwidth.
    pub fn decl(&self) -> attila_sim::PortDecl {
        attila_sim::PortDecl::output(self.name())
            .with_bandwidth(self.bandwidth())
            .with_flow_control()
    }

    /// Puts the forward data wire into staged (mailbox) mode for the
    /// multi-threaded clock loop; see [`SignalWriter::stage`].
    pub fn stage(&mut self, enabled: Rc<Cell<bool>>) -> Box<dyn DrainStaged>
    where
        T: 'static,
    {
        self.data.stage(enabled)
    }
}

/// The receiving endpoint: wire + input queue.
#[derive(Debug)]
pub struct PortReceiver<T> {
    data: SignalReader<T>,
    credits_out: SignalWriter<u32>,
    queue: VecDeque<T>,
    capacity: usize,
}

impl<T: std::fmt::Debug> PortReceiver<T> {
    /// Moves arrived objects from the wire into the input queue; call once
    /// per cycle before consuming.
    ///
    /// Panicking wrapper over [`try_update`](Self::try_update).
    pub fn update(&mut self, cycle: Cycle) {
        self.try_update(cycle).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Moves arrived objects into the input queue, surfacing wire errors.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised by the data signal — e.g.
    /// [`SimError::DataLost`] when an injected delay made an object
    /// arrive out of order and fall off the wire unread.
    pub fn try_update(&mut self, cycle: Cycle) -> Result<(), SimError> {
        while let Some(obj) = self.data.try_read(cycle)? {
            debug_assert!(
                self.queue.len() < self.capacity,
                "flow control violated on `{}`",
                self.data.name()
            );
            self.queue.push_back(obj);
        }
        Ok(())
    }

    /// Takes the next object from the input queue, returning a credit to
    /// the producer.
    pub fn pop(&mut self, cycle: Cycle) -> Option<T> {
        self.try_pop(cycle).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Takes the next object, surfacing credit-wire errors.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised by the credit signal.
    pub fn try_pop(&mut self, cycle: Cycle) -> Result<Option<T>, SimError> {
        let Some(obj) = self.queue.pop_front() else { return Ok(None) };
        self.credits_out.write(cycle, 1)?;
        Ok(Some(obj))
    }

    /// Peeks at the head of the input queue without consuming it.
    pub fn peek(&self) -> Option<&T> {
        self.queue.front()
    }

    /// Objects waiting in the input queue.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the input queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether data is still travelling on the wire.
    pub fn in_flight(&self) -> usize {
        self.data.in_flight()
    }

    /// Whether the receiver holds no data at all (queue and wire empty).
    pub fn idle(&self) -> bool {
        self.queue.is_empty() && self.data.in_flight() == 0
    }

    /// The earliest arrival cycle of an object still on the wire, if any —
    /// when this receiver next has input to absorb.
    pub fn next_arrival(&self) -> Option<attila_sim::Cycle> {
        self.data.next_arrival()
    }

    /// The receiver's event horizon: [`Horizon::Busy`] while the input
    /// queue holds consumable work, the wire's next arrival while objects
    /// are in flight, [`Horizon::Idle`] when fully empty.
    ///
    /// [`Horizon::Busy`]: attila_sim::Horizon::Busy
    /// [`Horizon::Idle`]: attila_sim::Horizon::Idle
    pub fn work_horizon(&self) -> attila_sim::Horizon {
        if !self.queue.is_empty() {
            attila_sim::Horizon::Busy
        } else {
            attila_sim::Horizon::from_event(self.data.next_arrival())
        }
    }

    /// The configured queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The data wire's registered name (interned: no allocation).
    pub fn name(&self) -> attila_sim::SignalName {
        self.data.name()
    }

    /// The data wire's bandwidth in objects/cycle.
    pub fn bandwidth(&self) -> usize {
        self.data.bandwidth()
    }

    /// This endpoint's port declaration for the architecture verifier: a
    /// flow-controlled input with the wire's actual name and bandwidth.
    pub fn decl(&self) -> attila_sim::PortDecl {
        attila_sim::PortDecl::input(self.name())
            .with_bandwidth(self.bandwidth())
            .with_flow_control()
    }

    /// Puts the backward credit wire into staged (mailbox) mode for the
    /// multi-threaded clock loop; see [`SignalWriter::stage`]. A port that
    /// crosses a thread boundary stages *both* wires: data is written by
    /// the sender's thread, credits by this receiver's thread.
    pub fn stage_credits(&mut self, enabled: Rc<Cell<bool>>) -> Box<dyn DrainStaged> {
        self.credits_out.stage(enabled)
    }
}

/// Creates a flow-controlled port and registers both of its signals.
///
/// `queue_capacity` is the consumer-side input queue size (Table 1);
/// `bandwidth`/`latency` describe the forward wire. The credit wire has
/// latency 1.
///
/// # Errors
///
/// Returns [`SimError::NameCollision`] if `name` (or `name.credits`) is
/// already registered.
///
/// # Examples
///
/// ```
/// use attila_core::port::port;
/// use attila_sim::SignalBinder;
///
/// let mut binder = SignalBinder::new();
/// let (mut tx, mut rx) =
///     port::<u32>(&mut binder, "setup->fraggen", "Setup", "FragGen", 1, 10, 4).unwrap();
/// for cycle in 0..20u64 {
///     tx.update(cycle);
///     rx.update(cycle);
///     if tx.can_send(cycle) {
///         tx.send(cycle, cycle as u32);
///     }
///     rx.pop(cycle);
/// }
/// ```
pub fn port<T: std::fmt::Debug + 'static>(
    binder: &mut SignalBinder,
    name: &str,
    from_box: &str,
    to_box: &str,
    bandwidth: usize,
    latency: Cycle,
    queue_capacity: usize,
) -> Result<(PortSender<T>, PortReceiver<T>), SimError> {
    assert!(queue_capacity > 0, "port `{name}` needs a non-empty queue");
    let (data_tx, data_rx) = binder.register::<T>(name, from_box, to_box, bandwidth, latency)?;
    let credit_name = format!("{name}.credits");
    let (credit_tx, credit_rx) =
        binder.register::<u32>(&credit_name, to_box, from_box, queue_capacity.max(bandwidth), 1)?;
    Ok((
        PortSender { data: data_tx, credits_back: credit_rx, credits: queue_capacity },
        PortReceiver { data: data_rx, credits_out: credit_tx, queue: VecDeque::new(), capacity: queue_capacity },
    ))
}

/// Creates a port without a binder (tests, tools).
pub fn unbound_port<T: std::fmt::Debug>(
    name: &str,
    bandwidth: usize,
    latency: Cycle,
    queue_capacity: usize,
) -> (PortSender<T>, PortReceiver<T>) {
    let (data_tx, data_rx) = Signal::<T>::with_name(name, bandwidth, latency);
    let (credit_tx, credit_rx) = Signal::<u32>::with_name(
        format!("{name}.credits"),
        queue_capacity.max(bandwidth),
        1,
    );
    (
        PortSender { data: data_tx, credits_back: credit_rx, credits: queue_capacity },
        PortReceiver { data: data_rx, credits_out: credit_tx, queue: VecDeque::new(), capacity: queue_capacity },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_flows_with_latency() {
        let (mut tx, mut rx) = unbound_port::<u32>("t", 1, 3, 8);
        tx.update(0);
        tx.send(0, 42);
        for cycle in 0..3 {
            rx.update(cycle);
            assert!(rx.is_empty(), "cycle {cycle}");
        }
        rx.update(3);
        assert_eq!(rx.pop(3), Some(42));
    }

    #[test]
    fn credits_limit_in_flight_objects() {
        let (mut tx, mut rx) = unbound_port::<u32>("t", 4, 1, 2);
        tx.update(0);
        assert_eq!(tx.sendable(0), 2);
        tx.send(0, 1);
        tx.send(0, 2);
        assert!(!tx.can_send(0), "queue capacity exhausted");
        // Consumer drains one at cycle 1; credit returns at cycle 2.
        rx.update(1);
        assert_eq!(rx.pop(1), Some(1));
        tx.update(1);
        assert!(!tx.can_send(1), "credit still in flight");
        tx.update(2);
        assert!(tx.can_send(2), "credit arrived");
    }

    #[test]
    fn bandwidth_limits_per_cycle_sends() {
        let (mut tx, mut _rx) = unbound_port::<u32>("t", 2, 1, 100);
        tx.update(0);
        tx.send(0, 1);
        tx.send(0, 2);
        assert!(!tx.can_send(0), "wire bandwidth used up");
        tx.update(1);
        assert!(tx.can_send(1));
    }

    #[test]
    #[should_panic(expected = "send without a credit")]
    fn sending_without_credit_panics() {
        let (mut tx, _rx) = unbound_port::<u32>("t", 4, 1, 1);
        tx.update(0);
        tx.send(0, 1);
        tx.send(0, 2);
    }

    #[test]
    fn steady_state_throughput_matches_bandwidth() {
        // With ample queue and credits returned promptly, a bandwidth-2
        // port sustains 2 objects/cycle.
        let (mut tx, mut rx) = unbound_port::<u32>("t", 2, 4, 32);
        let mut sent = 0u64;
        let mut received = 0u64;
        for cycle in 0..100 {
            tx.update(cycle);
            while tx.can_send(cycle) {
                tx.send(cycle, 7);
                sent += 1;
            }
            rx.update(cycle);
            while rx.pop(cycle).is_some() {
                received += 1;
            }
        }
        assert!(received >= 2 * 90, "sustained {received} in 100 cycles");
        assert_eq!(sent - received, tx.total_sent() - received);
    }

    #[test]
    fn registered_port_appears_in_binder() {
        let mut binder = SignalBinder::new();
        let _p = port::<u8>(&mut binder, "a->b", "A", "B", 1, 2, 4).unwrap();
        assert!(binder.info("a->b").is_ok());
        assert!(binder.info("a->b.credits").is_ok());
        assert_eq!(binder.info("a->b").unwrap().latency, 2);
    }

    #[test]
    fn peek_does_not_return_credit() {
        let (mut tx, mut rx) = unbound_port::<u32>("t", 1, 1, 1);
        tx.update(0);
        tx.send(0, 5);
        rx.update(1);
        assert_eq!(rx.peek(), Some(&5));
        assert_eq!(rx.len(), 1);
        tx.update(2);
        assert!(!tx.can_send(2), "peek must not release the slot");
    }

    #[test]
    fn idle_tracks_wire_and_queue() {
        let (mut tx, mut rx) = unbound_port::<u32>("t", 1, 5, 4);
        assert!(rx.idle());
        tx.update(0);
        tx.send(0, 1);
        rx.update(0);
        assert!(!rx.idle(), "object on the wire");
        for cycle in 1..=5 {
            rx.update(cycle);
        }
        assert!(!rx.idle(), "object in the queue");
        rx.pop(5);
        assert!(rx.idle());
    }
}
