//! The Command Processor's instruction set.
//!
//! Per the paper (§4): "The ATTILA Command Processor supports a simple set
//! of instructions: write a render state register, write a buffer into GPU
//! memory, draw a batch, fast clear of the color or z and stencil buffers
//! and swap the current front and back color buffers (finishing the
//! frame)." The OpenGL framework translates every API call into one or
//! more of these low-level control commands.

use std::sync::Arc;

use crate::state::RenderState;

/// OpenGL primitives supported by Primitive Assembly (paper §2.2:
/// "triangle lists, fans and strips and quad lists and strips").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Primitive {
    /// Independent triangles (3 vertices each).
    #[default]
    Triangles,
    /// Triangle strip.
    TriangleStrip,
    /// Triangle fan.
    TriangleFan,
    /// Independent quads (4 vertices each, split into two triangles).
    Quads,
    /// Quad strip.
    QuadStrip,
}

impl Primitive {
    /// Number of triangles produced by `n` vertices of this primitive.
    pub fn triangle_count(self, n: u32) -> u32 {
        match self {
            Primitive::Triangles => n / 3,
            Primitive::TriangleStrip | Primitive::TriangleFan => n.saturating_sub(2),
            Primitive::Quads => n / 4 * 2,
            Primitive::QuadStrip => {
                if n < 4 {
                    0
                } else {
                    (n - 2) / 2 * 2
                }
            }
        }
    }
}

/// A draw-batch command: the vertex stream description. The render state
/// itself travels as a snapshot taken when the draw is issued.
#[derive(Debug, Clone)]
pub struct DrawCall {
    /// Primitive topology.
    pub primitive: Primitive,
    /// Number of vertices in the batch.
    pub vertex_count: u32,
    /// Address of a `u32` index buffer, or `None` for sequential
    /// (non-indexed) batches.
    pub index_buffer: Option<u64>,
}

/// One Command Processor instruction.
#[derive(Debug, Clone)]
pub enum GpuCommand {
    /// Update the render state registers (the GL driver encodes each
    /// state change as a register write; here a whole-state closure keeps
    /// the command stream compact while costing the documented cycles).
    SetState(Box<RenderState>),
    /// Upload a buffer from system memory to GPU memory over the system
    /// bus (vertex/index/texture data).
    WriteBuffer {
        /// Destination GPU address.
        address: u64,
        /// Payload copied from "system memory".
        data: Arc<Vec<u8>>,
    },
    /// Preload a shader program into shader instruction memory.
    LoadPrograms,
    /// Render a batch with the current state.
    Draw(DrawCall),
    /// Fast clear of the colour buffer to an RGBA8 value.
    FastClearColor(u32),
    /// Fast clear of the Z/stencil buffer to an `S8Z24` word.
    FastClearZStencil(u32),
    /// Finish the frame: drain the pipeline, flush caches, let the DAC
    /// dump the colour buffer.
    Swap,
}

impl GpuCommand {
    /// Short mnemonic used in logs and traces.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            GpuCommand::SetState(_) => "STATE",
            GpuCommand::WriteBuffer { .. } => "WRITE",
            GpuCommand::LoadPrograms => "LOADP",
            GpuCommand::Draw(_) => "DRAW",
            GpuCommand::FastClearColor(_) => "CLRC",
            GpuCommand::FastClearZStencil(_) => "CLRZ",
            GpuCommand::Swap => "SWAP",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_counts_per_primitive() {
        assert_eq!(Primitive::Triangles.triangle_count(9), 3);
        assert_eq!(Primitive::Triangles.triangle_count(8), 2);
        assert_eq!(Primitive::TriangleStrip.triangle_count(5), 3);
        assert_eq!(Primitive::TriangleStrip.triangle_count(2), 0);
        assert_eq!(Primitive::TriangleFan.triangle_count(6), 4);
        assert_eq!(Primitive::Quads.triangle_count(8), 4);
        assert_eq!(Primitive::QuadStrip.triangle_count(4), 2);
        assert_eq!(Primitive::QuadStrip.triangle_count(6), 4);
        assert_eq!(Primitive::QuadStrip.triangle_count(3), 0);
    }

    #[test]
    fn mnemonics_are_unique() {
        let cmds = [
            GpuCommand::LoadPrograms.mnemonic(),
            GpuCommand::Swap.mnemonic(),
            GpuCommand::FastClearColor(0).mnemonic(),
            GpuCommand::FastClearZStencil(0).mnemonic(),
        ];
        let set: std::collections::HashSet<_> = cmds.iter().collect();
        assert_eq!(set.len(), cmds.len());
    }
}
