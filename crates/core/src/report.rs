//! Post-mortem failure reports — hang forensics for the pipeline.
//!
//! When a simulation aborts (a [`SimError`] from a signal verification
//! check) or hangs (the watchdog expires), knowing *which* wire or box is
//! stuck matters far more than the bare error. A [`FailureReport`]
//! snapshots the whole machine at the moment of death: every box's busy
//! flag and queue occupancy, every signal's in-flight/lost counters, and
//! the most recent signal-trace events when tracing was enabled. Its
//! [`Display`](std::fmt::Display) rendering is what the CLI prints to
//! stderr on failure.

use attila_sim::{Cycle, SignalStatus, SimError, TopologySummary, TraceEvent};

/// One pipeline box's health at the moment of failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoxStatus {
    /// The box's name (matches the names signals are registered under).
    pub name: String,
    /// Whether the box reported work in flight.
    pub busy: bool,
    /// Objects waiting in the box's input queues and staging buffers.
    pub queued: usize,
}

/// A snapshot of the machine at the moment a run failed.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureReport {
    /// The cycle at which the failure was detected.
    pub cycle: Cycle,
    /// The verification error that killed the run, or `None` for a
    /// watchdog expiry (a hang, not a detected fault).
    pub error: Option<SimError>,
    /// Per-box busy flags and queue occupancies, pipeline order.
    pub boxes: Vec<BoxStatus>,
    /// Health counters of every registered signal, in name order.
    pub signals: Vec<SignalStatus>,
    /// The most recent signal-trace events (empty unless tracing was
    /// enabled, e.g. by arming a fault injector).
    pub recent_events: Vec<TraceEvent>,
    /// What was *wired*, not just what was busy: box/signal counts and
    /// the sorted signal names, so a hang dump can be checked against the
    /// intended design.
    pub topology: Option<TopologySummary>,
}

impl FailureReport {
    /// The boxes still holding work — a drained pipeline that hangs
    /// anyway points at the memory controller or the DAC.
    pub fn busy_boxes(&self) -> impl Iterator<Item = &BoxStatus> {
        self.boxes.iter().filter(|b| b.busy)
    }

    /// The signals that dropped objects.
    pub fn lossy_signals(&self) -> impl Iterator<Item = &SignalStatus> {
        self.signals.iter().filter(|s| s.lost > 0)
    }
}

impl std::fmt::Display for FailureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "=== failure report (cycle {}) ===", self.cycle)?;
        match &self.error {
            Some(e) => writeln!(f, "fault: {e}")?,
            None => writeln!(f, "fault: none (watchdog expiry — the pipeline hung)")?,
        }
        writeln!(f, "boxes:")?;
        for b in &self.boxes {
            writeln!(
                f,
                "  {:<20} {} queued={}",
                b.name,
                if b.busy { "BUSY" } else { "idle" },
                b.queued
            )?;
        }
        writeln!(f, "signals (in-flight / written / read / lost):")?;
        for s in &self.signals {
            // Quiet wires are noise in a post-mortem; show the active ones.
            if s.in_flight == 0 && s.lost == 0 && !s.lossy {
                continue;
            }
            writeln!(
                f,
                "  {:<36} {:>3} / {} / {} / {}{}",
                s.name,
                s.in_flight,
                s.written,
                s.read,
                s.lost,
                if s.lossy { "  [lossy]" } else { "" }
            )?;
        }
        if !self.recent_events.is_empty() {
            writeln!(f, "last {} signal events:", self.recent_events.len())?;
            for ev in &self.recent_events {
                writeln!(f, "  {:>8}  {:<36} {}", ev.cycle, ev.signal, ev.info)?;
            }
        }
        if let Some(topology) = &self.topology {
            write!(f, "{topology}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FailureReport {
        FailureReport {
            cycle: 1234,
            error: Some(SimError::DataLost {
                signal: "PA->Clipper.triangles".into(),
                cycle: 1230,
                lost: 2,
            }),
            boxes: vec![
                BoxStatus { name: "Clipper".into(), busy: true, queued: 3 },
                BoxStatus { name: "TriangleSetup".into(), busy: false, queued: 0 },
            ],
            signals: vec![SignalStatus {
                name: "PA->Clipper.triangles".into(),
                in_flight: 1,
                written: 10,
                read: 7,
                lost: 2,
                lossy: false,
            }],
            recent_events: vec![TraceEvent {
                cycle: 1229,
                signal: "PA->Clipper.triangles".into(),
                info: "Triangle#41".into(),
            }],
            topology: Some(TopologySummary {
                box_count: 2,
                signal_count: 1,
                signal_names: vec!["PA->Clipper.triangles".into()],
            }),
        }
    }

    #[test]
    fn display_names_the_offender() {
        let text = sample().to_string();
        assert!(text.contains("cycle 1234"), "{text}");
        assert!(text.contains("PA->Clipper.triangles"), "{text}");
        assert!(text.contains("BUSY queued=3"), "{text}");
        assert!(text.contains("Triangle#41"), "{text}");
        assert!(text.contains("topology: 2 boxes, 1 signals"), "{text}");
    }

    #[test]
    fn watchdog_report_has_no_fault() {
        let mut r = sample();
        r.error = None;
        let text = r.to_string();
        assert!(text.contains("watchdog"), "{text}");
    }

    #[test]
    fn helpers_filter() {
        let r = sample();
        assert_eq!(r.busy_boxes().count(), 1);
        assert_eq!(r.lossy_signals().count(), 1);
    }

    #[test]
    fn quiet_signals_are_elided() {
        let mut r = sample();
        r.signals.push(SignalStatus {
            name: "quiet->wire".into(),
            in_flight: 0,
            written: 5,
            read: 5,
            lost: 0,
            lossy: false,
        });
        assert!(!r.to_string().contains("quiet->wire"));
    }
}
