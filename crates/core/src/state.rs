//! Render state registers.
//!
//! The Command Processor's register file: everything that parametrizes a
//! draw batch. State updates pipeline with rendering, so each batch
//! carries an immutable snapshot (`Arc<RenderState>`) down the pipeline —
//! two batches with different state can be in flight at once (the paper
//! pipelines one batch in the geometry phase with one in the fragment
//! phase).

use std::sync::Arc;

use attila_emu::fragops::{BlendState, DepthState, StencilState};
use attila_emu::isa::limits;
use attila_emu::raster::Viewport;
use attila_emu::texture::TextureDesc;
use attila_emu::vector::Vec4;
use attila_emu::Program;

/// Face culling modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CullMode {
    /// No culling.
    #[default]
    None,
    /// Cull front-facing triangles.
    Front,
    /// Cull back-facing triangles.
    Back,
}

/// A vertex attribute stream binding (vertex arrays / buffer objects).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttributeBinding {
    /// GPU memory address of element 0.
    pub address: u64,
    /// Byte stride between consecutive elements.
    pub stride: u32,
    /// Components per element (1–4, stored as f32).
    pub components: u32,
    /// Value of the missing w (and z) components (OpenGL: w=1, z=0).
    pub default_w: f32,
}

impl AttributeBinding {
    /// Bytes occupied by one element.
    pub fn element_bytes(&self) -> u32 {
        self.components * 4
    }

    /// Address of element `i`.
    pub fn element_address(&self, i: u32) -> u64 {
        self.address + i as u64 * self.stride as u64
    }
}

/// The scissor rectangle test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScissorState {
    /// Whether the test is enabled.
    pub enabled: bool,
    /// Left edge.
    pub x: u32,
    /// Bottom edge.
    pub y: u32,
    /// Width.
    pub width: u32,
    /// Height.
    pub height: u32,
}

impl ScissorState {
    /// Whether pixel `(x, y)` survives the scissor test.
    pub fn contains(&self, x: u32, y: u32) -> bool {
        !self.enabled
            || (x >= self.x && x < self.x + self.width && y >= self.y && y < self.y + self.height)
    }
}

impl Default for ScissorState {
    fn default() -> Self {
        ScissorState { enabled: false, x: 0, y: 0, width: u32::MAX, height: u32::MAX }
    }
}

/// The complete render state snapshot a batch carries.
#[derive(Debug, Clone)]
pub struct RenderState {
    /// Viewport transform.
    pub viewport: Viewport,
    /// Scissor test.
    pub scissor: ScissorState,
    /// Face culling.
    pub cull: CullMode,
    /// Depth test state.
    pub depth: DepthState,
    /// Stencil test state (front faces, and back faces too unless
    /// `stencil_back` is set).
    pub stencil: StencilState,
    /// Separate stencil state for back-facing triangles (the paper's
    /// "double sided stencil" future-work item; one-pass shadow volumes).
    pub stencil_back: Option<StencilState>,
    /// Blend state and colour mask.
    pub blend: BlendState,
    /// The active vertex program.
    pub vertex_program: Arc<Program>,
    /// The active fragment program.
    pub fragment_program: Arc<Program>,
    /// Vertex program constants.
    pub vertex_constants: Arc<Vec<Vec4>>,
    /// Fragment program constants.
    pub fragment_constants: Arc<Vec<Vec4>>,
    /// Bound textures per sampler.
    pub textures: Arc<Vec<Option<TextureDesc>>>,
    /// Active vertex attribute bindings (index 0 must be position).
    pub attributes: Arc<Vec<Option<AttributeBinding>>>,
    /// Number of vertex-shader output attributes interpolated for
    /// fragments (position is output 0).
    pub varying_count: u32,
    /// Colour buffer base address.
    pub color_buffer: u64,
    /// Depth/stencil buffer base address.
    pub z_buffer: u64,
    /// Render-target width in pixels (surface allocation, ROP addressing).
    pub target_width: u32,
    /// Render-target height in pixels.
    pub target_height: u32,
}

impl RenderState {
    /// Whether Z and stencil can run **before** shading for this state:
    /// legal when the fragment shader cannot kill fragments (our shaders
    /// never write depth; alpha test is compiled into `KIL`, see §2.2).
    pub fn early_z(&self) -> bool {
        !self.fragment_program.has_kill()
    }

    /// Number of fragment-shader input attributes to interpolate
    /// (excludes position, which travels as depth + coordinates).
    pub fn fragment_inputs(&self) -> u32 {
        self.varying_count
    }
}

/// A do-nothing vertex program (`MOV o0, i0`).
pub fn passthrough_vertex_program() -> Arc<Program> {
    Arc::new(
        attila_emu::asm::assemble("!!ATTILAvp1.0\nMOV o0, i0;\nMOV o1, i1;\nEND;")
            .expect("passthrough assembles"),
    )
}

/// A flat-colour fragment program (`MOV o0, i0`).
pub fn passthrough_fragment_program() -> Arc<Program> {
    Arc::new(
        attila_emu::asm::assemble("!!ATTILAfp1.0\nMOV o0, i0;\nEND;")
            .expect("passthrough assembles"),
    )
}

impl Default for RenderState {
    fn default() -> Self {
        RenderState {
            viewport: Viewport::new(320, 240),
            scissor: ScissorState::default(),
            cull: CullMode::None,
            depth: DepthState::default(),
            stencil: StencilState::default(),
            stencil_back: None,
            blend: BlendState::default(),
            vertex_program: passthrough_vertex_program(),
            fragment_program: passthrough_fragment_program(),
            vertex_constants: Arc::new(vec![Vec4::ZERO; limits::PARAMS]),
            fragment_constants: Arc::new(vec![Vec4::ZERO; limits::PARAMS]),
            textures: Arc::new(vec![None; limits::SAMPLERS]),
            attributes: Arc::new(vec![None; limits::INPUTS]),
            varying_count: 1,
            color_buffer: 0,
            z_buffer: 0,
            target_width: 320,
            target_height: 240,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_state_is_sane() {
        let s = RenderState::default();
        assert!(!s.depth.enabled);
        assert!(!s.stencil.enabled);
        assert!(!s.blend.enabled);
        assert!(s.early_z(), "no KIL in the passthrough program");
    }

    #[test]
    fn early_z_depends_on_kill() {
        let s = RenderState {
            fragment_program: Arc::new(
                attila_emu::asm::assemble("!!ATTILAfp1.0\nKIL i0;\nMOV o0, i0;\nEND;").unwrap(),
            ),
            ..Default::default()
        };
        assert!(!s.early_z());
    }

    #[test]
    fn scissor_contains() {
        let s = ScissorState { enabled: true, x: 10, y: 10, width: 5, height: 5 };
        assert!(s.contains(10, 10));
        assert!(s.contains(14, 14));
        assert!(!s.contains(15, 10));
        assert!(!s.contains(9, 12));
        let off = ScissorState::default();
        assert!(off.contains(1000, 1000));
    }

    #[test]
    fn attribute_binding_addressing() {
        let b = AttributeBinding { address: 0x100, stride: 24, components: 3, default_w: 1.0 };
        assert_eq!(b.element_bytes(), 12);
        assert_eq!(b.element_address(0), 0x100);
        assert_eq!(b.element_address(2), 0x100 + 48);
    }
}
