//! The golden-model renderer: pure functional execution of a command
//! trace, with no timing at all.
//!
//! The paper validates the simulator's rendered output against a real GPU
//! (Figure 10). We cannot ship a GeForce, so the golden model plays that
//! role: it consumes the *same* Command Processor trace through the *same*
//! emulator libraries, but in straight-line code — no boxes, signals,
//! caches or schedulers. Any pixel difference between the cycle-level
//! simulator's DAC dump and the golden model is a timing-model bug
//! (reordering, lost fragments, cache incoherence), which is exactly what
//! the comparison is meant to catch.
//!
//! Fragments are processed in 2×2 quads so texture level-of-detail
//! derivatives match the hardware path bit-for-bit.

use std::sync::Arc;

use attila_emu::fragops::{
    blend, pack_rgba8, quantize_depth, unpack_rgba8, z_stencil_test,
};
use attila_emu::raster::{gen_fragment, setup_triangle, SetupTriangle};
use attila_emu::shader::{ShaderEmulator, TextureRequest};
use attila_emu::texture::TextureEmulator;
use attila_emu::vector::Vec4;
use attila_emu::ClipperEmulator;
use attila_emu::isa::limits;

use crate::address::pixel_address;
use crate::commands::{GpuCommand, Primitive};
use crate::gpu::FrameDump;
use crate::state::{CullMode, RenderState};

/// The golden-model renderer.
pub struct GoldenRenderer {
    memory: Vec<u8>,
    state: Arc<RenderState>,
    frames: Vec<FrameDump>,
    clipper: ClipperEmulator,
    texture: TextureEmulator,
    triangles_drawn: u64,
}

impl GoldenRenderer {
    /// Creates a renderer with `memory_bytes` of GPU memory.
    pub fn new(memory_bytes: usize) -> Self {
        GoldenRenderer {
            memory: vec![0; memory_bytes],
            state: Arc::new(RenderState::default()),
            frames: Vec::new(),
            clipper: ClipperEmulator::new(),
            texture: TextureEmulator::new(),
            triangles_drawn: 0,
        }
    }

    /// Runs a whole command trace, returning one frame per `Swap`.
    pub fn run_trace(&mut self, commands: &[GpuCommand]) -> Vec<FrameDump> {
        for cmd in commands {
            self.execute(cmd);
        }
        std::mem::take(&mut self.frames)
    }

    /// Triangles rasterized so far.
    pub fn triangles_drawn(&self) -> u64 {
        self.triangles_drawn
    }

    fn execute(&mut self, cmd: &GpuCommand) {
        match cmd {
            GpuCommand::SetState(s) => self.state = Arc::new((**s).clone()),
            GpuCommand::WriteBuffer { address, data } => {
                let a = *address as usize;
                self.memory[a..a + data.len()].copy_from_slice(data);
            }
            GpuCommand::LoadPrograms => {}
            GpuCommand::FastClearColor(word) => {
                let state = Arc::clone(&self.state);
                self.fill_surface(state.color_buffer, state.target_width, state.target_height, *word);
            }
            GpuCommand::FastClearZStencil(word) => {
                let state = Arc::clone(&self.state);
                self.fill_surface(state.z_buffer, state.target_width, state.target_height, *word);
            }
            GpuCommand::Draw(draw) => {
                let draw = draw.clone();
                self.draw(&draw);
            }
            GpuCommand::Swap => {
                let state = Arc::clone(&self.state);
                self.frames.push(self.dump(
                    state.color_buffer,
                    state.target_width,
                    state.target_height,
                ));
            }
        }
    }

    fn fill_surface(&mut self, base: u64, width: u32, height: u32, word: u32) {
        let bytes = crate::address::surface_bytes(width, height);
        for off in (0..bytes).step_by(4) {
            let a = (base + off) as usize;
            self.memory[a..a + 4].copy_from_slice(&word.to_le_bytes());
        }
    }

    fn read_u32(&self, addr: u64) -> u32 {
        let a = addr as usize;
        u32::from_le_bytes(self.memory[a..a + 4].try_into().expect("4 bytes"))
    }

    fn write_u32(&mut self, addr: u64, v: u32) {
        let a = addr as usize;
        self.memory[a..a + 4].copy_from_slice(&v.to_le_bytes());
    }

    fn fetch_vertex(&self, state: &RenderState, index: u32) -> Vec<Vec4> {
        let mut inputs = Vec::new();
        for binding in state.attributes.iter() {
            let Some(b) = binding else {
                inputs.push(Vec4::ZERO);
                continue;
            };
            let addr = b.element_address(index);
            let mut v = Vec4::new(0.0, 0.0, 0.0, b.default_w);
            for c in 0..b.components as usize {
                let a = (addr + c as u64 * 4) as usize;
                v[c] = f32::from_le_bytes(self.memory[a..a + 4].try_into().expect("4 bytes"));
            }
            inputs.push(v);
        }
        inputs
    }

    fn draw(&mut self, draw: &crate::commands::DrawCall) {
        let state = Arc::clone(&self.state);
        // Vertex shading.
        let mut vs = ShaderEmulator::new(Arc::clone(&state.vertex_program));
        for (i, c) in state.vertex_constants.iter().take(limits::PARAMS).enumerate() {
            vs.set_constant(i, *c);
        }
        let mut shaded: Vec<Arc<[Vec4; limits::OUTPUTS]>> = Vec::new();
        for seq in 0..draw.vertex_count {
            let index = match draw.index_buffer {
                Some(ib) => self.read_u32(ib + seq as u64 * 4),
                None => seq,
            };
            let inputs = self.fetch_vertex(&state, index);
            let t = vs.spawn(&inputs);
            let (outputs, _) = vs.run_to_end(t, |_| Vec4::ZERO);
            vs.retire(t);
            shaded.push(Arc::new(outputs));
        }

        // Primitive assembly (same rules as the box).
        let tris = assemble(draw.primitive, &shaded);

        // Fragment shading setup.
        let mut fs = ShaderEmulator::new(Arc::clone(&state.fragment_program));
        for (i, c) in state.fragment_constants.iter().take(limits::PARAMS).enumerate() {
            fs.set_constant(i, *c);
        }

        for tri in tris {
            let positions = [tri[0][0], tri[1][0], tri[2][0]];
            if self.clipper.trivially_rejected(&positions) {
                continue;
            }
            let Some(setup) = setup_triangle(&positions, state.viewport) else { continue };
            let cull = match state.cull {
                CullMode::None => false,
                CullMode::Front => setup.front_facing,
                CullMode::Back => !setup.front_facing,
            };
            if cull {
                continue;
            }
            self.triangles_drawn += 1;
            self.raster_triangle(&state, &setup, &tri, &mut fs);
        }
    }

    fn raster_triangle(
        &mut self,
        state: &RenderState,
        setup: &SetupTriangle,
        tri: &[Arc<[Vec4; limits::OUTPUTS]>; 3],
        fs: &mut ShaderEmulator,
    ) {
        let vp = state.viewport;
        let (x0, y0, x1, y1) = setup.bbox;
        let early = state.early_z();
        let varyings = state.varying_count as usize;
        let qx0 = x0 & !1;
        let qy0 = y0 & !1;
        let mut qy = qy0;
        while qy <= y1 {
            let mut qx = qx0;
            while qx <= x1 {
                // Coverage for the quad.
                let mut alive = [false; 4];
                let mut edges = [[0.0f32; 3]; 4];
                let mut depth = [0.0f32; 4];
                let mut any = false;
                for i in 0..4 {
                    let x = qx + (i as u32 & 1);
                    let y = qy + (i as u32 >> 1);
                    let in_vp =
                        x >= vp.x && x < vp.x + vp.width && y >= vp.y && y < vp.y + vp.height;
                    let f = gen_fragment(setup, x, y);
                    let ok = in_vp
                        && !f.culled
                        && state.scissor.contains(x, y)
                        && (0.0..=1.0).contains(&f.depth);
                    alive[i] = ok;
                    edges[i] = f.edges;
                    depth[i] = f.depth;
                    any |= ok;
                }
                if !any {
                    qx += 2;
                    continue;
                }

                // Early Z/stencil.
                if early {
                    for i in 0..4 {
                        if alive[i] {
                            alive[i] =
                                self.z_test(state, setup.front_facing, qx, qy, i, depth[i]);
                        }
                    }
                    if !alive.iter().any(|a| *a) {
                        qx += 2;
                        continue;
                    }
                }

                // Interpolate inputs for all four fragments (helpers too).
                let mut inputs: [Vec<Vec4>; 4] = Default::default();
                for i in 0..4 {
                    let mut v = Vec::with_capacity(varyings);
                    for a in 0..varyings {
                        let attrs = [tri[0][a + 1], tri[1][a + 1], tri[2][a + 1]];
                        v.push(setup.interpolate(edges[i], &attrs));
                    }
                    inputs[i] = v;
                }

                // Shade the quad in lockstep with quad-level texturing.
                let (colors, killed) = self.shade_quad(state, fs, &inputs);
                for i in 0..4 {
                    if killed[i] {
                        alive[i] = false;
                    }
                }

                // Late Z/stencil.
                if !early {
                    for i in 0..4 {
                        if alive[i] {
                            alive[i] =
                                self.z_test(state, setup.front_facing, qx, qy, i, depth[i]);
                        }
                    }
                }

                // Colour write.
                for i in 0..4 {
                    if !alive[i] {
                        continue;
                    }
                    let x = qx + (i as u32 & 1);
                    let y = qy + (i as u32 >> 1);
                    let addr = pixel_address(state.color_buffer, state.target_width, x, y);
                    let a = addr as usize;
                    let dst = unpack_rgba8(self.memory[a..a + 4].try_into().expect("4 bytes"));
                    let out = blend(&state.blend, colors[i], dst);
                    let packed = pack_rgba8(out);
                    self.memory[a..a + 4].copy_from_slice(&packed);
                }
                qx += 2;
            }
            qy += 2;
        }
    }

    fn z_test(
        &mut self,
        state: &RenderState,
        front_facing: bool,
        qx: u32,
        qy: u32,
        i: usize,
        depth: f32,
    ) -> bool {
        if !state.depth.enabled && !state.stencil.enabled {
            return true;
        }
        let stencil = if front_facing {
            state.stencil
        } else {
            state.stencil_back.unwrap_or(state.stencil)
        };
        let x = qx + (i as u32 & 1);
        let y = qy + (i as u32 >> 1);
        let addr = pixel_address(state.z_buffer, state.target_width, x, y);
        let stored = self.read_u32(addr);
        let r = z_stencil_test(state.depth, stencil, quantize_depth(depth), stored);
        if r.written {
            self.write_u32(addr, r.new_word);
        }
        r.pass
    }

    fn shade_quad(
        &mut self,
        state: &RenderState,
        fs: &mut ShaderEmulator,
        inputs: &[Vec<Vec4>; 4],
    ) -> ([Vec4; 4], [bool; 4]) {
        let threads: Vec<_> = inputs.iter().map(|i| fs.spawn(i)).collect();
        let mut colors = [Vec4::ZERO; 4];
        let mut killed = [false; 4];
        let mut finished = [false; 4];
        // Lockstep until all threads finish; texture requests are bundled
        // per quad to compute derivatives exactly like the Texture Unit.
        while !finished.iter().all(|f| *f) {
            let mut tex: [Option<TextureRequest>; 4] = [None, None, None, None];
            let mut any_tex = false;
            for i in 0..4 {
                if finished[i] {
                    continue;
                }
                match fs.step(threads[i]) {
                    attila_emu::shader::StepResult::Executed { .. } => {}
                    attila_emu::shader::StepResult::Texture(req) => {
                        tex[i] = Some(req);
                        any_tex = true;
                    }
                    attila_emu::shader::StepResult::Finished { killed: k } => {
                        finished[i] = true;
                        killed[i] = k;
                    }
                }
            }
            if any_tex {
                let fallback =
                    tex.iter().flatten().next().map(|r| r.coords).unwrap_or(Vec4::ZERO);
                let meta = tex.iter().flatten().next().cloned().expect("any_tex");
                let coords = [
                    tex[0].as_ref().map(|r| r.coords).unwrap_or(fallback),
                    tex[1].as_ref().map(|r| r.coords).unwrap_or(fallback),
                    tex[2].as_ref().map(|r| r.coords).unwrap_or(fallback),
                    tex[3].as_ref().map(|r| r.coords).unwrap_or(fallback),
                ];
                let texels = self.sample_quad(state, meta.sampler, coords, meta.lod_bias, meta.projective);
                for i in 0..4 {
                    if tex[i].is_some() {
                        fs.complete_texture(threads[i], texels[i]);
                    }
                }
            }
        }
        for i in 0..4 {
            colors[i] = fs.output(threads[i], 0);
            fs.retire(threads[i]);
        }
        (colors, killed)
    }

    fn sample_quad(
        &self,
        state: &RenderState,
        sampler: u8,
        coords: [Vec4; 4],
        lod_bias: f32,
        projective: bool,
    ) -> [Vec4; 4] {
        let Some(desc) = state.textures.get(sampler as usize).and_then(|d| d.clone()) else {
            return [Vec4::new(0.0, 0.0, 0.0, 1.0); 4];
        };
        let mut src: &[u8] = &self.memory;
        let results = self.texture.sample_quad(&desc, &mut src, &coords, lod_bias, projective);
        [results[0].value, results[1].value, results[2].value, results[3].value]
    }

    fn dump(&self, base: u64, width: u32, height: u32) -> FrameDump {
        let mut rgba = vec![0u8; (width * height * 4) as usize];
        for y in 0..height {
            for x in 0..width {
                let addr = pixel_address(base, width, x, y) as usize;
                let o = ((y * width + x) * 4) as usize;
                rgba[o..o + 4].copy_from_slice(&self.memory[addr..addr + 4]);
            }
        }
        FrameDump { width, height, rgba }
    }
}

impl std::fmt::Debug for GoldenRenderer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GoldenRenderer")
            .field("memory_bytes", &self.memory.len())
            .field("frames", &self.frames.len())
            .field("triangles_drawn", &self.triangles_drawn)
            .finish()
    }
}

/// Assembles vertices into triangles following the Primitive Assembly
/// box's rules. This is an *intentionally independent* re-implementation
/// (like the golden model's raw memory): sharing code with the timing box
/// would hide assembly bugs from the golden-equivalence comparison. The
/// two are kept in lockstep by the integration tests.
fn assemble<T: Clone>(prim: Primitive, verts: &[T]) -> Vec<[T; 3]> {
    let mut out = Vec::new();
    match prim {
        Primitive::Triangles => {
            for c in verts.chunks_exact(3) {
                out.push([c[0].clone(), c[1].clone(), c[2].clone()]);
            }
        }
        Primitive::TriangleStrip => {
            for (i, w) in verts.windows(3).enumerate() {
                if i % 2 == 0 {
                    out.push([w[0].clone(), w[1].clone(), w[2].clone()]);
                } else {
                    out.push([w[1].clone(), w[0].clone(), w[2].clone()]);
                }
            }
        }
        Primitive::TriangleFan => {
            for w in verts[1..].windows(2) {
                out.push([verts[0].clone(), w[0].clone(), w[1].clone()]);
            }
        }
        Primitive::Quads => {
            for c in verts.chunks_exact(4) {
                out.push([c[0].clone(), c[1].clone(), c[2].clone()]);
                out.push([c[0].clone(), c[2].clone(), c[3].clone()]);
            }
        }
        Primitive::QuadStrip => {
            let mut i = 0;
            while i + 3 < verts.len() {
                out.push([verts[i].clone(), verts[i + 1].clone(), verts[i + 3].clone()]);
                out.push([verts[i].clone(), verts[i + 3].clone(), verts[i + 2].clone()]);
                i += 2;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_matches_primitive_counts() {
        let v: Vec<u32> = (0..8).collect();
        assert_eq!(assemble(Primitive::Triangles, &v[..6]).len(), 2);
        assert_eq!(assemble(Primitive::TriangleStrip, &v[..5]).len(), 3);
        assert_eq!(assemble(Primitive::TriangleFan, &v[..5]).len(), 3);
        assert_eq!(assemble(Primitive::Quads, &v[..8]).len(), 4);
        assert_eq!(assemble(Primitive::QuadStrip, &v[..6]).len(), 4);
    }

    #[test]
    fn strip_winding_matches_pa_box() {
        let v: Vec<u32> = (0..4).collect();
        let tris = assemble(Primitive::TriangleStrip, &v);
        assert_eq!(tris[0], [0, 1, 2]);
        assert_eq!(tris[1], [2, 1, 3]);
    }
}
