//! The Colour Write unit (ROPc).
//!
//! "Shaded fragment quads are stored and sent to the Color Write unit
//! where the framebuffer is updated. We implement all the update functions
//! defined in the OpenGL API. The architecture of the Color Write unit is
//! very similar to that of the Z and Stencil test unit with the Color
//! Cache supporting fast color clear of the whole color buffer." (§2.2)

use std::collections::BTreeMap;

use attila_emu::fragops::{blend, compress_z_block, pack_rgba8, unpack_rgba8, ZBLOCK_WORDS};
use attila_mem::controller::split_transactions;
use attila_mem::{Client, MemOp, MemRequest, MemoryController, RopCache};
use attila_sim::{Counter, Cycle, SimError};

use crate::address::{pixel_address, surface_bytes, tile_address};
use crate::config::RopConfig;
use crate::port::PortReceiver;
use crate::types::FragQuad;

/// One Colour Write unit.
#[derive(Debug)]
pub struct ColorWriteUnit {
    unit: u8, // state: derived — unit index fixed at construction
    config: RopConfig,
    /// Shaded quads from the Fragment FIFO (early-Z) path.
    pub in_early: PortReceiver<FragQuad>,
    /// Shaded, Z-tested quads from the Z/stencil units (late-Z path).
    pub in_late: PortReceiver<FragQuad>,
    cache: Option<RopCache>,
    // state: transient — in-flight fill/writeback bookkeeping, drained at
    // the quiescent checkpoint boundary
    fills: BTreeMap<u64, usize>,
    reply_to_line: BTreeMap<u64, u64>,
    /// Writeback transactions awaiting controller queue space.
    pending_writebacks: std::collections::VecDeque<(u64, u32)>,
    // state: checkpointed
    prefer_late: bool,
    next_req_id: u64,
    stat_quads: Counter,
    stat_frags_written: Counter,
    stat_blended: Counter,
    stat_busy_cycles: Counter,
}

impl ColorWriteUnit {
    /// Builds one colour write unit.
    pub fn new(
        unit: u8,
        config: RopConfig,
        in_early: PortReceiver<FragQuad>,
        in_late: PortReceiver<FragQuad>,
        stats: &mut attila_sim::StatsRegistry,
    ) -> Self {
        let prefix = format!("ColorWrite{unit}");
        ColorWriteUnit {
            unit,
            config,
            in_early,
            in_late,
            cache: None,
            fills: BTreeMap::new(),
            reply_to_line: BTreeMap::new(),
            pending_writebacks: std::collections::VecDeque::new(),
            prefer_late: false,
            next_req_id: 0,
            stat_quads: stats.counter(&format!("{prefix}.quads")),
            stat_frags_written: stats.counter(&format!("{prefix}.fragments_written")),
            stat_blended: stats.counter(&format!("{prefix}.fragments_blended")),
            stat_busy_cycles: stats.counter(&format!("{prefix}.busy_cycles")),
        }
    }

    /// The memory-controller client id of this unit.
    pub fn client(&self) -> Client {
        Client::ColorWrite(self.unit)
    }

    /// (Re)binds the cache to a colour buffer and fast-clears it.
    pub fn fast_clear(&mut self, mem: &mut MemoryController, base: u64, len: u64, word: u32) {
        // The Command Processor only clears with the pipeline drained, so
        // the rebind never has to wait here.
        let ready = self.rebind_cache(mem, base, len);
        assert!(ready, "fast clear issued with fills in flight");
        self.cache.as_mut().expect("bound").fast_clear(mem.gpu_mem_mut(), word);
    }

    /// Returns `true` when the cache is bound to `(base, len)` and ready.
    /// Rebinding (render-target switch) waits for in-flight fills and
    /// writes the old surface's dirty lines back first.
    fn rebind_cache(&mut self, mem: &mut MemoryController, base: u64, len: u64) -> bool {
        if let Some(c) = &self.cache {
            if c.base() == base && c.len() == len {
                return true;
            }
        }
        if !self.fills.is_empty() {
            return false; // drain outstanding fills of the old surface
        }
        self.flush(mem);
        self.cache = Some(RopCache::new(self.config.cache.into(), "Color", base, len));
        true
    }

    /// Advances the unit one cycle.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised by the box's signals.
    pub fn clock(&mut self, cycle: Cycle, mem: &mut MemoryController) -> Result<(), SimError> {
        self.in_early.try_update(cycle)?;
        self.in_late.try_update(cycle)?;

        while let Some(reply) = mem.pop_reply(self.client()) {
            if let Some(line) = self.reply_to_line.remove(&reply.id) {
                let left = self.fills.get_mut(&line).expect("fill bookkeeping"); // lint:allow(clock-unwrap) reply ids only map to lines with live fill entries
                *left -= 1;
                if *left == 0 {
                    self.fills.remove(&line);
                    if let Some(cache) = &mut self.cache {
                        cache.fill_done(line);
                    }
                }
            }
        }

        // Drain queued writebacks as controller space frees up.
        while let Some(&(addr, size)) = self.pending_writebacks.front() {
            if !mem.can_accept(self.client(), addr) {
                break;
            }
            self.pending_writebacks.pop_front();
            let id = self.next_req_id;
            self.next_req_id += 1;
            mem.submit(MemRequest {
                id,
                client: self.client(),
                addr,
                op: MemOp::TimingWrite { size },
            })
            .expect("can_accept checked"); // lint:allow(clock-unwrap) submit follows the can_accept check above
        }

        let quads_per_cycle = (self.config.frags_per_cycle / 4).max(1);
        let mut did_work = false;
        for _ in 0..quads_per_cycle {
            let first_late = self.prefer_late;
            let mut progressed = false;
            for attempt in 0..2 {
                let late = first_late ^ (attempt == 1);
                if self.try_process_head(cycle, mem, late)? {
                    self.prefer_late = !late;
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                break;
            }
            did_work = true;
        }
        if did_work {
            self.stat_busy_cycles.inc();
        }
        Ok(())
    }

    fn try_process_head(
        &mut self,
        cycle: Cycle,
        mem: &mut MemoryController,
        late: bool,
    ) -> Result<bool, SimError> {
        let (state, qx, qy) = {
            let input = if late { &self.in_late } else { &self.in_early };
            let Some(quad) = input.peek() else { return Ok(false) };
            (std::sync::Arc::clone(&quad.tri.batch.state), quad.x, quad.y)
        };
        let base = state.color_buffer;
        let len = surface_bytes(state.target_width, state.target_height);
        if !self.rebind_cache(mem, base, len) {
            return Ok(false); // old surface still draining
        }
        let line = tile_address(base, state.target_width, qx, qy);

        let cache = self.cache.as_mut().expect("ensured"); // lint:allow(clock-unwrap) rebind_cache returned ready
        match cache.lookup(cycle, line, false) {
            attila_mem::Lookup::Hit => {}
            attila_mem::Lookup::Blocked => return Ok(false),
            attila_mem::Lookup::Miss => {
                self.start_fill(mem, line);
                return Ok(false);
            }
        }

        let input = if late { &mut self.in_late } else { &mut self.in_early };
        let quad = input.try_pop(cycle)?.expect("peeked"); // lint:allow(clock-unwrap) head existence checked via peek above
        self.stat_quads.inc();
        let mut wrote = false;
        for i in 0..4 {
            if !quad.frags[i].alive {
                continue;
            }
            let (x, y) = quad.frag_coords(i);
            let addr = pixel_address(base, state.target_width, x, y);
            let mut stored = [0u8; 4];
            mem.gpu_mem().read(addr, &mut stored);
            let dst = unpack_rgba8(stored);
            let out = blend(&state.blend, quad.frags[i].color, dst);
            let packed = pack_rgba8(out);
            if packed != stored {
                mem.gpu_mem_mut().write(addr, &packed);
                wrote = true;
            }
            self.stat_frags_written.inc();
            if state.blend.enabled {
                self.stat_blended.inc();
            }
        }
        if wrote {
            self.cache.as_mut().expect("ensured").mark_dirty(line); // lint:allow(clock-unwrap) rebind_cache returned ready
        }
        Ok(true)
    }

    fn start_fill(&mut self, mem: &mut MemoryController, line: u64) {
        if self.fills.contains_key(&line) {
            return;
        }
        if mem.free_slots(self.client(), line) < 8 {
            return;
        }
        let client = self.client();
        let compression = self.config.compression;
        let mut next_id = self.next_req_id;
        let mut fill_ids = Vec::new();
        let Some(cache) = self.cache.as_mut() else { return };
        let Ok((fill_bytes, eviction)) = cache.allocate(line) else { return };
        if let Some(ev) = eviction {
            // Colour compression is future work in the paper; when the
            // ablation enables it, the same lossless delta scheme as the
            // Z cache runs over the line's actual RGBA words.
            let compressed = if compression {
                let mut words = [0u32; ZBLOCK_WORDS];
                for (i, w) in words.iter_mut().enumerate() {
                    *w = mem.gpu_mem().read_u32(ev.line_addr + i as u64 * 4);
                }
                Some(compress_z_block(&words).level.bytes() as u32)
            } else {
                None
            };
            let bytes = cache.evict_dirty(ev.line_addr, compressed);
            for (addr, size) in split_transactions(ev.line_addr, bytes as u64) {
                let id = next_id;
                next_id += 1;
                mem.submit(MemRequest { id, client, addr, op: MemOp::TimingWrite { size } })
                    .expect("slots reserved");
            }
        }
        if fill_bytes == 0 {
            cache.fill_done(line);
        } else {
            let mut count = 0;
            for (addr, size) in split_transactions(line, fill_bytes as u64) {
                let id = next_id;
                next_id += 1;
                mem.submit(MemRequest { id, client, addr, op: MemOp::TimingRead { size } })
                    .expect("slots reserved");
                fill_ids.push(id);
                count += 1;
            }
            for id in fill_ids {
                self.reply_to_line.insert(id, line);
            }
            self.fills.insert(line, count);
        }
        self.next_req_id = next_id;
    }

    /// Flushes the colour cache (end of frame), charging writebacks
    /// (compressed when the ablation enables colour compression, matching
    /// the steady-state eviction path).
    pub fn flush(&mut self, mem: &mut MemoryController) {
        let client = self.client();
        let compression = self.config.compression;
        let mut pending: Vec<(u64, u32)> = Vec::new();
        if let Some(cache) = self.cache.as_mut() {
            for ev in cache.flush() {
                let compressed = if compression {
                    let mut words = [0u32; ZBLOCK_WORDS];
                    for (i, w) in words.iter_mut().enumerate() {
                        *w = mem.gpu_mem().read_u32(ev.line_addr + i as u64 * 4);
                    }
                    Some(compress_z_block(&words).level.bytes() as u32)
                } else {
                    None
                };
                let bytes = cache.evict_dirty(ev.line_addr, compressed);
                let mut id = self.next_req_id;
                for (addr, size) in split_transactions(ev.line_addr, bytes as u64) {
                    if mem.can_accept(client, addr)
                        && mem
                            .submit(MemRequest { id, client, addr, op: MemOp::TimingWrite { size } })
                            .is_ok()
                    {
                        id += 1;
                    } else {
                        // Controller full: drained from clock() later so
                        // no writeback traffic is ever dropped.
                        pending.push((addr, size));
                    }
                }
                self.next_req_id = id;
            }
        }
        self.pending_writebacks.extend(pending);
    }

    /// The colour cache, if bound.
    pub fn cache(&self) -> Option<&RopCache> {
        self.cache.as_ref()
    }

    /// Whether work is in flight.
    pub fn busy(&self) -> bool {
        !self.in_early.idle()
            || !self.in_late.idle()
            || !self.fills.is_empty()
            || !self.pending_writebacks.is_empty()
    }

    /// The box's event horizon: busy while cache fills or writebacks are
    /// outstanding, otherwise the earliest arrival across both quad wires
    /// (see [`attila_sim::Horizon`]).
    pub fn work_horizon(&self) -> attila_sim::Horizon {
        if !self.fills.is_empty() || !self.pending_writebacks.is_empty() {
            return attila_sim::Horizon::Busy;
        }
        self.in_early.work_horizon().meet(self.in_late.work_horizon())
    }

    /// The box's declared interface for the architecture verifier.
    pub fn declared_ports(&self) -> Vec<attila_sim::PortDecl> {
        vec![self.in_early.decl(), self.in_late.decl()]
    }

    /// Objects waiting in the box's input queues.
    pub fn queued(&self) -> usize {
        self.in_early.len() + self.in_late.len() + self.pending_writebacks.len()
    }

    /// Fragments written so far.
    pub fn fragments_written(&self) -> u64 {
        self.stat_frags_written.value()
    }

    /// Captures the unit's persistent state for checkpointing. Only valid
    /// at a quiescent point (no fills or writebacks in flight).
    pub fn save_state(&self) -> ColorWriteState {
        ColorWriteState {
            cache: self.cache.as_ref().map(RopCache::save_state),
            prefer_late: self.prefer_late,
            next_req_id: self.next_req_id,
        }
    }

    /// Restores a snapshot taken by [`save_state`](Self::save_state). A
    /// checkpointed cache is rebuilt bound to the checkpointed surface.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointMismatch`] when the cache geometry
    /// differs from the checkpointed one.
    pub fn load_state(&mut self, state: &ColorWriteState) -> Result<(), SimError> {
        self.cache = match &state.cache {
            Some(cs) => {
                let mut cache = RopCache::new(self.config.cache.into(), "Color", cs.base, cs.len);
                cache.load_state(cs)?;
                Some(cache)
            }
            None => None,
        };
        self.prefer_late = state.prefer_late;
        self.next_req_id = state.next_req_id;
        Ok(())
    }
}

/// Plain-data snapshot of a [`ColorWriteUnit`], for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColorWriteState {
    /// The colour cache's full state, if a colour buffer is bound.
    pub cache: Option<attila_mem::RopCacheState>,
    /// Round-robin preference between the early and late input queues.
    pub prefer_late: bool,
    /// Next memory-request id.
    pub next_req_id: u64,
}
