//! The Texture Unit.
//!
//! "The Texture Unit attached to each Fragment (or Unified) Shader
//! processes texture requests for a whole fragment quad. A small Texture
//! Cache exploits the high data locality of mipmapping and bilinear
//! filtering to reduce bandwidth usage. The implemented throughput is one
//! bilinear sample per cycle and one trilinear sample every two cycles."
//! (§2.2)
//!
//! The Section 5 case study detaches the units into a pool whose size is
//! swept from 3 down to 1; requests are distributed round-robin by the
//! Fragment FIFO, which (as the paper notes about its own "not properly
//! optimized" distribution) makes neighbouring quads land on different
//! units and replicates texture lines across their caches.

use std::collections::{BTreeMap, BTreeSet};

use attila_emu::texture::{TexelSource, TextureDesc, TextureEmulator};
use attila_emu::vector::Vec4;
use attila_mem::controller::split_transactions;
use attila_mem::{Cache, Client, Lookup, MemOp, MemRequest, MemoryController, MemoryImage};
use attila_sim::{Counter, Cycle, SimError};

use crate::config::TextureConfig;
use crate::port::{PortReceiver, PortSender};
use crate::types::{QuadTexRequest, QuadTexReply};

/// Adapter exposing the GPU memory image as a texel source.
struct ImageSource<'a>(&'a MemoryImage);

impl TexelSource for ImageSource<'_> {
    fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) {
        self.0.read(addr, buf);
    }
}

/// A request being serviced.
#[derive(Debug)]
struct CurrentRequest {
    reply: QuadTexReply,
    /// Cache lines still to be looked up.
    lines_todo: Vec<u64>,
    /// Lines with fills in flight.
    lines_pending: BTreeSet<u64>,
    /// Earliest cycle the filtering pipeline can deliver (throughput).
    ready_at: Cycle,
}

/// One texture unit of the pool.
#[derive(Debug)]
pub struct TextureUnit {
    unit: u8, // state: derived — unit index fixed at construction
    config: TextureConfig,
    /// Quad requests from the Fragment FIFO.
    pub in_requests: PortReceiver<QuadTexRequest>,
    /// Filtered quad replies back to the Fragment FIFO.
    pub out_replies: PortSender<QuadTexReply>,
    cache: Cache,
    emulator: TextureEmulator, // state: derived — rebuilt from the trace at elaboration
    // state: transient — in-flight request/fill bookkeeping, drained at
    // the quiescent checkpoint boundary
    current: Option<CurrentRequest>,
    fills: BTreeMap<u64, u64>,
    fills_per_line: BTreeMap<u64, usize>,
    // state: checkpointed
    next_req_id: u64,
    stat_requests: Counter,
    stat_bilinear_ops: Counter,
    stat_busy_cycles: Counter,
    stat_bytes_read: Counter,
}

impl TextureUnit {
    /// Builds one texture unit.
    pub fn new(
        unit: u8,
        config: TextureConfig,
        in_requests: PortReceiver<QuadTexRequest>,
        out_replies: PortSender<QuadTexReply>,
        stats: &mut attila_sim::StatsRegistry,
    ) -> Self {
        let prefix = format!("Texture{unit}");
        TextureUnit {
            unit,
            cache: Cache::new(config.cache.into(), "Texture"),
            config,
            in_requests,
            out_replies,
            emulator: TextureEmulator::new(),
            current: None,
            fills: BTreeMap::new(),
            fills_per_line: BTreeMap::new(),
            next_req_id: 0,
            stat_requests: stats.counter(&format!("{prefix}.requests")),
            stat_bilinear_ops: stats.counter(&format!("{prefix}.bilinear_samples")),
            stat_busy_cycles: stats.counter(&format!("{prefix}.busy_cycles")),
            stat_bytes_read: stats.counter(&format!("{prefix}.bytes_read")),
        }
    }

    /// The memory-controller client id of this unit.
    pub fn client(&self) -> Client {
        Client::Texture(self.unit)
    }

    /// The texture cache (hit-rate statistics for Figure 8).
    pub fn cache(&self) -> &Cache {
        &self.cache
    }

    /// Invalidates the texture cache (between frames / texture uploads).
    pub fn flush_cache(&mut self) {
        // Texture data is read-only: no dirty lines to write back.
        let _ = self.cache.flush();
    }

    /// Advances the unit one cycle.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised by the box's signals.
    pub fn clock(&mut self, cycle: Cycle, mem: &mut MemoryController) -> Result<(), SimError> {
        self.in_requests.try_update(cycle)?;
        self.out_replies.try_update(cycle)?;

        // Fill completions.
        while let Some(reply) = mem.pop_reply(self.client()) {
            if let Some(line) = self.fills.remove(&reply.id) {
                let left = self.fills_per_line.get_mut(&line).expect("bookkeeping"); // lint:allow(clock-unwrap) reply ids only map to lines with live fill entries
                *left -= 1;
                if *left == 0 {
                    self.fills_per_line.remove(&line);
                    self.cache.fill_done(line);
                    if let Some(cur) = &mut self.current {
                        cur.lines_pending.remove(&line);
                    }
                }
            }
        }

        // Accept a new request.
        if self.current.is_none() {
            if let Some(req) = self.in_requests.try_pop(cycle)? {
                self.stat_requests.inc();
                self.current = Some(self.start_request(cycle, mem, req));
            }
        }

        // Progress the current request: resolve outstanding cache lines.
        let mut done = false;
        if let Some(cur) = &mut self.current {
            self.stat_busy_cycles.inc();
            // Resolve outstanding lines in place: `retain` keeps the
            // still-blocked ones without building a fresh vector every
            // cycle the request waits.
            let cache = &mut self.cache;
            let fills = &mut self.fills;
            let fills_per_line = &mut self.fills_per_line;
            let next_req_id = &mut self.next_req_id;
            let stat_bytes_read = &self.stat_bytes_read;
            let unit = self.unit;
            let lines_pending = &mut cur.lines_pending;
            cur.lines_todo.retain(|&line| {
                match cache.lookup(cycle, line, false) {
                    Lookup::Hit => false,
                    Lookup::Blocked => true,
                    Lookup::Miss => {
                        let line_bytes = cache.config().line_bytes;
                        // Reserve controller slots before allocating the
                        // frame so a full queue never leaves a pending
                        // line without a fill in flight.
                        if mem.free_slots(Client::Texture(unit), line)
                            < line_bytes.div_ceil(64) as usize
                        {
                            return true;
                        }
                        match cache.allocate(line) {
                            Ok(_evict) => {
                                // Texture lines are never dirty;
                                // evictions are silent. Issue the fill.
                                let mut count = 0;
                                for (addr, size) in
                                    split_transactions(line, line_bytes as u64)
                                {
                                    let id = *next_req_id;
                                    *next_req_id += 1;
                                    fills.insert(id, line);
                                    mem.submit(MemRequest {
                                        id,
                                        client: Client::Texture(unit),
                                        addr,
                                        op: MemOp::TimingRead { size },
                                    })
                                    .expect("slots reserved"); // lint:allow(clock-unwrap) free_slots reserved queue space above
                                    count += 1;
                                }
                                fills_per_line.insert(line, count);
                                stat_bytes_read.add(line_bytes as u64);
                                lines_pending.insert(line);
                                false
                            }
                            Err(()) => true,
                        }
                    }
                }
            });
            if cur.lines_todo.is_empty()
                && cur.lines_pending.is_empty()
                && cycle >= cur.ready_at
                && self.out_replies.can_send(cycle)
            {
                done = true;
            }
        }
        if done {
            let cur = self.current.take().expect("checked"); // lint:allow(clock-unwrap) done is only set while a request is current
            self.out_replies.try_send(cycle, cur.reply)?;
        }
        Ok(())
    }

    /// Functionally samples the quad and computes its timing footprint.
    fn start_request(
        &mut self,
        cycle: Cycle,
        mem: &MemoryController,
        req: QuadTexRequest,
    ) -> CurrentRequest {
        let desc: Option<TextureDesc> = req
            .batch
            .state
            .textures
            .get(req.sampler as usize)
            .and_then(|d| d.clone());
        let Some(mut desc) = desc else {
            // Unbound sampler: sample as opaque black, zero cost.
            return CurrentRequest {
                reply: QuadTexReply {
                    id: req.id,
                    shader_unit: req.shader_unit,
                    texels: [Vec4::new(0.0, 0.0, 0.0, 1.0); 4],
                },
                lines_todo: Vec::new(),
                lines_pending: BTreeSet::new(),
                ready_at: cycle + 1,
            };
        };
        desc.max_aniso = desc.max_aniso.min(self.config.max_aniso);
        let mut source = ImageSource(mem.gpu_mem());
        let results =
            self.emulator.sample_quad(&desc, &mut source, &req.coords, req.lod_bias, req.projective);
        let mut texels = [Vec4::ZERO; 4];
        let mut lines = BTreeSet::new();
        let mut ops = 0u32;
        for (i, r) in results.iter().enumerate() {
            texels[i] = r.value;
            ops += r.bilinear_ops;
            for (addr, len) in &r.accesses {
                let first = self.cache.line_addr(*addr);
                let last = self.cache.line_addr(addr + *len as u64 - 1);
                lines.insert(first);
                lines.insert(last);
            }
        }
        self.stat_bilinear_ops.add(ops as u64);
        let cost = (ops / self.config.bilinears_per_cycle.max(1)).max(1) as u64;
        // The BTreeSet iterates in ascending address order, so fills are
        // issued deterministically — cache allocation (and therefore
        // cycle counts) must not vary run to run.
        let lines_todo: Vec<u64> = lines.into_iter().collect();
        CurrentRequest {
            reply: QuadTexReply { id: req.id, shader_unit: req.shader_unit, texels },
            lines_todo,
            lines_pending: BTreeSet::new(),
            ready_at: cycle + cost,
        }
    }

    /// Whether work is in flight.
    pub fn busy(&self) -> bool {
        self.current.is_some() || !self.in_requests.idle() || !self.fills.is_empty()
    }

    /// The box's event horizon: busy while a request is being served or
    /// cache fills are outstanding, the wire's next arrival while requests
    /// are in flight, idle otherwise (see [`attila_sim::Horizon`]).
    pub fn work_horizon(&self) -> attila_sim::Horizon {
        if self.current.is_some() || !self.fills.is_empty() {
            return attila_sim::Horizon::Busy;
        }
        self.in_requests.work_horizon()
    }

    /// The box's declared interface for the architecture verifier.
    pub fn declared_ports(&self) -> Vec<attila_sim::PortDecl> {
        vec![self.in_requests.decl(), self.out_replies.decl()]
    }

    /// Objects waiting in the box's input queues.
    pub fn queued(&self) -> usize {
        self.in_requests.len() + usize::from(self.current.is_some())
    }

    /// Quad requests serviced so far.
    pub fn requests_serviced(&self) -> u64 {
        self.stat_requests.value()
    }

    /// Cycles this unit was occupied (Figure 9's TU utilization).
    pub fn busy_cycles(&self) -> u64 {
        self.stat_busy_cycles.value()
    }

    /// Bytes fetched from memory for texture fills (Figure 8's texture
    /// bandwidth).
    pub fn bytes_read(&self) -> u64 {
        self.stat_bytes_read.value()
    }

    /// Captures the unit's persistent state for checkpointing. Only valid
    /// at a quiescent point (no request in service, no outstanding fills).
    pub fn save_state(&self) -> TextureUnitState {
        TextureUnitState { cache: self.cache.save_state(), next_req_id: self.next_req_id }
    }

    /// Restores a snapshot taken by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns [`attila_sim::SimError::CheckpointMismatch`] when the cache
    /// geometry differs from the checkpointed one.
    pub fn load_state(&mut self, state: &TextureUnitState) -> Result<(), attila_sim::SimError> {
        self.cache.load_state(&state.cache)?;
        self.next_req_id = state.next_req_id;
        Ok(())
    }
}

/// Plain-data snapshot of a [`TextureUnit`], for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextureUnitState {
    /// The texture cache's tag/LRU/counter state.
    pub cache: attila_mem::CacheState,
    /// Next memory-request id.
    pub next_req_id: u64,
}
