//! The Streamer: vertex and index fetch, format conversion, and the
//! post-shading vertex cache.
//!
//! Per the paper (§2.2): "The Streamer unit task is to request input
//! vertex attribute data to the Memory Controller, convert the data to the
//! internal format (4 component 32 bit float point vectors) and issue
//! vertices to a shader unit. A vertex post shading cache, storing indexed
//! vertices already shaded, enables reusing the vertex shader results
//! for vertices in adjacent triangles."
//!
//! The original implements the Streamer as four boxes (Fetch, Loader,
//! Commit and the controller); here one box contains those stages, with
//! the commit reorder buffer making shader-completion order irrelevant.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use attila_emu::vector::Vec4;
use attila_mem::{Client, MemOp, MemRequest, MemoryController};
use attila_sim::{Counter, Cycle, DynamicObject, ObjectIdGen, SimError};

use crate::config::StreamerConfig;
use crate::port::{PortReceiver, PortSender};
use crate::types::{Batch, ShadedVertex, VertexOutputs, VertexWork};

/// In-flight vertex whose attribute fetches are outstanding.
#[derive(Debug)]
struct PendingVertex {
    batch: Arc<Batch>,
    seq: u32,
    index: u32,
    inputs: Vec<Vec4>,
    replies_left: usize,
}

/// Per-batch commit state: reorder buffer + progress.
#[derive(Debug)]
struct BatchCommit {
    batch_id: u64,
    reorder: BTreeMap<u32, ShadedVertex>,
    next_seq: u32,
    total: u32,
}

/// The batch currently being fetched.
#[derive(Debug)]
struct ActiveBatch {
    batch: Arc<Batch>,
    next_seq: u32,
    total: u32,
}

/// Plain-data snapshot of the Streamer's persistent state, for
/// checkpointing. The post-shading vertex cache is deliberately *not*
/// captured: it only serves lookups for the batch named by its tag, batch
/// ids never repeat within a run, and at a quiescent point no batch is
/// active — so a cold cache after restore is behaviourally identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamerState {
    /// Recently fetched 64-byte index-buffer chunk addresses, oldest first.
    pub index_chunks: Vec<u64>,
    /// Next memory-request id.
    pub next_req_id: u64,
    /// Dynamic-object ids issued so far.
    pub ids_issued: u64,
}

/// The Streamer box.
#[derive(Debug)]
pub struct Streamer {
    config: StreamerConfig,
    /// Draw batches from the Command Processor.
    pub in_draws: PortReceiver<Arc<Batch>>,
    /// Unshaded vertices to the shader scheduler.
    pub out_work: PortSender<VertexWork>,
    /// Shaded vertices back from the shader pool (Streamer Commit).
    pub in_shaded: PortReceiver<ShadedVertex>,
    /// In-order shaded vertices to Primitive Assembly.
    pub out_assembled: PortSender<ShadedVertex>,

    // state: transient — per-batch fetch/shade bookkeeping below is
    // drained at the quiescent checkpoint boundary (no active batch,
    // no outstanding memory or shader work)
    active: Option<ActiveBatch>,
    commits: VecDeque<BatchCommit>,
    ready_to_shade: VecDeque<VertexWork>,
    pending: BTreeMap<u64, usize>,
    pending_slots: Vec<Option<PendingVertex>>,
    outstanding_mem: usize,
    /// Post-shading vertex cache for the batch being fetched
    /// (index → outputs), LRU-evicted.
    vcache: VecDeque<(u32, Arc<VertexOutputs>)>,
    vcache_batch: u64,
    // state: checkpointed
    /// Recently fetched 64-byte index-buffer chunks.
    index_chunks: VecDeque<u64>,
    index_chunk_pending: Option<(u64, u64)>, // state: transient — in-flight chunk fetch, drained at the boundary
    next_req_id: u64,
    ids: ObjectIdGen,

    // Statistics.
    stat_vertices: Counter,
    stat_vcache_hits: Counter,
    stat_shaded: Counter,
}

impl Streamer {
    /// Builds the Streamer around its four ports.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: StreamerConfig,
        in_draws: PortReceiver<Arc<Batch>>,
        out_work: PortSender<VertexWork>,
        in_shaded: PortReceiver<ShadedVertex>,
        out_assembled: PortSender<ShadedVertex>,
        stats: &mut attila_sim::StatsRegistry,
    ) -> Self {
        Streamer {
            config,
            in_draws,
            out_work,
            in_shaded,
            out_assembled,
            active: None,
            commits: VecDeque::new(),
            ready_to_shade: VecDeque::new(),
            pending: BTreeMap::new(),
            pending_slots: Vec::new(),
            outstanding_mem: 0,
            vcache: VecDeque::new(),
            vcache_batch: u64::MAX,
            index_chunks: VecDeque::new(),
            index_chunk_pending: None,
            next_req_id: 0,
            ids: ObjectIdGen::new(),
            stat_vertices: stats.counter("Streamer.vertices"),
            stat_vcache_hits: stats.counter("Streamer.vertex_cache_hits"),
            stat_shaded: stats.counter("Streamer.shaded_received"),
        }
    }

    fn vcache_lookup(&mut self, batch_id: u64, index: u32) -> Option<Arc<VertexOutputs>> {
        if self.vcache_batch != batch_id {
            return None;
        }
        let pos = self.vcache.iter().position(|(i, _)| *i == index)?;
        let entry = self.vcache.remove(pos).expect("position valid");
        let out = Arc::clone(&entry.1);
        self.vcache.push_back(entry);
        Some(out)
    }

    fn vcache_insert(&mut self, batch_id: u64, index: u32, outputs: Arc<VertexOutputs>) {
        if self.vcache_batch != batch_id {
            self.vcache.clear();
            self.vcache_batch = batch_id;
        }
        if self.vcache.iter().any(|(i, _)| *i == index) {
            return;
        }
        if self.vcache.len() >= self.config.vertex_cache_entries {
            self.vcache.pop_front();
        }
        self.vcache.push_back((index, outputs));
    }

    /// Advances the Streamer one cycle.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised by the box's signals.
    pub fn clock(&mut self, cycle: Cycle, mem: &mut MemoryController) -> Result<(), SimError> {
        self.in_draws.try_update(cycle)?;
        self.in_shaded.try_update(cycle)?;
        self.out_work.try_update(cycle)?;
        self.out_assembled.try_update(cycle)?;

        // 1. Collect memory replies.
        while let Some(reply) = mem.pop_reply(Client::Streamer) {
            self.outstanding_mem -= 1;
            if let Some((chunk, id)) = self.index_chunk_pending {
                if id == reply.id {
                    self.index_chunks.push_back(chunk);
                    if self.index_chunks.len() > 4 {
                        self.index_chunks.pop_front();
                    }
                    self.index_chunk_pending = None;
                    continue;
                }
            }
            if let Some(slot) = self.pending.remove(&reply.id) {
                let done = {
                    let pv = self.pending_slots[slot].as_mut().expect("slot occupied"); // lint:allow(clock-unwrap) pending maps only to occupied slots
                    pv.replies_left -= 1;
                    pv.replies_left == 0
                };
                if done {
                    let pv = self.pending_slots[slot].take().expect("slot occupied"); // lint:allow(clock-unwrap) pending maps only to occupied slots
                    self.ready_to_shade.push_back(VertexWork {
                        obj: DynamicObject::new(self.ids.next_id()),
                        batch: pv.batch,
                        seq: pv.seq,
                        index: pv.index,
                        inputs: pv.inputs,
                    });
                }
            }
        }

        // 2. Issue fetched vertices to the shader pool.
        while !self.ready_to_shade.is_empty() && self.out_work.can_send(cycle) {
            let v = self.ready_to_shade.pop_front().expect("non-empty"); // lint:allow(clock-unwrap) emptiness checked above
            self.out_work.try_send(cycle, v)?;
        }

        // 3. Start new vertices.
        for _ in 0..self.config.indices_per_cycle {
            if self.active.is_none() {
                if let Some(batch) = self.in_draws.try_pop(cycle)? {
                    let total = batch.draw.vertex_count;
                    self.commits.push_back(BatchCommit {
                        batch_id: batch.id,
                        reorder: BTreeMap::new(),
                        next_seq: 0,
                        total,
                    });
                    self.active = Some(ActiveBatch { batch, next_seq: 0, total });
                }
            }
            let Some(active) = &mut self.active else { break };
            if active.next_seq >= active.total {
                self.active = None;
                continue;
            }
            let seq = active.next_seq;
            let batch = Arc::clone(&active.batch);

            // Resolve the vertex index (with index-chunk fetch timing).
            let index = match batch.draw.index_buffer {
                None => seq,
                Some(ib) => {
                    let addr = ib + seq as u64 * 4;
                    let chunk = addr & !63;
                    if !self.index_chunks.contains(&chunk) {
                        if self.index_chunk_pending.is_none()
                            && self.outstanding_mem < self.config.max_memory_requests
                            && mem.can_accept(Client::Streamer, chunk)
                        {
                            let id = self.alloc_id();
                            self.index_chunk_pending = Some((chunk, id));
                            mem.submit(MemRequest {
                                id,
                                client: Client::Streamer,
                                addr: chunk,
                                op: MemOp::Read { size: 64 },
                            })
                            .expect("can_accept checked"); // lint:allow(clock-unwrap) submit follows the can_accept check above
                            self.outstanding_mem += 1;
                        }
                        break; // stall until the chunk arrives
                    }
                    mem.gpu_mem().read_u32(addr)
                }
            };

            // Post-shading vertex cache.
            if let Some(outputs) = self.vcache_lookup(batch.id, index) {
                self.stat_vcache_hits.inc();
                self.stat_vertices.inc();
                let sv = ShadedVertex {
                    obj: DynamicObject::new(self.ids.next_id()),
                    batch: Arc::clone(&batch),
                    seq,
                    index,
                    outputs,
                };
                self.insert_committed(sv);
                if let Some(active) = &mut self.active {
                    active.next_seq += 1;
                }
                continue;
            }

            // Fetch attributes.
            let mut pieces: Vec<(u64, u32)> = Vec::new();
            let mut inputs = Vec::new();
            for binding in batch.state.attributes.iter() {
                let Some(b) = binding else {
                    inputs.push(Vec4::ZERO);
                    continue;
                };
                let addr = b.element_address(index);
                pieces.extend(attila_mem::controller::split_transactions(
                    addr,
                    b.element_bytes() as u64,
                ));
                // Functional conversion to the internal 4x f32 format.
                let mut v = Vec4::new(0.0, 0.0, 0.0, b.default_w);
                for c in 0..b.components as usize {
                    let mut bytes = [0u8; 4];
                    mem.gpu_mem().read(addr + c as u64 * 4, &mut bytes);
                    v[c] = f32::from_le_bytes(bytes);
                }
                inputs.push(v);
            }
            if self.outstanding_mem + pieces.len() > self.config.max_memory_requests
                || pieces.iter().any(|(a, _)| !mem.can_accept(Client::Streamer, *a))
            {
                break; // stall: too many outstanding fetches
            }
            let slot = self
                .pending_slots
                .iter()
                .position(|s| s.is_none())
                .unwrap_or_else(|| {
                    self.pending_slots.push(None);
                    self.pending_slots.len() - 1
                });
            if pieces.is_empty() {
                // No attributes bound: ready immediately.
                self.ready_to_shade.push_back(VertexWork {
                    obj: DynamicObject::new(self.ids.next_id()),
                    batch: Arc::clone(&batch),
                    seq,
                    index,
                    inputs,
                });
            } else {
                let count = pieces.len();
                for (addr, size) in pieces {
                    let id = self.alloc_id();
                    self.pending.insert(id, slot);
                    mem.submit(MemRequest {
                        id,
                        client: Client::Streamer,
                        addr,
                        op: MemOp::Read { size },
                    })
                    .expect("can_accept checked"); // lint:allow(clock-unwrap) submit follows the can_accept check above
                    self.outstanding_mem += 1;
                }
                self.pending_slots[slot] = Some(PendingVertex {
                    batch,
                    seq,
                    index,
                    inputs,
                    replies_left: count,
                });
            }
            self.stat_vertices.inc();
            if let Some(active) = &mut self.active {
                active.next_seq += 1;
            }
        }

        // 4. Receive shaded vertices (Streamer Commit).
        while let Some(sv) = self.in_shaded.try_pop(cycle)? {
            self.stat_shaded.inc();
            self.vcache_insert(sv.batch.id, sv.index, Arc::clone(&sv.outputs));
            self.insert_committed(sv);
        }

        // 5. Commit in order to Primitive Assembly (1 vertex/cycle,
        //    Table 1).
        while self.out_assembled.can_send(cycle) {
            let Some(head) = self.commits.front_mut() else { break };
            if head.next_seq >= head.total {
                self.commits.pop_front();
                continue;
            }
            let next = head.next_seq;
            let Some(sv) = head.reorder.remove(&next) else { break };
            head.next_seq += 1;
            self.out_assembled.try_send(cycle, sv)?;
        }
        Ok(())
    }

    fn insert_committed(&mut self, sv: ShadedVertex) {
        let batch_id = sv.batch.id;
        let commit = self
            .commits
            .iter_mut()
            .find(|c| c.batch_id == batch_id)
            .expect("shaded vertex for unknown batch");
        commit.reorder.insert(sv.seq, sv);
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.next_req_id;
        self.next_req_id += 1;
        id
    }

    /// Whether the Streamer still has work in flight.
    pub fn busy(&self) -> bool {
        self.active.is_some()
            || !self.commits.is_empty()
            || !self.ready_to_shade.is_empty()
            || !self.pending.is_empty()
            || !self.in_draws.idle()
            || !self.in_shaded.idle()
    }

    /// The box's event horizon: busy while a draw is being streamed or
    /// vertices sit in the fetch/shade/commit buffers, otherwise the
    /// earliest arrival across the draw wire and the shaded-vertex wire
    /// (see [`attila_sim::Horizon`]).
    pub fn work_horizon(&self) -> attila_sim::Horizon {
        if self.active.is_some()
            || !self.commits.is_empty()
            || !self.ready_to_shade.is_empty()
            || !self.pending.is_empty()
        {
            return attila_sim::Horizon::Busy;
        }
        self.in_draws.work_horizon().meet(self.in_shaded.work_horizon())
    }

    /// The box's declared interface for the architecture verifier.
    pub fn declared_ports(&self) -> Vec<attila_sim::PortDecl> {
        vec![
            self.in_draws.decl(),
            self.out_work.decl(),
            self.in_shaded.decl(),
            self.out_assembled.decl(),
        ]
    }

    /// Objects waiting in the box's input queues and staging buffers.
    pub fn queued(&self) -> usize {
        self.in_draws.len()
            + self.in_shaded.len()
            + self.ready_to_shade.len()
            + self.pending.len()
    }

    /// Captures the Streamer's persistent state for checkpointing. Only
    /// valid at a quiescent point (no active batch, empty fetch/commit
    /// buffers, no outstanding memory requests).
    pub fn save_state(&self) -> StreamerState {
        StreamerState {
            index_chunks: self.index_chunks.iter().copied().collect(),
            next_req_id: self.next_req_id,
            ids_issued: self.ids.issued(),
        }
    }

    /// Restores a snapshot taken by [`save_state`](Self::save_state).
    pub fn load_state(&mut self, state: &StreamerState) {
        self.index_chunks = state.index_chunks.iter().copied().collect();
        self.next_req_id = state.next_req_id;
        self.ids.restore_issued(state.ids_issued);
    }

    /// Vertices issued so far.
    pub fn vertices_issued(&self) -> u64 {
        self.stat_vertices.value()
    }

    /// Post-shading vertex cache hits.
    pub fn vertex_cache_hits(&self) -> u64 {
        self.stat_vcache_hits.value()
    }
}
