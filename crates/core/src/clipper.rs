//! The Clipper box: trivial frustum rejection (paper §2.2).
//!
//! Rejected triangles leave the pipeline here; everything else — including
//! partially visible triangles — flows unclipped to Triangle Setup, whose
//! 2D homogeneous rasterization handles them.

use attila_emu::ClipperEmulator;
use attila_sim::{Counter, Cycle, SimError};

use crate::port::{PortReceiver, PortSender};
use crate::types::TriangleWork;

/// The Clipper box.
#[derive(Debug)]
pub struct Clipper {
    /// Triangles from Primitive Assembly.
    pub in_tris: PortReceiver<TriangleWork>,
    /// Surviving triangles to Triangle Setup.
    pub out_tris: PortSender<TriangleWork>,
    emulator: ClipperEmulator,
    stat_in: Counter,
    stat_rejected: Counter,
}

impl Clipper {
    /// Builds the box around its ports.
    pub fn new(
        in_tris: PortReceiver<TriangleWork>,
        out_tris: PortSender<TriangleWork>,
        stats: &mut attila_sim::StatsRegistry,
    ) -> Self {
        Clipper {
            in_tris,
            out_tris,
            emulator: ClipperEmulator::new(),
            stat_in: stats.counter("Clipper.triangles"),
            stat_rejected: stats.counter("Clipper.trivially_rejected"),
        }
    }

    /// Advances the box one cycle (1 triangle per cycle, Table 1).
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised by the box's signals.
    pub fn clock(&mut self, cycle: Cycle) -> Result<(), SimError> {
        self.in_tris.try_update(cycle)?;
        self.out_tris.try_update(cycle)?;
        if !self.out_tris.can_send(cycle) {
            return Ok(());
        }
        let Some(tri) = self.in_tris.try_pop(cycle)? else { return Ok(()) };
        self.stat_in.inc();
        let positions = [tri.verts[0][0], tri.verts[1][0], tri.verts[2][0]];
        if self.emulator.trivially_rejected(&positions) {
            self.stat_rejected.inc();
            return Ok(());
        }
        self.out_tris.try_send(cycle, tri)
    }

    /// Whether work is in flight.
    pub fn busy(&self) -> bool {
        !self.in_tris.idle()
    }

    /// The box's event horizon: busy while queued triangles await the
    /// trivial-reject test, the wire's next arrival while triangles are in
    /// flight, idle otherwise (see [`attila_sim::Horizon`]).
    pub fn work_horizon(&self) -> attila_sim::Horizon {
        self.in_tris.work_horizon()
    }

    /// The box's declared interface for the architecture verifier.
    pub fn declared_ports(&self) -> Vec<attila_sim::PortDecl> {
        vec![self.in_tris.decl(), self.out_tris.decl()]
    }

    /// Objects waiting in the box's input queues.
    pub fn queued(&self) -> usize {
        self.in_tris.len()
    }

    /// Triangles trivially rejected so far.
    pub fn rejected(&self) -> u64 {
        self.stat_rejected.value()
    }
}
