//! The Clipper box: trivial frustum rejection (paper §2.2).
//!
//! Rejected triangles leave the pipeline here; everything else — including
//! partially visible triangles — flows unclipped to Triangle Setup, whose
//! 2D homogeneous rasterization handles them.

use attila_emu::ClipperEmulator;
use attila_sim::{Counter, Cycle};

use crate::port::{PortReceiver, PortSender};
use crate::types::TriangleWork;

/// The Clipper box.
#[derive(Debug)]
pub struct Clipper {
    /// Triangles from Primitive Assembly.
    pub in_tris: PortReceiver<TriangleWork>,
    /// Surviving triangles to Triangle Setup.
    pub out_tris: PortSender<TriangleWork>,
    emulator: ClipperEmulator,
    stat_in: Counter,
    stat_rejected: Counter,
}

impl Clipper {
    /// Builds the box around its ports.
    pub fn new(
        in_tris: PortReceiver<TriangleWork>,
        out_tris: PortSender<TriangleWork>,
        stats: &mut attila_sim::StatsRegistry,
    ) -> Self {
        Clipper {
            in_tris,
            out_tris,
            emulator: ClipperEmulator::new(),
            stat_in: stats.counter("Clipper.triangles"),
            stat_rejected: stats.counter("Clipper.trivially_rejected"),
        }
    }

    /// Advances the box one cycle (1 triangle per cycle, Table 1).
    pub fn clock(&mut self, cycle: Cycle) {
        self.in_tris.update(cycle);
        self.out_tris.update(cycle);
        if !self.out_tris.can_send(cycle) {
            return;
        }
        let Some(tri) = self.in_tris.pop(cycle) else { return };
        self.stat_in.inc();
        let positions = [tri.verts[0][0], tri.verts[1][0], tri.verts[2][0]];
        if self.emulator.trivially_rejected(&positions) {
            self.stat_rejected.inc();
            return;
        }
        self.out_tris.send(cycle, tri);
    }

    /// Whether work is in flight.
    pub fn busy(&self) -> bool {
        !self.in_tris.idle()
    }

    /// Triangles trivially rejected so far.
    pub fn rejected(&self) -> u64 {
        self.stat_rejected.value()
    }
}
