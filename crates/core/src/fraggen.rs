//! The Fragment Generator: triangle traversal and fragment creation.
//!
//! "The Fragment Generator traverses the triangle area projected in the
//! viewport and iteratively generates fragments" with attributes: 2D
//! coordinate, the three edge equation values, a cull flag and the
//! fragment depth (§2.2). Up to three levels of tiling are supported; the
//! second and third levels are 8×8 fragments in the current
//! implementation, and the generator emits up to two 8×8 tiles per cycle
//! (Table 1: 2×64 fragments).

use attila_emu::raster::{covered_tiles, gen_fragment, RasterFragment};
use attila_sim::{Counter, Cycle, DynamicObject, ObjectIdGen, SimError};

use crate::config::FragGenConfig;
use crate::port::{PortReceiver, PortSender};
use crate::types::{FragTile, SetupTriWork};

/// An in-flight traversal: the triangle, its tile worklist, and the index
/// of the next tile to emit.
type ActiveTraversal = (SetupTriWork, Vec<(u32, u32)>, usize);

/// The Fragment Generator box.
#[derive(Debug)]
pub struct FragmentGenerator {
    config: FragGenConfig,
    /// Set-up triangles from Triangle Setup.
    pub in_tris: PortReceiver<SetupTriWork>,
    /// Generated 8×8 fragment tiles to Hierarchical Z.
    pub out_tiles: PortSender<FragTile>,
    /// The triangle being traversed and its remaining tiles.
    current: Option<ActiveTraversal>,
    ids: ObjectIdGen,
    stat_tiles: Counter,
    stat_fragments: Counter,
    stat_empty_tiles: Counter,
}

impl FragmentGenerator {
    /// Builds the box around its ports.
    pub fn new(
        config: FragGenConfig,
        in_tris: PortReceiver<SetupTriWork>,
        out_tiles: PortSender<FragTile>,
        stats: &mut attila_sim::StatsRegistry,
    ) -> Self {
        FragmentGenerator {
            config,
            in_tris,
            out_tiles,
            current: None,
            ids: ObjectIdGen::new(),
            stat_tiles: stats.counter("FragGen.tiles"),
            stat_fragments: stats.counter("FragGen.fragments"),
            stat_empty_tiles: stats.counter("FragGen.empty_tiles"),
        }
    }

    /// Advances the box one cycle: emits up to `tiles_per_cycle` tiles.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised by the box's signals.
    pub fn clock(&mut self, cycle: Cycle) -> Result<(), SimError> {
        self.in_tris.try_update(cycle)?;
        self.out_tiles.try_update(cycle)?;

        for _ in 0..self.config.tiles_per_cycle {
            if self.current.is_none() {
                let Some(tri) = self.in_tris.try_pop(cycle)? else { break };
                let tiles = covered_tiles(
                    &tri.data.setup,
                    self.config.tile_size,
                    self.config.traversal.into(),
                );
                self.current = Some((tri, tiles, 0));
            }
            if !self.out_tiles.can_send(cycle) {
                break;
            }
            let Some((tri, tiles, next)) = &mut self.current else { break };
            if *next >= tiles.len() {
                self.current = None;
                continue;
            }
            let (tx, ty) = tiles[*next];
            let is_last = *next + 1 == tiles.len();
            *next += 1;

            // Generate the tile's fragments (cull flag = outside triangle
            // or outside scissor/viewport).
            let state = &tri.data.batch.state;
            let vp = state.viewport;
            let size = self.config.tile_size;
            let mut frags: Vec<RasterFragment> = Vec::with_capacity((size * size) as usize);
            let mut min_depth = f32::MAX;
            let mut any_alive = false;
            for dy in 0..size {
                for dx in 0..size {
                    let x = tx + dx;
                    let y = ty + dy;
                    let mut f = gen_fragment(&tri.data.setup, x, y);
                    let in_viewport =
                        x >= vp.x && x < vp.x + vp.width && y >= vp.y && y < vp.y + vp.height;
                    if !in_viewport || !state.scissor.contains(x, y) {
                        f.culled = true;
                    }
                    // Depth-range cull: with trivial-rejection-only
                    // clipping, fragments outside [0,1] window depth are
                    // dropped here.
                    if !(0.0..=1.0).contains(&f.depth) {
                        f.culled = true;
                    }
                    if !f.culled {
                        min_depth = min_depth.min(f.depth);
                        any_alive = true;
                        self.stat_fragments.inc();
                    }
                    frags.push(f);
                }
            }
            if !any_alive {
                self.stat_empty_tiles.inc();
                if is_last {
                    self.current = None;
                }
                continue;
            }
            self.stat_tiles.inc();
            self.out_tiles.try_send(
                cycle,
                FragTile {
                    obj: DynamicObject::child_of(self.ids.next_id(), &tri.obj),
                    tri: std::sync::Arc::clone(&tri.data),
                    x: tx,
                    y: ty,
                    frags,
                    min_depth,
                },
            )?;
            if is_last {
                self.current = None;
            }
        }
        Ok(())
    }

    /// Whether work is in flight.
    pub fn busy(&self) -> bool {
        self.current.is_some() || !self.in_tris.idle()
    }

    /// The box's event horizon: busy while a traversal is active, the
    /// wire's next arrival while triangles are in flight, idle otherwise
    /// (see [`attila_sim::Horizon`]).
    pub fn work_horizon(&self) -> attila_sim::Horizon {
        if self.current.is_some() {
            return attila_sim::Horizon::Busy;
        }
        self.in_tris.work_horizon()
    }

    /// The box's declared interface for the architecture verifier.
    pub fn declared_ports(&self) -> Vec<attila_sim::PortDecl> {
        vec![self.in_tris.decl(), self.out_tiles.decl()]
    }

    /// Objects waiting in the box's input queues.
    pub fn queued(&self) -> usize {
        self.in_tris.len() + usize::from(self.current.is_some())
    }

    /// Covered fragments generated so far.
    pub fn fragments_generated(&self) -> u64 {
        self.stat_fragments.value()
    }

    /// Dynamic-object ids issued so far (the box's whole persistent state:
    /// `current` is `None` at any quiescent point).
    pub fn ids_issued(&self) -> u64 {
        self.ids.issued()
    }

    /// Restores the dynamic-object id counter from a checkpoint.
    pub fn restore_ids(&mut self, issued: u64) {
        self.ids.restore_issued(issued);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::{DrawCall, Primitive};
    use crate::config::GpuConfig;
    use crate::port::unbound_port;
    use crate::state::RenderState;
    use crate::types::{Batch, TriangleData};
    use attila_emu::isa::limits;
    use attila_emu::raster::{setup_triangle, Viewport};
    use attila_emu::vector::Vec4;
    use attila_sim::StatsRegistry;
    use std::sync::Arc;

    fn make_work(clip: [Vec4; 3], vp: Viewport) -> SetupTriWork {
        let state = RenderState { viewport: vp, ..Default::default() };
        let batch = Arc::new(Batch {
            id: 0,
            state: Arc::new(state),
            draw: DrawCall {
                primitive: Primitive::Triangles,
                vertex_count: 3,
                index_buffer: None,
            },
        });
        let setup = setup_triangle(&clip, vp).unwrap();
        SetupTriWork {
            obj: DynamicObject::new(0),
            data: Arc::new(TriangleData {
                batch,
                setup,
                outputs: [
                    Arc::new([Vec4::ZERO; limits::OUTPUTS]),
                    Arc::new([Vec4::ZERO; limits::OUTPUTS]),
                    Arc::new([Vec4::ZERO; limits::OUTPUTS]),
                ],
            }),
            end_of_batch: true,
        }
    }

    fn run_gen(work: SetupTriWork) -> Vec<FragTile> {
        let mut stats = StatsRegistry::new(0);
        let (mut tri_tx, tri_rx) = unbound_port::<SetupTriWork>("t", 1, 1, 4);
        let (tile_tx, mut tile_rx) = unbound_port::<FragTile>("f", 2, 1, 256);
        let mut fg = FragmentGenerator::new(
            GpuConfig::baseline().fraggen,
            tri_rx,
            tile_tx,
            &mut stats,
        );
        tri_tx.update(0);
        tri_tx.send(0, work);
        let mut out = Vec::new();
        for cycle in 0..200 {
            fg.clock(cycle).expect("no faults");
            tile_rx.update(cycle);
            while let Some(t) = tile_rx.pop(cycle) {
                out.push(t);
            }
        }
        out
    }

    #[test]
    fn full_screen_triangle_covers_all_tiles() {
        let vp = Viewport::new(32, 32);
        let tiles = run_gen(make_work(
            [
                Vec4::new(-1.0, -1.0, 0.0, 1.0),
                Vec4::new(3.0, -1.0, 0.0, 1.0),
                Vec4::new(-1.0, 3.0, 0.0, 1.0),
            ],
            vp,
        ));
        assert_eq!(tiles.len(), 16, "32x32 = 4x4 tiles of 8x8");
        let total: usize =
            tiles.iter().map(|t| t.frags.iter().filter(|f| !f.culled).count()).sum();
        assert_eq!(total, 32 * 32);
        assert!(tiles.iter().all(|t| t.frags.len() == 64));
    }

    #[test]
    fn small_triangle_emits_few_tiles_with_cull_flags() {
        let vp = Viewport::new(64, 64);
        // A triangle inside one 8x8 tile at the origin.
        let tiles = run_gen(make_work(
            [
                Vec4::new(-1.0, -1.0, 0.0, 1.0),
                Vec4::new(-0.8, -1.0, 0.0, 1.0),
                Vec4::new(-1.0, -0.8, 0.0, 1.0),
            ],
            vp,
        ));
        assert_eq!(tiles.len(), 1);
        let covered = tiles[0].frags.iter().filter(|f| !f.culled).count();
        assert!(covered > 0 && covered < 64, "partial tile: {covered}");
    }

    #[test]
    fn min_depth_is_minimum_of_covered() {
        let vp = Viewport::new(16, 16);
        let tiles = run_gen(make_work(
            [
                Vec4::new(-1.0, -1.0, -0.5, 1.0),
                Vec4::new(3.0, -1.0, 0.5, 1.0),
                Vec4::new(-1.0, 3.0, 0.5, 1.0),
            ],
            vp,
        ));
        for t in &tiles {
            let computed = t
                .frags
                .iter()
                .filter(|f| !f.culled)
                .map(|f| f.depth)
                .fold(f32::MAX, f32::min);
            assert_eq!(t.min_depth, computed);
        }
    }

    #[test]
    fn rate_limited_to_tiles_per_cycle() {
        let mut stats = StatsRegistry::new(0);
        let (mut tri_tx, tri_rx) = unbound_port::<SetupTriWork>("t", 1, 1, 4);
        let (tile_tx, mut tile_rx) = unbound_port::<FragTile>("f", 2, 1, 256);
        let mut fg = FragmentGenerator::new(
            GpuConfig::baseline().fraggen,
            tri_rx,
            tile_tx,
            &mut stats,
        );
        let vp = Viewport::new(64, 64);
        tri_tx.update(0);
        tri_tx.send(
            0,
            make_work(
                [
                    Vec4::new(-1.0, -1.0, 0.0, 1.0),
                    Vec4::new(3.0, -1.0, 0.0, 1.0),
                    Vec4::new(-1.0, 3.0, 0.0, 1.0),
                ],
                vp,
            ),
        );
        for cycle in 0..100 {
            fg.clock(cycle).expect("no faults");
            tile_rx.update(cycle);
            let mut arrived = 0;
            while tile_rx.pop(cycle).is_some() {
                arrived += 1;
            }
            assert!(arrived <= 2, "cycle {cycle}: {arrived} tiles");
        }
    }
}
