//! Triangle Setup: edge and depth interpolation equations (paper §2.2).
//!
//! "Triangle Setup calculates the triangle half-plane edge and a depth
//! (z/w) interpolation equations from the triangle homogeneous matrix" —
//! see [`attila_emu::raster::setup_triangle`]. Face culling and
//! degenerate-triangle elimination happen here too.

use std::sync::Arc;

use attila_emu::raster::setup_triangle;
use attila_sim::{Counter, Cycle, DynamicObject, ObjectIdGen, SimError};

use crate::port::{PortReceiver, PortSender};
use crate::state::CullMode;
use crate::types::{SetupTriWork, TriangleData, TriangleWork};

/// The Triangle Setup box.
#[derive(Debug)]
pub struct TriangleSetup {
    /// Triangles from the Clipper.
    pub in_tris: PortReceiver<TriangleWork>,
    /// Set-up triangles to the Fragment Generator.
    pub out_tris: PortSender<SetupTriWork>,
    ids: ObjectIdGen,
    stat_in: Counter,
    stat_culled: Counter,
    stat_degenerate: Counter,
}

impl TriangleSetup {
    /// Builds the box around its ports.
    pub fn new(
        in_tris: PortReceiver<TriangleWork>,
        out_tris: PortSender<SetupTriWork>,
        stats: &mut attila_sim::StatsRegistry,
    ) -> Self {
        TriangleSetup {
            in_tris,
            out_tris,
            ids: ObjectIdGen::new(),
            stat_in: stats.counter("Setup.triangles"),
            stat_culled: stats.counter("Setup.face_culled"),
            stat_degenerate: stats.counter("Setup.degenerate"),
        }
    }

    /// Advances the box one cycle (1 triangle per cycle, Table 1).
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] raised by the box's signals.
    pub fn clock(&mut self, cycle: Cycle) -> Result<(), SimError> {
        self.in_tris.try_update(cycle)?;
        self.out_tris.try_update(cycle)?;
        if !self.out_tris.can_send(cycle) {
            return Ok(());
        }
        let Some(tri) = self.in_tris.try_pop(cycle)? else { return Ok(()) };
        self.stat_in.inc();
        let state = &tri.batch.state;
        let positions = [tri.verts[0][0], tri.verts[1][0], tri.verts[2][0]];
        let Some(setup) = setup_triangle(&positions, state.viewport) else {
            self.stat_degenerate.inc();
            return Ok(());
        };
        let cull = match state.cull {
            CullMode::None => false,
            CullMode::Front => setup.front_facing,
            CullMode::Back => !setup.front_facing,
        };
        if cull {
            self.stat_culled.inc();
            return Ok(());
        }
        let data = Arc::new(TriangleData {
            batch: Arc::clone(&tri.batch),
            setup,
            outputs: tri.verts,
        });
        self.out_tris.try_send(
            cycle,
            SetupTriWork {
                obj: DynamicObject::new(self.ids.next_id()),
                data,
                end_of_batch: tri.end_of_batch,
            },
        )
    }

    /// Whether work is in flight.
    pub fn busy(&self) -> bool {
        !self.in_tris.idle()
    }

    /// The box's event horizon: busy while queued triangles await setup,
    /// the wire's next arrival while triangles are in flight, idle
    /// otherwise (see [`attila_sim::Horizon`]).
    pub fn work_horizon(&self) -> attila_sim::Horizon {
        self.in_tris.work_horizon()
    }

    /// The box's declared interface for the architecture verifier.
    pub fn declared_ports(&self) -> Vec<attila_sim::PortDecl> {
        vec![self.in_tris.decl(), self.out_tris.decl()]
    }

    /// Objects waiting in the box's input queues.
    pub fn queued(&self) -> usize {
        self.in_tris.len()
    }

    /// Back/front-face culled triangles so far.
    pub fn face_culled(&self) -> u64 {
        self.stat_culled.value()
    }

    /// Dynamic-object ids issued so far (the box's whole persistent state;
    /// Setup holds no buffers beyond its ports).
    pub fn ids_issued(&self) -> u64 {
        self.ids.issued()
    }

    /// Restores the dynamic-object id counter from a checkpoint.
    pub fn restore_ids(&mut self, issued: u64) {
        self.ids.restore_issued(issued);
    }
}
