//! Triangle Setup: edge and depth interpolation equations (paper §2.2).
//!
//! "Triangle Setup calculates the triangle half-plane edge and a depth
//! (z/w) interpolation equations from the triangle homogeneous matrix" —
//! see [`attila_emu::raster::setup_triangle`]. Face culling and
//! degenerate-triangle elimination happen here too.

use std::sync::Arc;

use attila_emu::raster::setup_triangle;
use attila_sim::{Counter, Cycle, DynamicObject, ObjectIdGen};

use crate::port::{PortReceiver, PortSender};
use crate::state::CullMode;
use crate::types::{SetupTriWork, TriangleData, TriangleWork};

/// The Triangle Setup box.
#[derive(Debug)]
pub struct TriangleSetup {
    /// Triangles from the Clipper.
    pub in_tris: PortReceiver<TriangleWork>,
    /// Set-up triangles to the Fragment Generator.
    pub out_tris: PortSender<SetupTriWork>,
    ids: ObjectIdGen,
    stat_in: Counter,
    stat_culled: Counter,
    stat_degenerate: Counter,
}

impl TriangleSetup {
    /// Builds the box around its ports.
    pub fn new(
        in_tris: PortReceiver<TriangleWork>,
        out_tris: PortSender<SetupTriWork>,
        stats: &mut attila_sim::StatsRegistry,
    ) -> Self {
        TriangleSetup {
            in_tris,
            out_tris,
            ids: ObjectIdGen::new(),
            stat_in: stats.counter("Setup.triangles"),
            stat_culled: stats.counter("Setup.face_culled"),
            stat_degenerate: stats.counter("Setup.degenerate"),
        }
    }

    /// Advances the box one cycle (1 triangle per cycle, Table 1).
    pub fn clock(&mut self, cycle: Cycle) {
        self.in_tris.update(cycle);
        self.out_tris.update(cycle);
        if !self.out_tris.can_send(cycle) {
            return;
        }
        let Some(tri) = self.in_tris.pop(cycle) else { return };
        self.stat_in.inc();
        let state = &tri.batch.state;
        let positions = [tri.verts[0][0], tri.verts[1][0], tri.verts[2][0]];
        let Some(setup) = setup_triangle(&positions, state.viewport) else {
            self.stat_degenerate.inc();
            return;
        };
        let cull = match state.cull {
            CullMode::None => false,
            CullMode::Front => setup.front_facing,
            CullMode::Back => !setup.front_facing,
        };
        if cull {
            self.stat_culled.inc();
            return;
        }
        let data = Arc::new(TriangleData {
            batch: Arc::clone(&tri.batch),
            setup,
            outputs: tri.verts,
        });
        self.out_tris.send(
            cycle,
            SetupTriWork {
                obj: DynamicObject::new(self.ids.next_id()),
                data,
                end_of_batch: tri.end_of_batch,
            },
        );
    }

    /// Whether work is in flight.
    pub fn busy(&self) -> bool {
        !self.in_tris.idle()
    }

    /// Back/front-face culled triangles so far.
    pub fn face_culled(&self) -> u64 {
        self.stat_culled.value()
    }
}
