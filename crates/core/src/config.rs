//! GPU configuration.
//!
//! The ATTILA simulator "is highly configurable (the configuration files
//! for our architecture has over 100 parameters)". [`GpuConfig`] gathers
//! them, JSON-serializable (via `attila-json`) so configurations can live
//! in files, with presets for the paper's configurations:
//!
//! * [`GpuConfig::baseline`] — Table 1 / Table 2 baseline (unified).
//! * [`GpuConfig::non_unified_baseline`] — the same with 4 dedicated
//!   vertex shaders (Figure 1).
//! * [`GpuConfig::case_study`] — Section 5: three unified shaders, one
//!   ROP, two 64-bit DDR channels, 96-thread window / 384-input queue,
//!   1536 temporary registers, 1–3 texture units.
//! * [`GpuConfig::embedded`] — the paper-\[2\] direction: a single unified
//!   shader doing all vertex, fragment and triangle shading work.

use std::collections::BTreeMap;

use attila_json::{impl_json_enum_unit, impl_json_struct, Json, JsonError, ToJson};
use attila_sim::SimError;

use attila_emu::isa::Opcode;
use attila_emu::raster::TraversalAlgorithm;
use attila_mem::{CacheConfig, GddrTiming, MemControllerConfig};


/// Render-target / display parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DisplayConfig {
    /// Framebuffer width in pixels.
    pub width: u32,
    /// Framebuffer height in pixels.
    pub height: u32,
    /// GPU core (and memory) clock in MHz — used only to convert cycles
    /// to frames per second in reports (the paper uses 600 MHz).
    pub clock_mhz: u32,
}

/// Streamer (vertex fetch) parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamerConfig {
    /// Indices fetched per cycle.
    pub indices_per_cycle: u32,
    /// Input vertex queue entries (Table 1: 48).
    pub input_queue: usize,
    /// Post-shading vertex cache entries (reuse of shaded vertices in
    /// indexed batches).
    pub vertex_cache_entries: usize,
    /// Outstanding attribute-fetch memory requests.
    pub max_memory_requests: usize,
    /// Fixed pipeline latency of the streamer stages.
    pub latency: u64,
}

/// Primitive assembly parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PrimitiveAssemblyConfig {
    /// Input queue entries (Table 1: 8).
    pub input_queue: usize,
    /// Stage latency in cycles (Table 1: 1).
    pub latency: u64,
}

/// Clipper parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ClipperConfig {
    /// Input queue entries (Table 1: 4).
    pub input_queue: usize,
    /// Trivial-rejection latency in cycles (Table 1: 6).
    pub latency: u64,
}

/// Triangle setup parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SetupConfig {
    /// Input queue entries (Table 1: 12).
    pub input_queue: usize,
    /// Setup latency in cycles (Table 1: 10).
    pub latency: u64,
}

/// Fragment generator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FragGenConfig {
    /// Input triangle queue entries (Table 1: 16).
    pub input_queue: usize,
    /// Stage latency in cycles (Table 1: 1).
    pub latency: u64,
    /// 8×8 fragment tiles emitted per cycle (Table 1: 2×64 fragments).
    pub tiles_per_cycle: u32,
    /// Generation tile size in pixels (second/third tiling level: 8).
    pub tile_size: u32,
    /// Traversal algorithm (recursive is ATTILA's default).
    pub traversal: Traversal,
}

/// Serializable mirror of [`TraversalAlgorithm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Traversal {
    /// McCool recursive descent.
    #[default]
    Recursive,
    /// Neon-style tile scanning.
    TileScan,
}

impl From<Traversal> for TraversalAlgorithm {
    fn from(t: Traversal) -> Self {
        match t {
            Traversal::Recursive => TraversalAlgorithm::Recursive,
            Traversal::TileScan => TraversalAlgorithm::TileScan,
        }
    }
}

/// Hierarchical-Z parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct HzConfig {
    /// Whether the HZ test is performed at all (ablation knob).
    pub enabled: bool,
    /// Input tile queue entries (Table 1: 64).
    pub input_queue: usize,
    /// Tiles tested per cycle (Table 1: up to two 8×8 tiles).
    pub tiles_per_cycle: u32,
    /// Test latency in cycles.
    pub latency: u64,
    /// HZ block edge in pixels (one HZ entry covers `block`×`block`).
    pub block_size: u32,
    /// Depth precision of on-chip HZ entries in bits (paper: 8 bits,
    /// 256 KB for 4096×4096).
    pub depth_bits: u32,
}

/// Z & stencil / colour-write (ROP) parameters, shared shape.
#[derive(Debug, Clone, PartialEq)]
pub struct RopConfig {
    /// Number of ROP units of this type (quads interleave across them).
    pub units: usize,
    /// Fragments processed per cycle per unit (Table 1: 4 = one quad).
    pub frags_per_cycle: u32,
    /// Input quad queue entries (Table 1: 64 fragments = 16 quads).
    pub input_queue: usize,
    /// Pipeline latency before the cache access (Table 1: 2 + memory).
    pub latency: u64,
    /// Cache geometry (Table 2).
    pub cache: RopCacheConfig,
    /// Whether the buffer compression algorithm is enabled (Z: 1:2/1:4
    /// lossless; colour compression is future work in the paper).
    pub compression: bool,
}

/// Serializable cache geometry (mirrors `attila_mem::CacheConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RopCacheConfig {
    /// Total bytes (Table 2: 16 KB).
    pub size_bytes: u32,
    /// Ways (Table 2: 4).
    pub ways: u32,
    /// Line bytes (Table 2: 256).
    pub line_bytes: u32,
    /// Ports (Table 2: 4 for Z/Color, 4×4 for texture).
    pub ports: u32,
}

impl From<RopCacheConfig> for CacheConfig {
    fn from(c: RopCacheConfig) -> Self {
        CacheConfig {
            size_bytes: c.size_bytes,
            ways: c.ways,
            line_bytes: c.line_bytes,
            ports: c.ports,
        }
    }
}

impl RopCacheConfig {
    /// Table 2 geometry with the given port count.
    pub fn table2(ports: u32) -> Self {
        RopCacheConfig { size_bytes: 16 * 1024, ways: 4, line_bytes: 256, ports }
    }
}

/// Interpolator parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpolatorConfig {
    /// Fragments interpolated per cycle (Table 1: 2×4).
    pub frags_per_cycle: u32,
    /// Latency in cycles (Table 1: 2 to 8, grows with attribute count).
    pub base_latency: u64,
    /// Extra latency per interpolated attribute beyond the first.
    pub latency_per_attribute: u64,
}

/// How the Fragment FIFO schedules shader inputs — the Section 5 case
/// study's central knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShaderScheduling {
    /// A thread window enabling out-of-order execution among shader
    /// threads: any ready (non-texture-blocked) thread may issue.
    #[default]
    ThreadWindow,
    /// A shader input queue allowing only in-order execution: the oldest
    /// thread must finish before younger ones make progress past it.
    InOrderQueue,
}

/// Shader pool parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ShaderConfig {
    /// Unified pool (vertices + fragments on the same units) vs the
    /// classic hard partition.
    pub unified: bool,
    /// Number of fragment (or unified) shader units.
    pub fragment_units: usize,
    /// Number of dedicated vertex shader units (non-unified only).
    pub vertex_units: usize,
    /// Vertex threads per dedicated vertex unit (paper: 12).
    pub vertex_threads: usize,
    /// Physical temporary registers per dedicated vertex unit (paper: a
    /// pool of 96 for non-unified vertex shaders).
    pub vertex_registers: usize,
    /// Maximum shader inputs in flight across the fragment/unified pool
    /// (paper baseline: 112 + 16 per unit; case study: 384 global).
    pub max_inputs: usize,
    /// Physical temporary registers in the pool's register bank
    /// (baseline: 448 per unit; case study: 1536 global; vertex: 96).
    pub temp_registers: usize,
    /// Scheduling model (thread window vs in-order input queue).
    pub scheduling: ShaderScheduling,
    /// Instructions issued per group per cycle (fetch width).
    pub issue_per_cycle: u32,
    /// Inputs per thread group (fragments are processed as 2×2 quads: 4).
    pub group_size: u32,
    /// Per-opcode execution latencies in cycles — the paper's
    /// "instruction dependent number of execution stages (configurable,
    /// currently ranging from 1 to 9 cycles)". Keys are mnemonics.
    pub instruction_latencies: BTreeMap<String, u64>,
}

/// The default per-opcode latency table (every supported mnemonic).
pub fn default_instruction_latencies() -> BTreeMap<String, u64> {
    Opcode::ALL.iter().map(|op| (op.mnemonic().to_string(), op.default_latency())).collect()
}

/// Texture unit parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TextureConfig {
    /// Number of texture units in the pool (the case-study sweep: 3→1).
    pub units: usize,
    /// Bilinear samples computed per cycle per unit (paper: 1; a
    /// trilinear sample every two cycles).
    pub bilinears_per_cycle: u32,
    /// Pending quad-request queue entries per unit.
    pub request_queue: usize,
    /// Texture cache geometry (Table 2: 16 KB, 4-way, 256 B).
    pub cache: RopCacheConfig,
    /// Maximum anisotropy the units support (case study: 8).
    pub max_aniso: u32,
}

/// Memory-system parameters (mirrors `attila_mem` config, serializable).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryConfig {
    /// GDDR channels (baseline: 4; case study: 2).
    pub channels: usize,
    /// Channel interleave granularity in bytes (256).
    pub interleave_bytes: u64,
    /// Bytes per cycle per channel — fixed at 16 by the 64-bit DDR model.
    pub bytes_per_cycle_per_channel: u32,
    /// Transfer cycles per 64-byte transaction (4).
    pub transfer_cycles: u64,
    /// tRCD — cycles from row ACTIVATE until a column command may issue;
    /// the cost of a row miss (bank idle).
    pub t_rcd: u64,
    /// tRP — row precharge cycles; a row conflict (wrong row open) pays
    /// `t_rp + t_rcd`.
    pub t_rp: u64,
    /// tRC — minimum cycles between ACTIVATEs to the same bank; bounds
    /// row thrashing.
    pub t_rc: u64,
    /// Write→read turnaround penalty.
    pub write_to_read_penalty: u64,
    /// Read→write turnaround penalty.
    pub read_to_write_penalty: u64,
    /// DRAM page size in bytes.
    pub page_bytes: u64,
    /// Banks per channel.
    pub banks: usize,
    /// CAS-like read latency in cycles.
    pub access_latency: u64,
    /// Per-client controller queue entries.
    pub queue_capacity: usize,
    /// Crossbar latency added to replies.
    pub bus_latency: u64,
    /// System (PCIe-like) bus bytes per cycle per direction (paper: 8).
    pub system_bus_bytes_per_cycle: u64,
    /// System bus base latency.
    pub system_bus_latency: u64,
    /// GPU memory size in megabytes.
    pub gpu_memory_mb: u32,
}

impl MemoryConfig {
    /// Converts to the `attila-mem` controller configuration.
    pub fn to_controller_config(&self) -> MemControllerConfig {
        MemControllerConfig {
            channels: self.channels,
            interleave_bytes: self.interleave_bytes,
            timing: GddrTiming {
                transfer_cycles: self.transfer_cycles,
                t_rcd: self.t_rcd,
                t_rp: self.t_rp,
                t_rc: self.t_rc,
                write_to_read_penalty: self.write_to_read_penalty,
                read_to_write_penalty: self.read_to_write_penalty,
                page_bytes: self.page_bytes,
                banks: self.banks,
                access_latency: self.access_latency,
            },
            queue_capacity: self.queue_capacity,
            bus_latency: self.bus_latency,
            system_bus_bytes_per_cycle: self.system_bus_bytes_per_cycle,
            system_bus_latency: self.system_bus_latency,
        }
    }

    /// GPU memory size in bytes.
    pub fn gpu_memory_bytes(&self) -> usize {
        self.gpu_memory_mb as usize * 1024 * 1024
    }
}

/// Statistics collection parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsConfig {
    /// Sampling window in cycles (paper figures: 10 000; 0 disables).
    pub window_cycles: u64,
}

/// What the simulator does when a box or signal reports a
/// [`SimError`] mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnFault {
    /// Stop simulating and return the error with a failure report (the
    /// default: errors in a verified pipeline are modelling bugs).
    #[default]
    Abort,
    /// Mark the offending signal lossy — it silently drops traffic that
    /// would have violated its contract — and keep simulating. Models a
    /// degraded wire; the run may still hang if the loss starves a unit.
    Isolate,
    /// Record the failure report but keep simulating with the error
    /// otherwise ignored, re-checking every cycle. Like `Isolate` without
    /// containment; useful to count how often a fault fires.
    Report,
}

/// The complete GPU configuration (over 100 parameters, as in the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Display / render-target parameters.
    pub display: DisplayConfig,
    /// Streamer parameters.
    pub streamer: StreamerConfig,
    /// Primitive assembly parameters.
    pub primitive_assembly: PrimitiveAssemblyConfig,
    /// Clipper parameters.
    pub clipper: ClipperConfig,
    /// Triangle setup parameters.
    pub setup: SetupConfig,
    /// Fragment generator parameters.
    pub fraggen: FragGenConfig,
    /// Hierarchical Z parameters.
    pub hz: HzConfig,
    /// Z & stencil test units.
    pub zstencil: RopConfig,
    /// Colour write units.
    pub colorwrite: RopConfig,
    /// Interpolator parameters.
    pub interpolator: InterpolatorConfig,
    /// Shader pool parameters.
    pub shader: ShaderConfig,
    /// Texture unit pool parameters.
    pub texture: TextureConfig,
    /// Memory system parameters.
    pub memory: MemoryConfig,
    /// Statistics sampling parameters.
    pub stats: StatsConfig,
    /// Fault-handling policy when a box or signal errors.
    pub on_fault: OnFault,
    /// Run the elaboration-time architecture verifier
    /// ([`attila_sim::lint`]) after wiring, before cycle 0. On by
    /// default; deny findings abort construction. Front ends that want
    /// the findings as data (the `attila lint` subcommand) turn this off
    /// and call [`Gpu::lint`](crate::Gpu::lint) themselves.
    pub lint_on_start: bool,
}

impl_json_struct!(DisplayConfig { width, height, clock_mhz });
impl_json_struct!(StreamerConfig {
    indices_per_cycle,
    input_queue,
    vertex_cache_entries,
    max_memory_requests,
    latency,
});
impl_json_struct!(PrimitiveAssemblyConfig { input_queue, latency });
impl_json_struct!(ClipperConfig { input_queue, latency });
impl_json_struct!(SetupConfig { input_queue, latency });
impl_json_struct!(FragGenConfig { input_queue, latency, tiles_per_cycle, tile_size, traversal });
impl_json_enum_unit!(Traversal { Recursive, TileScan });
impl_json_struct!(HzConfig {
    enabled,
    input_queue,
    tiles_per_cycle,
    latency,
    block_size,
    depth_bits,
});
impl_json_struct!(RopConfig { units, frags_per_cycle, input_queue, latency, cache, compression });
impl_json_struct!(RopCacheConfig { size_bytes, ways, line_bytes, ports });
impl_json_struct!(InterpolatorConfig { frags_per_cycle, base_latency, latency_per_attribute });
impl_json_enum_unit!(ShaderScheduling { ThreadWindow, InOrderQueue });
impl_json_struct!(ShaderConfig {
    unified,
    fragment_units,
    vertex_units,
    vertex_threads,
    vertex_registers,
    max_inputs,
    temp_registers,
    scheduling,
    issue_per_cycle,
    group_size,
    instruction_latencies,
});
impl_json_struct!(TextureConfig { units, bilinears_per_cycle, request_queue, cache, max_aniso });
impl_json_struct!(MemoryConfig {
    channels,
    interleave_bytes,
    bytes_per_cycle_per_channel,
    transfer_cycles,
    t_rcd,
    t_rp,
    t_rc,
    write_to_read_penalty,
    read_to_write_penalty,
    page_bytes,
    banks,
    access_latency,
    queue_capacity,
    bus_latency,
    system_bus_bytes_per_cycle,
    system_bus_latency,
    gpu_memory_mb,
});
impl_json_struct!(StatsConfig { window_cycles });
impl_json_enum_unit!(OnFault { Abort, Isolate, Report });
impl_json_struct!(GpuConfig {
    display,
    streamer,
    primitive_assembly,
    clipper,
    setup,
    fraggen,
    hz,
    zstencil,
    colorwrite,
    interpolator,
    shader,
    texture,
    memory,
    stats,
    on_fault,
    lint_on_start,
});

impl GpuConfig {
    /// The paper's baseline architecture (Tables 1 and 2, unified form):
    /// two unified shaders each processing 4 fragments per cycle, two
    /// fragment-test/framebuffer-update units each processing 4 fragments
    /// per cycle, four 16-byte-per-cycle channels to GPU memory and two
    /// 8-byte system buses.
    pub fn baseline() -> Self {
        GpuConfig {
            display: DisplayConfig { width: 320, height: 240, clock_mhz: 600 },
            streamer: StreamerConfig {
                indices_per_cycle: 1,
                input_queue: 48,
                vertex_cache_entries: 16,
                max_memory_requests: 8,
                latency: 4,
            },
            primitive_assembly: PrimitiveAssemblyConfig { input_queue: 8, latency: 1 },
            clipper: ClipperConfig { input_queue: 4, latency: 6 },
            setup: SetupConfig { input_queue: 12, latency: 10 },
            fraggen: FragGenConfig {
                input_queue: 16,
                latency: 1,
                tiles_per_cycle: 2,
                tile_size: 8,
                traversal: Traversal::Recursive,
            },
            hz: HzConfig {
                enabled: true,
                input_queue: 64,
                tiles_per_cycle: 2,
                latency: 1,
                block_size: 8,
                depth_bits: 8,
            },
            zstencil: RopConfig {
                units: 2,
                frags_per_cycle: 4,
                input_queue: 16,
                latency: 2,
                cache: RopCacheConfig::table2(4),
                compression: true,
            },
            colorwrite: RopConfig {
                units: 2,
                frags_per_cycle: 4,
                input_queue: 16,
                latency: 2,
                cache: RopCacheConfig::table2(4),
                compression: false,
            },
            interpolator: InterpolatorConfig {
                frags_per_cycle: 8,
                base_latency: 2,
                latency_per_attribute: 1,
            },
            shader: ShaderConfig {
                unified: true,
                fragment_units: 2,
                vertex_units: 0,
                vertex_threads: 12,
                vertex_registers: 96,
                max_inputs: (112 + 16) * 2,
                temp_registers: 448 * 2,
                scheduling: ShaderScheduling::ThreadWindow,
                issue_per_cycle: 1,
                group_size: 4,
                instruction_latencies: default_instruction_latencies(),
            },
            texture: TextureConfig {
                units: 2,
                bilinears_per_cycle: 1,
                request_queue: 16,
                cache: RopCacheConfig::table2(4),
                max_aniso: 8,
            },
            memory: MemoryConfig {
                channels: 4,
                interleave_bytes: 256,
                bytes_per_cycle_per_channel: 16,
                transfer_cycles: 4,
                t_rcd: 6,
                t_rp: 6,
                t_rc: 16,
                write_to_read_penalty: 6,
                read_to_write_penalty: 4,
                page_bytes: 4096,
                banks: 8,
                access_latency: 8,
                queue_capacity: 16,
                bus_latency: 2,
                system_bus_bytes_per_cycle: 8,
                system_bus_latency: 100,
                gpu_memory_mb: 64,
            },
            stats: StatsConfig { window_cycles: 10_000 },
            on_fault: OnFault::Abort,
            lint_on_start: true,
        }
    }

    /// The baseline with the classic hard partition: four dedicated
    /// vertex shaders (Table 1) and two fragment shaders.
    pub fn non_unified_baseline() -> Self {
        let mut c = Self::baseline();
        c.shader.unified = false;
        c.shader.vertex_units = 4;
        c
    }

    /// The Section 5 case-study configuration: three unified shaders, one
    /// ROP, two 64-bit DDR channels; a global pool of 96 threads (384
    /// quad inputs) and 1536 temporary registers; `texture_units` ∈ 1..=3.
    pub fn case_study(texture_units: usize, scheduling: ShaderScheduling) -> Self {
        let mut c = Self::baseline();
        c.shader.fragment_units = 3;
        c.shader.max_inputs = 384;
        c.shader.temp_registers = 1536;
        c.shader.scheduling = scheduling;
        c.zstencil.units = 1;
        c.colorwrite.units = 1;
        c.texture.units = texture_units;
        c.texture.max_aniso = 8;
        c.memory.channels = 2;
        c
    }

    /// An embedded-segment configuration (the paper's ref \[2\] direction):
    /// one unified shader doing all vertex and fragment work, one ROP,
    /// one memory channel, small caches.
    pub fn embedded() -> Self {
        let mut c = Self::baseline();
        c.display = DisplayConfig { width: 176, height: 144, clock_mhz: 200 };
        c.shader.fragment_units = 1;
        c.shader.max_inputs = 32;
        c.shader.temp_registers = 128;
        c.zstencil.units = 1;
        c.zstencil.cache = RopCacheConfig { size_bytes: 4096, ways: 2, line_bytes: 256, ports: 4 };
        c.zstencil.compression = false;
        c.colorwrite.units = 1;
        c.colorwrite.cache = c.zstencil.cache;
        c.texture.units = 1;
        c.texture.cache = RopCacheConfig { size_bytes: 4096, ways: 2, line_bytes: 256, ports: 4 };
        c.texture.max_aniso = 1;
        c.hz.enabled = false;
        c.memory.channels = 1;
        // Small part, but the driver's fixed memory map (heap at 16 MB)
        // needs headroom above it.
        c.memory.gpu_memory_mb = 32;
        c
    }

    /// A high-end configuration scaled up from the baseline (the paper's
    /// ref \[1\] direction: current GPUs implement at most 4 or 6 quad
    /// units; this models a future 8-quad part).
    pub fn high_end() -> Self {
        let mut c = Self::baseline();
        c.shader.fragment_units = 8;
        c.shader.max_inputs = (112 + 16) * 8;
        c.shader.temp_registers = 448 * 8;
        c.zstencil.units = 4;
        c.colorwrite.units = 4;
        c.texture.units = 8;
        c.memory.channels = 8;
        c
    }

    /// Framebuffer pixel count.
    pub fn pixels(&self) -> u64 {
        self.display.width as u64 * self.display.height as u64
    }

    /// Serializes to pretty JSON (the simulator's config-file format).
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).pretty()
    }

    /// Parses a JSON config file.
    ///
    /// # Errors
    ///
    /// Returns the underlying `attila-json` error on malformed input.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        attila_json::FromJson::from_json(&attila_json::parse(text)?)
    }

    /// Validates the configuration, returning the first inconsistency as
    /// a typed [`SimError::InvalidConfig`]. [`Gpu::new`](crate::Gpu::new)
    /// asserts the same rules; front ends call this to fail gracefully
    /// instead. Degenerate parameter values (zero units, zero-width
    /// signals, zero cache lines) are rejected here rather than
    /// surfacing as a panic in the middle of elaboration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] with a message naming the
    /// offending parameter.
    pub fn validate(&self) -> Result<(), SimError> {
        fn bad(msg: impl Into<String>) -> Result<(), SimError> {
            Err(SimError::InvalidConfig(msg.into()))
        }
        if self.shader.fragment_units == 0 {
            return bad("shader.fragment_units must be at least 1");
        }
        if self.texture.units == 0 {
            return bad("texture.units must be at least 1");
        }
        if self.zstencil.units == 0 {
            return bad("zstencil.units must be at least 1");
        }
        if self.zstencil.units != self.colorwrite.units {
            return bad(format!(
                "zstencil.units ({}) must equal colorwrite.units ({})",
                self.zstencil.units, self.colorwrite.units
            ));
        }
        if !self.shader.unified && self.shader.vertex_units == 0 {
            return bad("non-unified configurations need shader.vertex_units >= 1");
        }
        if self.display.width == 0 || self.display.height == 0 {
            return bad(format!(
                "display dimensions must be non-zero (got {}x{})",
                self.display.width, self.display.height
            ));
        }
        if self.memory.channels == 0 {
            return bad("memory.channels must be at least 1");
        }
        if self.memory.banks == 0 {
            return bad("memory.banks must be at least 1");
        }
        if self.memory.page_bytes == 0 {
            return bad("memory.page_bytes must be at least 1");
        }
        if self.memory.queue_capacity == 0 {
            return bad("memory.queue_capacity must be at least 1");
        }
        if self.memory.gpu_memory_mb == 0 {
            return bad("memory.gpu_memory_mb must be at least 1");
        }
        // Queue capacities become port queue sizes and per-cycle widths
        // become signal bandwidths; a zero in either would otherwise
        // panic inside `Signal::with_name`/`port()` mid-elaboration.
        for (name, queue) in [
            ("streamer.input_queue", self.streamer.input_queue),
            ("primitive_assembly.input_queue", self.primitive_assembly.input_queue),
            ("clipper.input_queue", self.clipper.input_queue),
            ("setup.input_queue", self.setup.input_queue),
            ("fraggen.input_queue", self.fraggen.input_queue),
            ("hz.input_queue", self.hz.input_queue),
            ("zstencil.input_queue", self.zstencil.input_queue),
            ("colorwrite.input_queue", self.colorwrite.input_queue),
            ("texture.request_queue", self.texture.request_queue),
        ] {
            if queue == 0 {
                return bad(format!("{name} must be at least 1 (a port needs a queue)"));
            }
        }
        for (name, width) in [
            ("streamer.indices_per_cycle", self.streamer.indices_per_cycle),
            ("fraggen.tiles_per_cycle", self.fraggen.tiles_per_cycle),
            ("hz.tiles_per_cycle", self.hz.tiles_per_cycle),
            ("interpolator.frags_per_cycle", self.interpolator.frags_per_cycle),
            ("zstencil.frags_per_cycle", self.zstencil.frags_per_cycle),
            ("colorwrite.frags_per_cycle", self.colorwrite.frags_per_cycle),
            ("texture.bilinears_per_cycle", self.texture.bilinears_per_cycle),
        ] {
            if width == 0 {
                return bad(format!("{name} must be at least 1 (a zero-width signal)"));
            }
        }
        if self.fraggen.tile_size != crate::address::FB_TILE {
            return bad(format!(
                "fraggen.tile_size must equal the framebuffer tiling level ({})",
                crate::address::FB_TILE
            ));
        }
        if self.hz.block_size != crate::address::FB_TILE {
            return bad(format!(
                "hz.block_size must equal the framebuffer tiling level ({})",
                crate::address::FB_TILE
            ));
        }
        if self.memory.bytes_per_cycle_per_channel as u64 * self.memory.transfer_cycles
            != attila_mem::MAX_TRANSACTION as u64
        {
            return bad(format!(
                "memory.bytes_per_cycle_per_channel * transfer_cycles must equal the {}-byte transaction",
                attila_mem::MAX_TRANSACTION
            ));
        }
        if self.shader.group_size != 4 {
            return bad("shader.group_size must be 4 (fragment quads)");
        }
        if self.shader.max_inputs < self.shader.group_size as usize {
            return bad("shader.max_inputs must hold at least one group");
        }
        for (name, c) in [
            ("texture.cache", &self.texture.cache),
            ("zstencil.cache", &self.zstencil.cache),
            ("colorwrite.cache", &self.colorwrite.cache),
        ] {
            if !c.line_bytes.is_power_of_two()
                || c.ways == 0
                || c.size_bytes % (c.ways * c.line_bytes) != 0
            {
                return bad(format!("{name} geometry is inconsistent"));
            }
            if c.size_bytes < c.ways * c.line_bytes {
                return bad(format!("{name} has zero cache lines per way"));
            }
            if c.ports == 0 {
                return bad(format!("{name} needs at least one port"));
            }
        }
        Ok(())
    }

    /// Counts the scalar parameters in the configuration — the paper
    /// quotes "over 100 parameters"; this keeps us honest.
    pub fn parameter_count(&self) -> usize {
        fn count(v: &Json) -> usize {
            match v {
                Json::Obj(m) => m.iter().map(|(_, v)| count(v)).sum(),
                Json::Arr(a) => a.iter().map(count).sum(),
                _ => 1,
            }
        }
        count(&ToJson::to_json(self))
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1_and_table2() {
        let c = GpuConfig::baseline();
        assert_eq!(c.streamer.input_queue, 48);
        assert_eq!(c.primitive_assembly.input_queue, 8);
        assert_eq!(c.clipper.input_queue, 4);
        assert_eq!(c.clipper.latency, 6);
        assert_eq!(c.setup.input_queue, 12);
        assert_eq!(c.setup.latency, 10);
        assert_eq!(c.fraggen.input_queue, 16);
        assert_eq!(c.hz.input_queue, 64);
        assert_eq!(c.zstencil.frags_per_cycle, 4);
        assert_eq!(c.zstencil.cache.size_bytes, 16 * 1024);
        assert_eq!(c.zstencil.cache.ways, 4);
        assert_eq!(c.zstencil.cache.line_bytes, 256);
        assert_eq!(c.texture.cache.size_bytes, 16 * 1024);
        assert_eq!(c.memory.channels, 4);
        assert_eq!(c.memory.bytes_per_cycle_per_channel, 16);
        assert_eq!(c.memory.system_bus_bytes_per_cycle, 8);
        assert_eq!(c.shader.fragment_units, 2);
        assert!(c.shader.unified);
    }

    #[test]
    fn case_study_matches_section5() {
        let c = GpuConfig::case_study(3, ShaderScheduling::ThreadWindow);
        assert_eq!(c.shader.fragment_units, 3);
        assert_eq!(c.shader.max_inputs, 384);
        assert_eq!(c.shader.temp_registers, 1536);
        assert_eq!(c.zstencil.units, 1);
        assert_eq!(c.memory.channels, 2);
        assert_eq!(c.texture.units, 3);
        let c = GpuConfig::case_study(1, ShaderScheduling::InOrderQueue);
        assert_eq!(c.texture.units, 1);
        assert_eq!(c.shader.scheduling, ShaderScheduling::InOrderQueue);
    }

    #[test]
    fn over_100_parameters() {
        let c = GpuConfig::baseline();
        assert!(c.parameter_count() > 100, "only {} parameters", c.parameter_count());
    }

    #[test]
    fn json_round_trip() {
        let c = GpuConfig::case_study(2, ShaderScheduling::ThreadWindow);
        let json = c.to_json();
        let back = GpuConfig::from_json(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn non_unified_has_vertex_units() {
        let c = GpuConfig::non_unified_baseline();
        assert!(!c.shader.unified);
        assert_eq!(c.shader.vertex_units, 4);
    }

    #[test]
    fn embedded_is_smaller_in_every_dimension() {
        let e = GpuConfig::embedded();
        let b = GpuConfig::baseline();
        assert!(e.shader.fragment_units < b.shader.fragment_units);
        assert!(e.memory.channels < b.memory.channels);
        assert!(e.zstencil.cache.size_bytes < b.zstencil.cache.size_bytes);
        assert!(!e.hz.enabled);
    }

    #[test]
    fn validate_accepts_all_presets() {
        for c in [
            GpuConfig::baseline(),
            GpuConfig::non_unified_baseline(),
            GpuConfig::case_study(1, ShaderScheduling::InOrderQueue),
            GpuConfig::embedded(),
            GpuConfig::high_end(),
        ] {
            c.validate().expect("preset must validate");
        }
    }

    #[test]
    fn validate_rejects_inconsistencies() {
        let mut c = GpuConfig::baseline();
        c.texture.units = 0;
        assert!(c.validate().unwrap_err().to_string().contains("texture.units"));
        let mut c = GpuConfig::baseline();
        c.zstencil.units = 1; // != colorwrite.units (2)
        assert!(c.validate().unwrap_err().to_string().contains("colorwrite"));
        let mut c = GpuConfig::baseline();
        c.fraggen.tile_size = 16;
        assert!(c.validate().unwrap_err().to_string().contains("tile_size"));
        let mut c = GpuConfig::baseline();
        c.zstencil.cache.ways = 0;
        assert!(c.validate().unwrap_err().to_string().contains("zstencil.cache"));
    }

    #[test]
    fn validate_returns_typed_invalid_config() {
        let mut c = GpuConfig::baseline();
        c.shader.fragment_units = 0;
        let err = c.validate().unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err:?}");
        assert!(err.to_string().contains("invalid configuration"));
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let mut c = GpuConfig::baseline();
        c.display.width = 0;
        assert!(c.validate().unwrap_err().to_string().contains("display"));
        let mut c = GpuConfig::baseline();
        c.clipper.input_queue = 0;
        assert!(c.validate().unwrap_err().to_string().contains("clipper.input_queue"));
        let mut c = GpuConfig::baseline();
        c.fraggen.tiles_per_cycle = 0;
        assert!(c.validate().unwrap_err().to_string().contains("zero-width signal"));
        let mut c = GpuConfig::baseline();
        c.texture.cache.size_bytes = 0;
        assert!(c.validate().unwrap_err().to_string().contains("texture.cache"));
        let mut c = GpuConfig::baseline();
        c.memory.queue_capacity = 0;
        assert!(c.validate().unwrap_err().to_string().contains("memory.queue_capacity"));
        let mut c = GpuConfig::baseline();
        c.memory.banks = 0;
        assert!(c.validate().unwrap_err().to_string().contains("memory.banks"));
    }

    #[test]
    fn lint_on_start_defaults_on_and_round_trips() {
        let c = GpuConfig::baseline();
        assert!(c.lint_on_start);
        let mut c2 = c.clone();
        c2.lint_on_start = false;
        let back = GpuConfig::from_json(&c2.to_json()).unwrap();
        assert!(!back.lint_on_start);
    }

    #[test]
    fn memory_config_conversion() {
        let m = GpuConfig::baseline().memory;
        let cc = m.to_controller_config();
        assert_eq!(cc.channels, 4);
        assert_eq!(cc.timing.transfer_cycles, 4);
        assert_eq!(m.gpu_memory_bytes(), 64 * 1024 * 1024);
    }
}
