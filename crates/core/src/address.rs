//! Framebuffer address layout.
//!
//! The colour and depth/stencil buffers are stored in 8×8-pixel tiles of
//! 32-bit values — 256 bytes per tile, exactly one ROP cache line (Table
//! 2) and one Z-compression block. This is the paper's third tiling
//! level: "the third level is set to the size of the HZ blocks and
//! framebuffer cache lines", which is what gives fragment-quad traffic
//! its locality.

/// Pixels per framebuffer tile edge.
pub const FB_TILE: u32 = 8;
/// Bytes per pixel (RGBA8 colour or S8Z24 depth/stencil).
pub const FB_BYTES_PER_PIXEL: u32 = 4;
/// Bytes per 8×8 framebuffer tile (= ROP cache line).
pub const FB_TILE_BYTES: u32 = FB_TILE * FB_TILE * FB_BYTES_PER_PIXEL;

/// Number of tiles per row for a given width.
pub fn tiles_per_row(width: u32) -> u32 {
    width.div_ceil(FB_TILE)
}

/// Total bytes of a tiled framebuffer surface.
pub fn surface_bytes(width: u32, height: u32) -> u64 {
    tiles_per_row(width) as u64 * height.div_ceil(FB_TILE) as u64 * FB_TILE_BYTES as u64
}

/// Byte address of pixel `(x, y)` in a tiled surface at `base`.
///
/// # Examples
///
/// ```
/// use attila_core::address::{pixel_address, FB_TILE_BYTES};
/// // Pixel (0,0) is at the base; pixel (8,0) starts the second tile.
/// assert_eq!(pixel_address(0x1000, 64, 0, 0), 0x1000);
/// assert_eq!(pixel_address(0x1000, 64, 8, 0), 0x1000 + FB_TILE_BYTES as u64);
/// ```
pub fn pixel_address(base: u64, width: u32, x: u32, y: u32) -> u64 {
    let tile = (y / FB_TILE) as u64 * tiles_per_row(width) as u64 + (x / FB_TILE) as u64;
    let intra = ((y % FB_TILE) * FB_TILE + (x % FB_TILE)) as u64;
    base + tile * FB_TILE_BYTES as u64 + intra * FB_BYTES_PER_PIXEL as u64
}

/// The tile-base address containing pixel `(x, y)` — the cache line / HZ
/// block the pixel maps to.
pub fn tile_address(base: u64, width: u32, x: u32, y: u32) -> u64 {
    pixel_address(base, width, x, y) & !(FB_TILE_BYTES as u64 - 1)
}

/// Index of the 8×8 block containing `(x, y)` — used by the on-chip HZ
/// buffer and block-state memories.
pub fn block_index(width: u32, x: u32, y: u32) -> usize {
    ((y / FB_TILE) * tiles_per_row(width) + x / FB_TILE) as usize
}

/// Number of 8×8 blocks covering a surface.
pub fn block_count(width: u32, height: u32) -> usize {
    (tiles_per_row(width) * height.div_ceil(FB_TILE)) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_are_dense_and_unique() {
        let (w, h) = (24, 16);
        let mut seen = std::collections::HashSet::new();
        for y in 0..h {
            for x in 0..w {
                let a = pixel_address(0, w, x, y);
                assert!(a < surface_bytes(w, h), "({x},{y}) -> {a}");
                assert_eq!(a % 4, 0);
                assert!(seen.insert(a), "duplicate address for ({x},{y})");
            }
        }
    }

    #[test]
    fn tile_locality_within_8x8() {
        // All pixels of one 8x8 tile fall within one 256-byte line.
        let base = pixel_address(0, 64, 8, 8);
        for y in 8..16 {
            for x in 8..16 {
                let a = pixel_address(0, 64, x, y);
                assert_eq!(a / 256, base / 256, "({x},{y}) escapes its tile");
            }
        }
    }

    #[test]
    fn non_multiple_of_8_width_rounds_up() {
        assert_eq!(tiles_per_row(65), 9);
        assert_eq!(surface_bytes(65, 9), 9 * 2 * 256);
    }

    #[test]
    fn tile_address_is_line_aligned() {
        let t = tile_address(0x1000, 320, 100, 50);
        assert_eq!(t % 256, 0x1000 % 256);
        assert_eq!(t, pixel_address(0x1000, 320, 96, 48));
    }

    #[test]
    fn block_index_walks_row_major() {
        assert_eq!(block_index(64, 0, 0), 0);
        assert_eq!(block_index(64, 63, 0), 7);
        assert_eq!(block_index(64, 0, 8), 8);
        assert_eq!(block_count(64, 64), 64);
    }
}
