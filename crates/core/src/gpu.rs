//! The top-level GPU: box construction, signal wiring, the clock loop and
//! the DAC.
//!
//! [`Gpu::new`] instantiates every unit of the configured pipeline
//! (Figures 1/2/5 of the paper), registers all signals in a
//! [`SignalBinder`] and wires them with flow-controlled ports.
//! [`Gpu::run_trace`] feeds a Command Processor trace and clocks the
//! machine until it drains, collecting statistics and framebuffer dumps.

use std::fmt::Write as _;

use attila_emu::fragops::DEPTH_MAX;
use attila_mem::{Client, MemOp, MemRequest, MemoryController};
use attila_sim::{
    BoxNode, Counter, Cycle, FaultInjector, Horizon, LintReport, SignalBinder, SimError,
    StatsRegistry, Topology,
};

use crate::address::{pixel_address, FB_TILE_BYTES};
use crate::checkpoint::{Checkpoint, CheckpointBody, SignalCounterState};
use crate::clipper::Clipper;
use crate::colorwrite::ColorWriteUnit;
use crate::command_processor::{CommandProcessor, CpAction};
use crate::commands::GpuCommand;
use crate::config::{GpuConfig, OnFault};
use crate::ffifo::FragmentFifo;
use crate::fraggen::FragmentGenerator;
use crate::hz::HierarchicalZ;
use crate::interpolator::Interpolator;
use crate::port::port;
use crate::primitive_assembly::PrimitiveAssembly;
use crate::report::{BoxStatus, FailureReport};
use crate::setup::TriangleSetup;
use crate::streamer::Streamer;
use crate::texunit::TextureUnit;
use crate::zstencil::ZStencilUnit;

/// A dumped frame (the DAC's output file in the paper — used to verify
/// the simulation against a reference image).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameDump {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Row-major RGBA bytes, row 0 at the bottom (OpenGL convention).
    pub rgba: Vec<u8>,
}

impl FrameDump {
    /// Serializes as a binary PPM (`P6`) image, flipping to top-down rows.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for y in (0..self.height).rev() {
            for x in 0..self.width {
                let o = ((y * self.width + x) * 4) as usize;
                out.extend_from_slice(&self.rgba[o..o + 3]);
            }
        }
        out
    }

    /// The RGBA pixel at `(x, y)` (bottom-up), or `None` when the
    /// coordinate lies outside the dump.
    pub fn pixel(&self, x: u32, y: u32) -> Option<[u8; 4]> {
        if x >= self.width || y >= self.height {
            return None;
        }
        let o = ((y * self.width + x) * 4) as usize;
        self.rgba.get(o..o + 4).map(|px| px.try_into().expect("4 bytes"))
    }
}

/// The DAC box: dumps the colour buffer at swap and models the (small)
/// refresh bandwidth with timing reads.
#[derive(Debug)]
struct Dac {
    pending_reads: std::collections::VecDeque<u64>,
    next_id: u64,
    stat_bytes: Counter,
}

impl Dac {
    fn clock(&mut self, _cycle: Cycle, mem: &mut MemoryController) {
        while mem.pop_reply(Client::Dac).is_some() {}
        while let Some(&addr) = self.pending_reads.front() {
            if !mem.can_accept(Client::Dac, addr) {
                break;
            }
            self.pending_reads.pop_front();
            let id = self.next_id;
            self.next_id += 1;
            let _ = mem.submit(MemRequest {
                id,
                client: Client::Dac,
                addr,
                op: MemOp::TimingRead { size: 64 },
            });
            self.stat_bytes.add(64);
        }
    }

    fn busy(&self) -> bool {
        !self.pending_reads.is_empty()
    }

    /// The box's event horizon: busy while refresh reads wait to be
    /// submitted, idle otherwise — in-flight replies are covered by the
    /// memory controller's horizon.
    fn work_horizon(&self) -> Horizon {
        if self.pending_reads.is_empty() {
            Horizon::Idle
        } else {
            Horizon::Busy
        }
    }
}

/// Result of running a command trace.
#[derive(Debug)]
pub struct RunResult {
    /// Total simulated cycles.
    pub cycles: Cycle,
    /// Frames completed (swaps).
    pub frames: u64,
    /// DAC dumps, one per frame.
    pub framebuffers: Vec<FrameDump>,
}

impl RunResult {
    /// Frames per second at the configured core clock.
    pub fn fps(&self, clock_mhz: u32) -> f64 {
        if self.cycles == 0 || self.frames == 0 {
            return 0.0;
        }
        let seconds = self.cycles as f64 / (clock_mhz as f64 * 1e6);
        self.frames as f64 / seconds
    }
}

/// Errors surfaced by [`Gpu::run_trace`].
#[derive(Debug, Clone, PartialEq)]
pub enum GpuError {
    /// The watchdog expired: the pipeline failed to drain. The attached
    /// report shows which boxes still held work.
    Watchdog {
        /// The cycle limit that was hit.
        limit: Cycle,
        /// Machine snapshot at expiry.
        report: Box<FailureReport>,
    },
    /// A signal verification check failed (possibly via an injected
    /// fault) and the [`OnFault::Abort`] policy was in force.
    Sim {
        /// The underlying verification error.
        error: SimError,
        /// Machine snapshot at the failing cycle.
        report: Box<FailureReport>,
    },
    /// The configuration is inconsistent.
    BadConfig(String),
}

impl GpuError {
    /// The failure report attached to the error, when there is one.
    pub fn report(&self) -> Option<&FailureReport> {
        match self {
            GpuError::Watchdog { report, .. } | GpuError::Sim { report, .. } => Some(report),
            GpuError::BadConfig(_) => None,
        }
    }
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::Watchdog { limit, .. } => {
                write!(f, "simulation watchdog expired after {limit} cycles")
            }
            GpuError::Sim { error, .. } => write!(f, "simulation fault: {error}"),
            GpuError::BadConfig(msg) => write!(f, "bad GPU configuration: {msg}"),
        }
    }
}

impl std::error::Error for GpuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GpuError::Sim { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// The assembled ATTILA GPU.
pub struct Gpu {
    config: GpuConfig,
    binder: SignalBinder,
    stats: StatsRegistry,
    mem: MemoryController,
    cp: CommandProcessor,
    streamer: Streamer,
    pa: PrimitiveAssembly,
    clipper: Clipper,
    setup: TriangleSetup,
    fraggen: FragmentGenerator,
    hz: HierarchicalZ,
    zstencil: Vec<ZStencilUnit>,
    interpolator: Interpolator,
    ffifo: FragmentFifo,
    texunits: Vec<TextureUnit>,
    colorwrite: Vec<ColorWriteUnit>,
    dac: Dac,
    cycle: Cycle,
    frames: u64,
    framebuffers: Vec<FrameDump>,
    /// Watchdog limit for [`run_trace`](Self::run_trace).
    pub max_cycles: Cycle,
    /// Keep per-frame DAC dumps (disable for long benchmark runs).
    pub keep_frames: bool,
    /// Let the clock loop jump over provably idle cycles (the
    /// event-horizon scheduler). On by default;
    /// [`arm_faults`](Self::arm_faults) turns it off because injected
    /// faults consult per-clock state the horizon cannot see. Results are
    /// bit-identical either way — only wall-clock time changes.
    pub skip_idle: bool,
    /// Cycles the scheduler jumped over (a plain field, *not* a stats
    /// counter: the stats CSV must be identical with skipping on or off).
    cycles_skipped: Cycle,
    /// Steps left before [`poll_horizon`](Self::poll_horizon) evaluates
    /// the horizon again after a `Busy` verdict.
    horizon_backoff: Cycle,
    /// Flat per-cycle box schedule: one dispatch entry per clocked unit,
    /// fixed at elaboration from the configured unit counts. The clock
    /// loop walks this array instead of re-deriving the box sequence (and
    /// its per-variant loops) every cycle, and [`work_horizon`](Self::work_horizon)
    /// folds over the same array so the two can never disagree about
    /// which units exist.
    schedule: Box<[ScheduleEntry]>,
    /// Forensic trace sink, when signal tracing is enabled.
    trace: Option<attila_sim::TraceSink>,
    /// Faults tolerated (not aborted on) under `OnFault::{Isolate,Report}`.
    fault_log: Vec<SimError>,
    /// A framebuffer dump that failed its bounds check mid-step.
    dump_failure: Option<GpuError>,
    /// Take a crash-safe checkpoint at the first quiescent point at or
    /// after every `N` simulated cycles (see [`crate::checkpoint`]).
    pub checkpoint_every: Option<Cycle>,
    /// Destination file for the automatic checkpoints
    /// [`run_trace`](Self::run_trace) writes (atomic write-then-rename: a
    /// killed process always finds the latest valid checkpoint here).
    pub checkpoint_path: Option<std::path::PathBuf>,
    /// Cycle at or after which the next automatic checkpoint is due.
    next_checkpoint_at: Cycle,
    /// Every command ever enqueued — the trace-hash input, maintained
    /// while checkpointing is enabled.
    trace_log: Vec<GpuCommand>,
    /// A fault injector adopted via [`adopt_faults`](Self::adopt_faults),
    /// owned so checkpoints carry its progress.
    fault_injector: Option<FaultInjector>,
}

/// Steps a `Busy` horizon verdict stays cached before re-evaluating
/// (see `Gpu::poll_horizon`).
const HORIZON_BACKOFF: Cycle = 32;

/// One entry of the flat clock schedule (see [`Gpu::try_step`]): which box
/// to clock, with the unit index for replicated units. The Command
/// Processor is not an entry — it clocks first with extra arguments (the
/// machine idle flag) and its side-effect queue drains before the rest of
/// the pipeline sees the cycle.
#[derive(Debug, Clone, Copy)]
enum ScheduleEntry {
    Streamer,
    PrimitiveAssembly,
    Clipper,
    Setup,
    FragGen,
    Hz,
    ZStencil(u8),
    Interpolator,
    FragmentFifo,
    TexUnit(u8),
    ColorWrite(u8),
    Dac,
    Memory,
}

impl Gpu {
    /// Events retained by the forensic trace a fault injector arms.
    const FORENSIC_TRACE_EVENTS: usize = 32;

    /// Builds the GPU described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (e.g. differing
    /// Z-stencil and colour-write unit counts — the paper couples its
    /// "fragment test and framebuffer update" units).
    pub fn new(config: GpuConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("bad GPU configuration: {e}");
        }

        let mut binder = SignalBinder::new();
        let mut stats = StatsRegistry::new(config.stats.window_cycles);
        let mem = MemoryController::new(
            config.memory.to_controller_config(),
            config.memory.gpu_memory_bytes(),
        );

        let b = &mut binder;
        let n_rop = config.zstencil.units;
        let n_tu = config.texture.units;

        // --- ports -------------------------------------------------------
        let (cp_draw_tx, cp_draw_rx) =
            port(b, "CP->Streamer.draws", "CommandProcessor", "Streamer", 1, 1, 2).unwrap();
        let (st_work_tx, st_work_rx) =
            port(b, "Streamer->FFIFO.vertices", "Streamer", "FragmentFIFO", 1, 1, 16).unwrap();
        let (ff_shaded_tx, ff_shaded_rx) =
            port(b, "FFIFO->Streamer.shaded", "FragmentFIFO", "Streamer", 4, 1, 16).unwrap();
        let (st_out_tx, st_out_rx) = port(
            b,
            "Streamer->PA.vertices",
            "Streamer",
            "PrimitiveAssembly",
            1,
            config.streamer.latency.max(1),
            config.primitive_assembly.input_queue,
        )
        .unwrap();
        let (pa_tx, pa_rx) = port(
            b,
            "PA->Clipper.triangles",
            "PrimitiveAssembly",
            "Clipper",
            1,
            config.primitive_assembly.latency.max(1),
            config.clipper.input_queue,
        )
        .unwrap();
        let (cl_tx, cl_rx) = port(
            b,
            "Clipper->Setup.triangles",
            "Clipper",
            "TriangleSetup",
            1,
            config.clipper.latency.max(1),
            config.setup.input_queue,
        )
        .unwrap();
        let (su_tx, su_rx) = port(
            b,
            "Setup->FragGen.triangles",
            "TriangleSetup",
            "FragmentGenerator",
            1,
            config.setup.latency.max(1),
            config.fraggen.input_queue,
        )
        .unwrap();
        let (fg_tx, fg_rx) = port(
            b,
            "FragGen->HZ.tiles",
            "FragmentGenerator",
            "HierarchicalZ",
            config.fraggen.tiles_per_cycle as usize,
            config.fraggen.latency.max(1),
            config.hz.input_queue,
        )
        .unwrap();

        let mut hz_to_zst_tx = Vec::new();
        let mut hz_to_zst_rx = Vec::new();
        let mut zst_to_interp_tx = Vec::new();
        let mut zst_to_interp_rx = Vec::new();
        let mut ff_to_zst_tx = Vec::new();
        let mut ff_to_zst_rx = Vec::new();
        let mut zst_to_cw_tx = Vec::new();
        let mut zst_to_cw_rx = Vec::new();
        let mut ff_to_cw_tx = Vec::new();
        let mut ff_to_cw_rx = Vec::new();
        let mut zst_hz_tx = Vec::new();
        let mut zst_hz_rx = Vec::new();
        for i in 0..n_rop {
            let zst = format!("ZStencil{i}");
            let cw = format!("ColorWrite{i}");
            let (tx, rx) = port(
                b,
                &format!("HZ->{zst}.quads"),
                "HierarchicalZ",
                &zst,
                2,
                config.hz.latency.max(1),
                config.zstencil.input_queue,
            )
            .unwrap();
            hz_to_zst_tx.push(tx);
            hz_to_zst_rx.push(rx);
            let (tx, rx) = port(
                b,
                &format!("{zst}->Interpolator.quads"),
                &zst,
                "Interpolator",
                1,
                config.zstencil.latency.max(1),
                8,
            )
            .unwrap();
            zst_to_interp_tx.push(tx);
            zst_to_interp_rx.push(rx);
            let (tx, rx) = port(
                b,
                &format!("FFIFO->{zst}.quads"),
                "FragmentFIFO",
                &zst,
                1,
                1,
                config.zstencil.input_queue,
            )
            .unwrap();
            ff_to_zst_tx.push(tx);
            ff_to_zst_rx.push(rx);
            let (tx, rx) = port(
                b,
                &format!("{zst}->{cw}.quads"),
                &zst,
                &cw,
                1,
                config.zstencil.latency.max(1),
                config.colorwrite.input_queue,
            )
            .unwrap();
            zst_to_cw_tx.push(tx);
            zst_to_cw_rx.push(rx);
            let (tx, rx) = port(
                b,
                &format!("FFIFO->{cw}.quads"),
                "FragmentFIFO",
                &cw,
                1,
                1,
                config.colorwrite.input_queue,
            )
            .unwrap();
            ff_to_cw_tx.push(tx);
            ff_to_cw_rx.push(rx);
            let (tx, rx) = port(
                b,
                &format!("{zst}->HZ.updates"),
                &zst,
                "HierarchicalZ",
                4,
                1,
                32,
            )
            .unwrap();
            zst_hz_tx.push(tx);
            zst_hz_rx.push(rx);
        }
        let (hz_late_tx, hz_late_rx) = port(
            b,
            "HZ->Interpolator.quads",
            "HierarchicalZ",
            "Interpolator",
            2,
            config.hz.latency.max(1),
            16,
        )
        .unwrap();
        let (in_tx, in_rx) = port(
            b,
            "Interpolator->FFIFO.quads",
            "Interpolator",
            "FragmentFIFO",
            (config.interpolator.frags_per_cycle / 4).max(1) as usize,
            1,
            16,
        )
        .unwrap();

        let mut tex_req_tx = Vec::new();
        let mut tex_req_rx = Vec::new();
        let mut tex_rep_tx = Vec::new();
        let mut tex_rep_rx = Vec::new();
        for i in 0..n_tu {
            let tu = format!("Texture{i}");
            let (tx, rx) = port(
                b,
                &format!("FFIFO->{tu}.requests"),
                "FragmentFIFO",
                &tu,
                1,
                1,
                config.texture.request_queue,
            )
            .unwrap();
            tex_req_tx.push(tx);
            tex_req_rx.push(rx);
            let (tx, rx) =
                port(b, &format!("{tu}->FFIFO.replies"), &tu, "FragmentFIFO", 1, 1, 16).unwrap();
            tex_rep_tx.push(tx);
            tex_rep_rx.push(rx);
        }

        // --- boxes -------------------------------------------------------
        let cp = CommandProcessor::new(cp_draw_tx, &mut stats);
        let streamer = Streamer::new(
            config.streamer.clone(),
            cp_draw_rx,
            st_work_tx,
            ff_shaded_rx,
            st_out_tx,
            &mut stats,
        );
        let pa = PrimitiveAssembly::new(st_out_rx, pa_tx, &mut stats);
        let clipper = Clipper::new(pa_rx, cl_tx, &mut stats);
        let setup = TriangleSetup::new(cl_rx, su_tx, &mut stats);
        let fraggen = FragmentGenerator::new(config.fraggen.clone(), su_rx, fg_tx, &mut stats);
        let hz = HierarchicalZ::new(
            config.hz.clone(),
            config.display.width,
            config.display.height,
            fg_rx,
            zst_hz_rx,
            hz_to_zst_tx,
            hz_late_tx,
            &mut stats,
        );
        let mut zstencil = Vec::new();
        for (i, ((((in_early, in_late), out_early), out_late), out_hz)) in hz_to_zst_rx
            .into_iter()
            .zip(ff_to_zst_rx)
            .zip(zst_to_interp_tx)
            .zip(zst_to_cw_tx)
            .zip(zst_hz_tx)
            .enumerate()
        {
            zstencil.push(ZStencilUnit::new(
                i as u8,
                config.zstencil.clone(),
                in_early,
                in_late,
                out_early,
                out_late,
                out_hz,
                &mut stats,
            ));
        }
        let interpolator = Interpolator::new(
            config.interpolator.clone(),
            zst_to_interp_rx,
            hz_late_rx,
            in_tx,
            &mut stats,
        );
        let ffifo = FragmentFifo::new(
            config.shader.clone(),
            st_work_rx,
            in_rx,
            ff_shaded_tx,
            ff_to_cw_tx,
            ff_to_zst_tx,
            tex_req_tx,
            tex_rep_rx,
            &mut stats,
        );
        let mut texunits = Vec::new();
        for (i, (in_req, out_rep)) in tex_req_rx.into_iter().zip(tex_rep_tx).enumerate() {
            texunits.push(TextureUnit::new(
                i as u8,
                config.texture.clone(),
                in_req,
                out_rep,
                &mut stats,
            ));
        }
        let mut colorwrite = Vec::new();
        for (i, (in_late, in_early)) in zst_to_cw_rx.into_iter().zip(ff_to_cw_rx).enumerate() {
            colorwrite.push(ColorWriteUnit::new(
                i as u8,
                config.colorwrite.clone(),
                in_early,
                in_late,
                &mut stats,
            ));
        }
        let dac = Dac {
            pending_reads: std::collections::VecDeque::new(),
            next_id: 0,
            stat_bytes: stats.counter("DAC.bytes_read"),
        };

        // The fixed clock order of the pipeline, flattened over the
        // configured unit counts. `u8` indexes cover the replicated units
        // (unit counts are small, validated configuration values).
        let mut schedule = vec![
            ScheduleEntry::Streamer,
            ScheduleEntry::PrimitiveAssembly,
            ScheduleEntry::Clipper,
            ScheduleEntry::Setup,
            ScheduleEntry::FragGen,
            ScheduleEntry::Hz,
        ];
        schedule.extend((0..zstencil.len()).map(|i| ScheduleEntry::ZStencil(i as u8)));
        schedule.push(ScheduleEntry::Interpolator);
        schedule.push(ScheduleEntry::FragmentFifo);
        schedule.extend((0..texunits.len()).map(|i| ScheduleEntry::TexUnit(i as u8)));
        schedule.extend((0..colorwrite.len()).map(|i| ScheduleEntry::ColorWrite(i as u8)));
        schedule.push(ScheduleEntry::Dac);
        schedule.push(ScheduleEntry::Memory);

        let gpu = Gpu {
            config,
            binder,
            stats,
            mem,
            cp,
            streamer,
            pa,
            clipper,
            setup,
            fraggen,
            hz,
            zstencil,
            interpolator,
            ffifo,
            texunits,
            colorwrite,
            dac,
            cycle: 0,
            frames: 0,
            framebuffers: Vec::new(),
            max_cycles: 500_000_000,
            keep_frames: true,
            skip_idle: true,
            cycles_skipped: 0,
            horizon_backoff: 0,
            schedule: schedule.into_boxed_slice(),
            trace: None,
            fault_log: Vec::new(),
            dump_failure: None,
            checkpoint_every: None,
            checkpoint_path: None,
            next_checkpoint_at: 0,
            trace_log: Vec::new(),
            fault_injector: None,
        };
        if gpu.config.lint_on_start {
            let report = gpu.lint();
            if report.deny_count() > 0 {
                panic!("architecture lint failed at elaboration:\n{report}");
            }
        }
        gpu
    }

    /// Extracts the wired design as a [`Topology`] graph: every box with
    /// its declared interface and current event horizon, every registered
    /// signal with its live occupancy, and every statistic registration.
    pub fn topology(&self) -> Topology {
        let mut boxes = vec![
            BoxNode::new(
                "CommandProcessor",
                self.cp.work_horizon(),
                self.cp.declared_ports(),
            ),
            BoxNode::new("Streamer", self.streamer.work_horizon(), self.streamer.declared_ports()),
            BoxNode::new("PrimitiveAssembly", self.pa.work_horizon(), self.pa.declared_ports()),
            BoxNode::new("Clipper", self.clipper.work_horizon(), self.clipper.declared_ports()),
            BoxNode::new("TriangleSetup", self.setup.work_horizon(), self.setup.declared_ports()),
            BoxNode::new(
                "FragmentGenerator",
                self.fraggen.work_horizon(),
                self.fraggen.declared_ports(),
            ),
            BoxNode::new("HierarchicalZ", self.hz.work_horizon(), self.hz.declared_ports()),
        ];
        for (i, z) in self.zstencil.iter().enumerate() {
            boxes.push(BoxNode::new(
                format!("ZStencil{i}"),
                z.work_horizon(),
                z.declared_ports(),
            ));
        }
        boxes.push(BoxNode::new(
            "Interpolator",
            self.interpolator.work_horizon(),
            self.interpolator.declared_ports(),
        ));
        boxes.push(BoxNode::new(
            "FragmentFIFO",
            self.ffifo.work_horizon(),
            self.ffifo.declared_ports(),
        ));
        for (i, t) in self.texunits.iter().enumerate() {
            boxes.push(BoxNode::new(
                format!("Texture{i}"),
                t.work_horizon(),
                t.declared_ports(),
            ));
        }
        for (i, c) in self.colorwrite.iter().enumerate() {
            boxes.push(BoxNode::new(
                format!("ColorWrite{i}"),
                c.work_horizon(),
                c.declared_ports(),
            ));
        }
        // The memory controller and DAC talk to the pipeline through the
        // request/reply API, not signals: they are passive topology nodes.
        boxes.push(BoxNode {
            name: "MemoryController".into(),
            horizon: Some(self.mem.work_horizon()),
            ports: Vec::new(),
        });
        boxes.push(BoxNode {
            name: "DAC".into(),
            horizon: Some(self.dac.work_horizon()),
            ports: Vec::new(),
        });
        Topology {
            boxes,
            signals: self.binder.edges(),
            stat_registrations: self.stats.duplicate_registrations(),
        }
    }

    /// Runs the elaboration-time architecture verifier (see
    /// [`attila_sim::lint`]) over the wired design.
    pub fn lint(&self) -> LintReport {
        self.topology().verify()
    }

    /// The configuration the GPU was built with.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The signal name server (pipeline introspection).
    pub fn binder(&self) -> &SignalBinder {
        &self.binder
    }

    /// Attaches a Signal Trace Visualizer sink to every inter-box data
    /// signal and returns it. The sink retains the most recent
    /// `capacity` events (0 = unbounded — long runs will use a lot of
    /// memory, exactly why the real tool streams to disk).
    pub fn enable_signal_trace(&mut self, capacity: usize) -> attila_sim::TraceSink {
        let sink: attila_sim::TraceSink = std::rc::Rc::new(std::cell::RefCell::new(
            attila_sim::SignalTrace::with_capacity(capacity),
        ));
        self.cp.out_draws.attach_trace(sink.clone());
        self.streamer.out_work.attach_trace(sink.clone());
        self.streamer.out_assembled.attach_trace(sink.clone());
        self.pa.out_tris.attach_trace(sink.clone());
        self.clipper.out_tris.attach_trace(sink.clone());
        self.setup.out_tris.attach_trace(sink.clone());
        self.fraggen.out_tiles.attach_trace(sink.clone());
        for p in &mut self.hz.out_early {
            p.attach_trace(sink.clone());
        }
        self.hz.out_late.attach_trace(sink.clone());
        for z in &mut self.zstencil {
            z.out_early.attach_trace(sink.clone());
            z.out_late.attach_trace(sink.clone());
            z.out_hz.attach_trace(sink.clone());
        }
        self.interpolator.out_quads.attach_trace(sink.clone());
        self.ffifo.out_shaded.attach_trace(sink.clone());
        for p in &mut self.ffifo.out_color {
            p.attach_trace(sink.clone());
        }
        for p in &mut self.ffifo.out_zstencil {
            p.attach_trace(sink.clone());
        }
        for p in &mut self.ffifo.tex_requests {
            p.attach_trace(sink.clone());
        }
        for t in &mut self.texunits {
            t.out_replies.attach_trace(sink.clone());
        }
        self.trace = Some(sink.clone());
        sink
    }

    /// The statistics registry.
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    /// The memory controller (bandwidth statistics, functional image).
    pub fn memory(&self) -> &MemoryController {
        &self.mem
    }

    /// The current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Whether any pipeline unit (excluding the Command Processor and
    /// DAC) still holds work.
    pub fn pipeline_busy(&self) -> bool {
        self.streamer.busy()
            || self.pa.busy()
            || self.clipper.busy()
            || self.setup.busy()
            || self.fraggen.busy()
            || self.hz.busy()
            || self.zstencil.iter().any(|z| z.busy())
            || self.interpolator.busy()
            || self.ffifo.busy()
            || self.texunits.iter().any(|t| t.busy())
            || self.colorwrite.iter().any(|c| c.busy())
    }

    /// The machine-wide event horizon: the meet of every box's horizon,
    /// the memory controller's, and — the safety net — the earliest
    /// in-flight arrival on *any* registered signal, data or credit wire
    /// alike ([`SignalBinder::next_event_cycle`]). Readers verify that
    /// events are drained at their exact arrival cycle, so jumping past
    /// any arrival would surface as a spurious verification failure;
    /// folding the binder's minimum in makes the horizon conservative by
    /// construction.
    pub fn work_horizon(&self) -> Horizon {
        // `Busy` absorbs the meet, so bail out at the first busy box; the
        // CP goes first because it stays busy for as long as any command
        // that is not waiting on an upload remains queued, and the memory
        // controller next because it is the unit most often busy — `meet`
        // commutes, so probing the likely-busy units first is free and
        // usually ends the fold after two calls. The remaining boxes fold
        // in flat-schedule order — the same array the clock loop
        // dispatches from, so the horizon can never cover a unit the
        // clock does not drive (or miss one it does).
        let mut h = self.cp.work_horizon();
        if h.is_busy() {
            return Horizon::Busy;
        }
        h = h.meet(self.mem.work_horizon());
        if h.is_busy() {
            return Horizon::Busy;
        }
        for entry in &self.schedule {
            let next = match *entry {
                // Folded above, ahead of the pipeline boxes.
                ScheduleEntry::Memory => continue,
                ScheduleEntry::Streamer => self.streamer.work_horizon(),
                ScheduleEntry::PrimitiveAssembly => self.pa.work_horizon(),
                ScheduleEntry::Clipper => self.clipper.work_horizon(),
                ScheduleEntry::Setup => self.setup.work_horizon(),
                ScheduleEntry::FragGen => self.fraggen.work_horizon(),
                ScheduleEntry::Hz => self.hz.work_horizon(),
                ScheduleEntry::ZStencil(u) => self.zstencil[u as usize].work_horizon(),
                ScheduleEntry::Interpolator => self.interpolator.work_horizon(),
                ScheduleEntry::FragmentFifo => self.ffifo.work_horizon(),
                ScheduleEntry::TexUnit(u) => self.texunits[u as usize].work_horizon(),
                ScheduleEntry::ColorWrite(u) => self.colorwrite[u as usize].work_horizon(),
                ScheduleEntry::Dac => self.dac.work_horizon(),
            };
            h = h.meet(next);
            if h.is_busy() {
                return Horizon::Busy;
            }
        }
        h.meet(Horizon::from_event(self.binder.next_event_cycle()))
    }

    /// Polls the event horizon with adaptive back-off: a `Busy` verdict
    /// suppresses re-evaluation for the next `HORIZON_BACKOFF` steps.
    /// Reporting `Busy` without looking is always sound (it merely skips
    /// nothing), and idle windows worth jumping are thousands of cycles
    /// long, so the at-most-`HORIZON_BACKOFF`-cycle delay in noticing one
    /// is negligible next to the per-cycle evaluation cost it removes.
    fn poll_horizon(&mut self) -> Horizon {
        if self.horizon_backoff > 0 {
            self.horizon_backoff -= 1;
            return Horizon::Busy;
        }
        let h = self.work_horizon();
        if h.is_busy() {
            self.horizon_backoff = HORIZON_BACKOFF;
        }
        h
    }

    /// Jumps the clock to `to` without clocking anything, advancing the
    /// windowed statistics coherently (each crossed window closes with
    /// all-zero deltas, exactly as per-cycle ticking would record).
    fn skip_to(&mut self, to: Cycle) {
        if to <= self.cycle {
            return;
        }
        self.stats.skip_to(self.cycle, to);
        self.cycles_skipped += to - self.cycle;
        self.cycle = to;
    }

    /// Cycles the event-horizon scheduler jumped over so far.
    pub fn cycles_skipped(&self) -> Cycle {
        self.cycles_skipped
    }

    /// Advances simulated time by `cycles`, letting the event-horizon
    /// scheduler skip provably idle stretches when
    /// [`skip_idle`](Self::skip_idle) is set. The final cycle count and
    /// all observable state are identical to calling
    /// [`try_step`](Self::try_step) `cycles` times.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] raised by any box's signals.
    pub fn step_many(&mut self, cycles: Cycle) -> Result<(), SimError> {
        let target = self.cycle.saturating_add(cycles);
        while self.cycle < target {
            self.try_step()?;
            if !self.skip_idle {
                continue;
            }
            match self.poll_horizon() {
                Horizon::Busy => {}
                Horizon::IdleUntil(wake) => {
                    let to = wake.min(target).max(self.cycle);
                    self.skip_to(to);
                }
                Horizon::Idle => self.skip_to(target),
            }
        }
        Ok(())
    }

    /// Clocks the whole GPU one cycle.
    ///
    /// # Panics
    ///
    /// Panics on a signal verification failure; use
    /// [`try_step`](Self::try_step) to handle faults.
    pub fn step(&mut self) {
        if let Err(e) = self.try_step() {
            panic!("simulation fault: {e}");
        }
    }

    /// Clocks the whole GPU one cycle, surfacing signal verification
    /// failures instead of panicking.
    ///
    /// The cycle counter advances *before* the boxes clock, so a failing
    /// step never replays: after an error, calling `try_step` again
    /// resumes on the next cycle (boxes the fault preempted simply skip
    /// one cycle — acceptable for a machine already known to be faulty).
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] raised by any box's signals.
    pub fn try_step(&mut self) -> Result<(), SimError> {
        let cycle = self.cycle;
        self.cycle += 1;
        // `pipeline_busy` walks every box; only compute it on the cycles
        // where the CP's head command actually waits on a drained pipe.
        let idle =
            self.cp.needs_idle_probe() && !self.pipeline_busy() && !self.mem.busy();
        self.cp.clock(cycle, &mut self.mem, idle)?;
        // Drain the CP's side-effect queue in place: popping one action at
        // a time keeps the borrow local, so no per-cycle `Vec` is built.
        while let Some(action) = self.cp.actions.pop_front() {
            self.apply_action(action);
        }
        for i in 0..self.schedule.len() {
            match self.schedule[i] {
                ScheduleEntry::Streamer => self.streamer.clock(cycle, &mut self.mem)?,
                ScheduleEntry::PrimitiveAssembly => self.pa.clock(cycle)?,
                ScheduleEntry::Clipper => self.clipper.clock(cycle)?,
                ScheduleEntry::Setup => self.setup.clock(cycle)?,
                ScheduleEntry::FragGen => self.fraggen.clock(cycle)?,
                ScheduleEntry::Hz => self.hz.clock(cycle)?,
                ScheduleEntry::ZStencil(u) => {
                    self.zstencil[u as usize].clock(cycle, &mut self.mem)?;
                }
                ScheduleEntry::Interpolator => self.interpolator.clock(cycle)?,
                ScheduleEntry::FragmentFifo => self.ffifo.clock(cycle)?,
                ScheduleEntry::TexUnit(u) => {
                    self.texunits[u as usize].clock(cycle, &mut self.mem)?;
                }
                ScheduleEntry::ColorWrite(u) => {
                    self.colorwrite[u as usize].clock(cycle, &mut self.mem)?;
                }
                ScheduleEntry::Dac => self.dac.clock(cycle, &mut self.mem),
                ScheduleEntry::Memory => self.mem.clock(cycle),
            }
        }
        self.stats.tick(cycle);
        Ok(())
    }

    fn apply_action(&mut self, action: CpAction) {
        match action {
            CpAction::ClearColor { base, len, word } => {
                for c in &mut self.colorwrite {
                    c.fast_clear(&mut self.mem, base, len, word);
                }
            }
            CpAction::ClearZStencil { base, len, word } => {
                for z in &mut self.zstencil {
                    z.fast_clear(&mut self.mem, base, len, word);
                }
                let depth = (word & DEPTH_MAX) as f32 / DEPTH_MAX as f32;
                let state = self.cp.state();
                let (w, h) = (state.target_width, state.target_height);
                self.hz.fast_clear_for(base, w, h, depth);
            }
            CpAction::Swap => {
                for z in &mut self.zstencil {
                    z.flush(&mut self.mem);
                }
                for c in &mut self.colorwrite {
                    c.flush(&mut self.mem);
                }
                let state = std::sync::Arc::clone(self.cp.state());
                let dump = match self.dump_framebuffer(
                    state.color_buffer,
                    state.target_width,
                    state.target_height,
                ) {
                    Ok(dump) => Some(dump),
                    Err(e) => {
                        // Surface the bad surface binding from run_trace
                        // instead of panicking inside the clock loop.
                        self.dump_failure.get_or_insert(e);
                        None
                    }
                };
                // DAC refresh traffic for the frame.
                let lines = crate::address::surface_bytes(state.target_width, state.target_height)
                    / FB_TILE_BYTES as u64;
                for l in 0..lines {
                    for piece in 0..(FB_TILE_BYTES as u64 / 64) {
                        self.dac
                            .pending_reads
                            .push_back(state.color_buffer + l * FB_TILE_BYTES as u64 + piece * 64);
                    }
                }
                if self.keep_frames {
                    self.framebuffers.extend(dump);
                }
                self.frames += 1;
            }
        }
    }

    /// Reads the (tiled) colour buffer into a row-major RGBA dump — the
    /// DAC's file output.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::BadConfig`] when the surface extends past the
    /// end of GPU memory (a corrupt render-target binding).
    pub fn dump_framebuffer(
        &self,
        base: u64,
        width: u32,
        height: u32,
    ) -> Result<FrameDump, GpuError> {
        let bytes = crate::address::surface_bytes(width, height);
        let end = base.checked_add(bytes).ok_or_else(|| {
            // lint:allow(hot-alloc) cold failure path: runs once, then the simulation aborts
            GpuError::BadConfig(format!("framebuffer at {base:#x} wraps the address space"))
        })?;
        if end > self.mem.gpu_mem().size() as u64 {
            // lint:allow(hot-alloc) cold failure path: runs once, then the simulation aborts
            return Err(GpuError::BadConfig(format!(
                "framebuffer {base:#x}..{end:#x} exceeds GPU memory                  ({} bytes)",
                self.mem.gpu_mem().size()
            )));
        }
        let mut rgba = vec![0u8; (width * height * 4) as usize];
        let image = self.mem.gpu_mem();
        for y in 0..height {
            for x in 0..width {
                let addr = pixel_address(base, width, x, y);
                let mut px = [0u8; 4];
                image.read(addr, &mut px);
                let o = ((y * width + x) * 4) as usize;
                rgba[o..o + 4].copy_from_slice(&px);
            }
        }
        Ok(FrameDump { width, height, rgba })
    }

    /// Arms a fault injector against this GPU: every signal-level plan is
    /// compiled into a hook attached (by name) to the target wire, and
    /// memory-level plans are handed to the memory controller. Also
    /// enables a small forensic signal trace so failure reports carry the
    /// last events before death.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::BadConfig`] when a plan names a signal that is
    /// not registered in this pipeline.
    pub fn arm_faults(&mut self, injector: &mut FaultInjector) -> Result<(), GpuError> {
        // Injected faults (stall windows, per-cycle hooks) consult state
        // the horizon cannot see; never skip cycles on a faulty machine.
        self.skip_idle = false;
        let targets: Vec<String> = injector
            .plans()
            .iter()
            .filter_map(|p| p.signal().map(str::to_string))
            .collect();
        for name in targets {
            let hook = injector.signal_hook(&name).expect("plan names this signal");
            self.binder.attach_faults(&name, hook).map_err(|e| {
                GpuError::BadConfig(format!("fault plan targets an unknown signal: {e}"))
            })?;
        }
        if let Some(hook) = injector.mem_hook() {
            self.mem.inject_faults(hook);
        }
        if self.trace.is_none() {
            self.enable_signal_trace(Self::FORENSIC_TRACE_EVENTS);
        }
        Ok(())
    }

    /// Like [`arm_faults`](Self::arm_faults), but takes ownership of the
    /// injector so automatic checkpoints carry its progress (RNG
    /// position, per-hook write indices, delivery counters) and a resumed
    /// run replays the exact same fault schedule.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::BadConfig`] when a plan names a signal that is
    /// not registered in this pipeline.
    pub fn adopt_faults(&mut self, mut injector: FaultInjector) -> Result<(), GpuError> {
        self.arm_faults(&mut injector)?;
        self.fault_injector = Some(injector);
        Ok(())
    }

    /// The fault injector adopted via [`adopt_faults`](Self::adopt_faults).
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.fault_injector.as_ref()
    }

    /// Whether the machine sits at a quiescent point: the Command
    /// Processor is at a command boundary, no box holds work, the memory
    /// controller is fully drained, the DAC has no pending refresh reads
    /// and no signal carries in-flight data or credit returns. Only at
    /// such a point is a checkpoint valid — all transient state is
    /// provably empty, so the persistent state alone reconstructs the
    /// machine exactly.
    pub fn quiescent(&self) -> bool {
        self.cp.at_command_boundary()
            && !self.pipeline_busy()
            && self.mem.fully_drained()
            && !self.dac.busy()
            && self.binder.next_event_cycle().is_none()
    }

    /// Captures a [`Checkpoint`] of the whole machine. Call only at a
    /// [`quiescent`](Self::quiescent) point; [`run_trace`](Self::run_trace)
    /// does this automatically when [`checkpoint_every`](Self::checkpoint_every)
    /// is set.
    ///
    /// # Panics
    ///
    /// Panics when the machine is not quiescent — a snapshot taken with
    /// transient state in flight could not restore faithfully.
    pub fn capture_checkpoint(&self) -> Checkpoint {
        assert!(self.quiescent(), "checkpoint requested outside a quiescent point");
        let signals = self
            .binder
            .statuses()
            .into_iter()
            .map(|s| SignalCounterState {
                name: s.name.as_str().to_string(),
                written: s.written,
                read: s.read,
                lost: s.lost,
            })
            .collect();
        let body = CheckpointBody {
            cycle: self.cycle,
            frames: self.frames,
            cycles_skipped: self.cycles_skipped,
            horizon_backoff: self.horizon_backoff,
            commands_consumed: self.cp.commands_processed(),
            memory: self.mem.gpu_mem().as_slice().to_vec(),
            framebuffers: self.framebuffers.clone(),
            mem_ctrl: self.mem.save_state(),
            cp: self.cp.save_state(),
            streamer: self.streamer.save_state(),
            pa_ids: self.pa.ids_issued(),
            setup_ids: self.setup.ids_issued(),
            fraggen_ids: self.fraggen.ids_issued(),
            hz: self.hz.save_state(),
            interpolator_next_input: self.interpolator.next_input(),
            ffifo: self.ffifo.save_state(),
            texunits: self.texunits.iter().map(TextureUnit::save_state).collect(),
            zstencil: self.zstencil.iter().map(ZStencilUnit::save_state).collect(),
            colorwrite: self.colorwrite.iter().map(ColorWriteUnit::save_state).collect(),
            dac_next_id: self.dac.next_id,
            stats: self.stats.save_state(),
            signals,
            fault: self.fault_injector.as_ref().map(FaultInjector::save_state),
        };
        Checkpoint {
            config_hash: crate::checkpoint::config_hash(&self.config),
            trace_hash: crate::checkpoint::trace_hash(&self.trace_log),
            body,
        }
    }

    /// Rebuilds a GPU from a checkpoint: validates the config and trace
    /// hashes, reconstructs the machine, loads every box's persistent
    /// state and re-enqueues the unconsumed tail of the trace. Running
    /// the restored machine (`run_trace(&[])`) finishes the original
    /// trace bit-identically to a run that never stopped.
    ///
    /// `commands` must be the *full* trace of the original run.
    /// `injector`, when the original run was chaos-tested via
    /// [`adopt_faults`](Self::adopt_faults), must carry the same seed and
    /// plans so its hooks recompile identically before their progress is
    /// restored.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CheckpointMismatch`] on any hash, geometry or
    /// layout mismatch.
    ///
    /// # Panics
    ///
    /// Panics when `config` itself is invalid (as [`Gpu::new`] would).
    pub fn restore(
        config: GpuConfig,
        commands: &[GpuCommand],
        ckpt: &Checkpoint,
        injector: Option<FaultInjector>,
    ) -> Result<Gpu, SimError> {
        ckpt.validate_against(&config, commands)?;
        let mut gpu = Gpu::new(config);
        if let Some(injector) = injector {
            gpu.adopt_faults(injector).map_err(|e| SimError::CheckpointMismatch {
                reason: format!("cannot re-arm the fault injector: {e}"),
            })?;
        }
        gpu.apply_body(&ckpt.body, commands)?;
        Ok(gpu)
    }

    /// Loads a checkpoint body into a freshly built machine.
    fn apply_body(
        &mut self,
        body: &CheckpointBody,
        commands: &[GpuCommand],
    ) -> Result<(), SimError> {
        let mismatch = |reason: String| SimError::CheckpointMismatch { reason };
        let consumed = usize::try_from(body.commands_consumed)
            .map_err(|_| mismatch("absurd consumed-command count".into()))?;
        if consumed > commands.len() {
            return Err(mismatch(format!(
                "checkpoint consumed {consumed} commands but the trace has only {}",
                commands.len()
            )));
        }
        if body.memory.len() != self.mem.gpu_mem().size() {
            return Err(mismatch(format!(
                "memory image is {} bytes, this machine has {}",
                body.memory.len(),
                self.mem.gpu_mem().size()
            )));
        }
        self.mem.gpu_mem_mut().write(0, &body.memory);
        self.mem.load_state(&body.mem_ctrl)?;
        // The Command Processor's render state is not serialized (it holds
        // compiled shader programs); the last SetState among the consumed
        // commands reconstructs it exactly.
        self.cp.load_state(&body.cp);
        let state = commands[..consumed].iter().rev().find_map(|c| match c {
            GpuCommand::SetState(s) => Some(std::sync::Arc::new((**s).clone())),
            _ => None,
        });
        if let Some(state) = state {
            self.cp.restore_render_state(state);
        }
        self.cp.enqueue(commands[consumed..].iter().cloned());
        self.streamer.load_state(&body.streamer);
        self.pa.restore_ids(body.pa_ids);
        self.setup.restore_ids(body.setup_ids);
        self.fraggen.restore_ids(body.fraggen_ids);
        self.hz.load_state(&body.hz)?;
        self.interpolator.restore_next_input(body.interpolator_next_input);
        self.ffifo.load_state(&body.ffifo);
        if body.texunits.len() != self.texunits.len()
            || body.zstencil.len() != self.zstencil.len()
            || body.colorwrite.len() != self.colorwrite.len()
        {
            return Err(mismatch("checkpointed unit counts differ from this machine's".into()));
        }
        for (t, s) in self.texunits.iter_mut().zip(&body.texunits) {
            t.load_state(s)?;
        }
        for (z, s) in self.zstencil.iter_mut().zip(&body.zstencil) {
            z.load_state(s)?;
        }
        for (c, s) in self.colorwrite.iter_mut().zip(&body.colorwrite) {
            c.load_state(s)?;
        }
        self.dac.next_id = body.dac_next_id;
        self.stats.load_state(&body.stats)?;
        for s in &body.signals {
            let probe = self.binder.probe(&s.name).map_err(|_| {
                mismatch(format!("checkpoint names an unregistered signal `{}`", s.name))
            })?;
            probe.restore_counters(s.written, s.read, s.lost);
        }
        match (&body.fault, self.fault_injector.as_mut()) {
            (Some(fs), Some(inj)) => inj.load_state(fs)?,
            (Some(_), None) => {
                return Err(mismatch(
                    "checkpoint carries fault-injector state but no injector was supplied".into(),
                ));
            }
            (None, Some(_)) => {
                return Err(mismatch(
                    "an injector was supplied but the checkpoint carries no fault state".into(),
                ));
            }
            (None, None) => {}
        }
        self.cycle = body.cycle;
        self.frames = body.frames;
        self.cycles_skipped = body.cycles_skipped;
        self.horizon_backoff = body.horizon_backoff;
        self.framebuffers = body.framebuffers.clone();
        self.trace_log = commands.to_vec();
        Ok(())
    }

    /// Faults tolerated so far under [`OnFault::Isolate`] or
    /// [`OnFault::Report`] (empty under [`OnFault::Abort`]).
    pub fn fault_log(&self) -> &[SimError] {
        &self.fault_log
    }

    /// Snapshots the machine for a post-mortem.
    pub fn failure_report(&self, error: Option<SimError>) -> FailureReport {
        let mut boxes = vec![
            BoxStatus {
                name: "CommandProcessor".into(),
                busy: !self.cp.done(),
                queued: self.cp.queued(),
            },
            BoxStatus {
                name: "Streamer".into(),
                busy: self.streamer.busy(),
                queued: self.streamer.queued(),
            },
            BoxStatus {
                name: "PrimitiveAssembly".into(),
                busy: self.pa.busy(),
                queued: self.pa.queued(),
            },
            BoxStatus {
                name: "Clipper".into(),
                busy: self.clipper.busy(),
                queued: self.clipper.queued(),
            },
            BoxStatus {
                name: "TriangleSetup".into(),
                busy: self.setup.busy(),
                queued: self.setup.queued(),
            },
            BoxStatus {
                name: "FragmentGenerator".into(),
                busy: self.fraggen.busy(),
                queued: self.fraggen.queued(),
            },
            BoxStatus {
                name: "HierarchicalZ".into(),
                busy: self.hz.busy(),
                queued: self.hz.queued(),
            },
        ];
        for (i, z) in self.zstencil.iter().enumerate() {
            boxes.push(BoxStatus {
                name: format!("ZStencil{i}"),
                busy: z.busy(),
                queued: z.queued(),
            });
        }
        boxes.push(BoxStatus {
            name: "Interpolator".into(),
            busy: self.interpolator.busy(),
            queued: self.interpolator.queued(),
        });
        boxes.push(BoxStatus {
            name: "FragmentFIFO".into(),
            busy: self.ffifo.busy(),
            queued: self.ffifo.queued(),
        });
        for (i, t) in self.texunits.iter().enumerate() {
            boxes.push(BoxStatus {
                name: format!("Texture{i}"),
                busy: t.busy(),
                queued: t.queued(),
            });
        }
        for (i, c) in self.colorwrite.iter().enumerate() {
            boxes.push(BoxStatus {
                name: format!("ColorWrite{i}"),
                busy: c.busy(),
                queued: c.queued(),
            });
        }
        boxes.push(BoxStatus {
            name: "MemoryController".into(),
            busy: self.mem.busy(),
            queued: 0,
        });
        boxes.push(BoxStatus {
            name: "DAC".into(),
            busy: self.dac.busy(),
            queued: self.dac.pending_reads.len(),
        });
        let recent_events = self
            .trace
            .as_ref()
            .map(|t| t.borrow().events().to_vec())
            .unwrap_or_default();
        FailureReport {
            cycle: self.cycle,
            error,
            boxes,
            signals: self.binder.statuses(),
            recent_events,
            topology: Some(self.topology().summary()),
        }
    }

    /// Runs a command trace to completion.
    ///
    /// Signal verification failures are dispatched through the
    /// configuration's [`OnFault`] policy: `Abort` stops with
    /// [`GpuError::Sim`] and a full [`FailureReport`]; `Isolate` degrades
    /// the offending signal to lossy delivery and keeps running;
    /// `Report` records the fault (see [`fault_log`](Self::fault_log))
    /// and keeps running.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::Watchdog`] if the pipeline fails to drain
    /// within [`max_cycles`](Self::max_cycles), [`GpuError::Sim`] on an
    /// aborting verification failure, and [`GpuError::BadConfig`] when a
    /// swap dumps an out-of-range framebuffer.
    pub fn run_trace(&mut self, commands: &[GpuCommand]) -> Result<RunResult, GpuError> {
        self.cp.enqueue(commands.iter().cloned());
        let start_cycle = self.cycle;
        let start_frames = self.frames;
        let limit = start_cycle + self.max_cycles;
        if let Some(every) = self.checkpoint_every {
            self.trace_log.extend(commands.iter().cloned());
            self.next_checkpoint_at = self.cycle + every;
        }
        while !(self.cp.done() && !self.pipeline_busy() && !self.mem.busy() && !self.dac.busy())
        {
            if self.cycle >= limit {
                return Err(GpuError::Watchdog {
                    limit: self.max_cycles,
                    report: Box::new(self.failure_report(None)),
                });
            }
            if let Err(e) = self.try_step() {
                match self.config.on_fault {
                    OnFault::Abort => {
                        return Err(GpuError::Sim {
                            report: Box::new(self.failure_report(Some(e.clone()))),
                            error: e,
                        });
                    }
                    OnFault::Isolate => {
                        // Degrade exactly the wire that failed; it keeps
                        // flowing, dropping what it cannot carry.
                        if let Some(signal) = e.signal() {
                            let _ = self.binder.set_lossy(signal, true);
                        }
                        self.fault_log.push(e);
                    }
                    OnFault::Report => self.fault_log.push(e),
                }
            } else if self.skip_idle {
                // Event-horizon skip: with everything idle until a known
                // wake-up cycle, jump there. Clamped to the watchdog limit
                // so expiry fires at exactly the same cycle as per-cycle
                // clocking would; a fully `Idle` horizon is left to the
                // loop condition (drained → exit) or the watchdog
                // (deadlock) rather than jumped.
                if let Horizon::IdleUntil(wake) = self.poll_horizon() {
                    let to = wake.min(limit).max(self.cycle);
                    self.skip_to(to);
                }
            }
            if let Some(e) = self.dump_failure.take() {
                return Err(e);
            }
            if let Some(every) = self.checkpoint_every {
                if self.cycle >= self.next_checkpoint_at && self.quiescent() {
                    if let Some(path) = self.checkpoint_path.clone() {
                        let ckpt = self.capture_checkpoint();
                        if let Err(error) = ckpt.write_file(&path) {
                            return Err(GpuError::Sim {
                                report: Box::new(self.failure_report(Some(error.clone()))),
                                error,
                            });
                        }
                    }
                    self.next_checkpoint_at = self.cycle + every;
                }
            }
        }
        Ok(RunResult {
            cycles: self.cycle - start_cycle,
            frames: self.frames - start_frames,
            framebuffers: std::mem::take(&mut self.framebuffers),
        })
    }

    /// Aggregate texture-cache statistics `(hits, misses, hit_rate)` over
    /// the TU pool — the Figure 8 metric.
    pub fn texture_cache_stats(&self) -> (u64, u64, f64) {
        let hits: u64 = self.texunits.iter().map(|t| t.cache().hits()).sum();
        let misses: u64 = self.texunits.iter().map(|t| t.cache().misses()).sum();
        let rate = if hits + misses == 0 {
            1.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        (hits, misses, rate)
    }

    /// Total bytes the texture units fetched from memory (Figure 8's
    /// texture bandwidth).
    pub fn texture_bytes_read(&self) -> u64 {
        self.texunits.iter().map(|t| t.bytes_read()).sum()
    }

    /// Per-shader-unit busy cycles (Figure 9's shader utilization).
    pub fn shader_busy_cycles(&self) -> Vec<u64> {
        self.ffifo.unit_busy_cycles()
    }

    /// Per-texture-unit busy cycles (Figure 9's TU utilization).
    pub fn texture_busy_cycles(&self) -> Vec<u64> {
        self.texunits.iter().map(|t| t.busy_cycles()).collect()
    }

    /// A human-readable end-of-run summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "cycles:              {}", self.cycle);
        let _ = writeln!(out, "frames:              {}", self.frames);
        let _ = writeln!(out, "draws:               {}", self.cp.draws_issued());
        let _ = writeln!(out, "vertices:            {}", self.streamer.vertices_issued());
        let _ = writeln!(out, "vertex cache hits:   {}", self.streamer.vertex_cache_hits());
        let _ = writeln!(out, "triangles assembled: {}", self.pa.triangles_assembled());
        let _ = writeln!(out, "triangles rejected:  {}", self.clipper.rejected());
        let _ = writeln!(out, "faces culled:        {}", self.setup.face_culled());
        let _ = writeln!(out, "fragments generated: {}", self.fraggen.fragments_generated());
        let _ = writeln!(out, "HZ tiles rejected:   {}", self.hz.tiles_rejected());
        let z_tested: u64 = self.zstencil.iter().map(|z| z.fragments_tested()).sum();
        let z_passed: u64 = self.zstencil.iter().map(|z| z.fragments_passed()).sum();
        let _ = writeln!(out, "Z tested / passed:   {z_tested} / {z_passed}");
        let _ = writeln!(out, "fragments shaded:    {}", self.ffifo.fragments_shaded());
        let written: u64 = self.colorwrite.iter().map(|c| c.fragments_written()).sum();
        let _ = writeln!(out, "fragments written:   {written}");
        let (h, m, r) = self.texture_cache_stats();
        let _ = writeln!(out, "texture cache:       {h} hits, {m} misses ({:.1}%)", r * 100.0);
        let _ = writeln!(out, "texture bandwidth:   {} bytes", self.texture_bytes_read());
        let _ = writeln!(
            out,
            "memory read/written: {} / {} bytes",
            self.mem.bytes_read(),
            self.mem.bytes_written()
        );
        out
    }
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("cycle", &self.cycle)
            .field("frames", &self.frames)
            .field("signals", &self.binder.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fps_is_zero_for_empty_runs() {
        let r = RunResult { cycles: 0, frames: 0, framebuffers: Vec::new() };
        assert_eq!(r.fps(400), 0.0, "zero cycles must not divide by zero");
        let r = RunResult { cycles: 0, frames: 3, framebuffers: Vec::new() };
        assert_eq!(r.fps(400), 0.0, "frames with zero cycles is degenerate");
        let r = RunResult { cycles: 1_000_000, frames: 0, framebuffers: Vec::new() };
        assert_eq!(r.fps(400), 0.0, "no frames means no rate");
    }

    #[test]
    fn fps_counts_frames_per_simulated_second() {
        // 4M cycles at 400 MHz is 10 ms of simulated time; 60 frames in
        // 10 ms is 6000 frames per second.
        let r = RunResult { cycles: 4_000_000, frames: 60, framebuffers: Vec::new() };
        assert!((r.fps(400) - 6000.0).abs() < 1e-9);
    }
}
